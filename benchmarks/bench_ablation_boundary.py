"""Ablation A2: exact boundary refinement on vs off.

Quantifies what the hybrid representation costs (Section 5.1): the
exact mode pays vector PIP tests only for points in boundary pixels, so
its overhead over the approximate mode should stay small — while fixing
all the boundary-pixel misclassifications the approximate mode makes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.geometry.predicates import points_in_polygon
from repro.core.queries import polygonal_select_points
from benchmarks.conftest import write_series

RESOLUTION = 512
N_POINTS = 300_000


def _workload(mbr_points, query_polygons):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n], query_polygons[0]


@pytest.mark.parametrize("exact", [True, False], ids=["exact", "approximate"])
def test_boundary_modes(benchmark, exact, mbr_points, query_polygons):
    xs, ys, polygon = _workload(mbr_points, query_polygons)
    benchmark.group = "ablation:boundary-refinement"
    benchmark.pedantic(
        polygonal_select_points, args=(xs, ys, polygon),
        kwargs={"resolution": RESOLUTION, "exact": exact},
        rounds=3, iterations=1,
    )


def test_boundary_report(benchmark, mbr_points, query_polygons):
    def run_report():
        xs, ys, polygon = _workload(mbr_points, query_polygons)

        start = time.perf_counter()
        exact = polygonal_select_points(
            xs, ys, polygon, resolution=RESOLUTION
        )
        t_exact = time.perf_counter() - start

        start = time.perf_counter()
        approx = polygonal_select_points(
            xs, ys, polygon, resolution=RESOLUTION, exact=False
        )
        t_approx = time.perf_counter() - start

        truth = set(
            np.nonzero(points_in_polygon(xs, ys, polygon))[0].tolist()
        )
        exact_wrong = len(set(exact.ids.tolist()) ^ truth)
        approx_wrong = len(set(approx.ids.tolist()) ^ truth)
        overhead = t_exact / max(t_approx, 1e-9)
        lines = [
            f"# boundary refinement ablation (resolution={RESOLUTION})",
            f"exact   time={t_exact:.4f}s wrong={exact_wrong} "
            f"boundary_tests={exact.n_exact_tests}",
            f"approx  time={t_approx:.4f}s wrong={approx_wrong}",
            f"refinement overhead = {overhead:.2f}x",
        ]
        write_series("ablation_boundary", lines)
        for line in lines:
            print(line)
        return exact_wrong, approx_wrong, overhead

    exact_wrong, approx_wrong, overhead = benchmark.pedantic(
        run_report, rounds=1, iterations=1
    )
    # "No loss in accuracy": the hybrid result is perfect.
    assert exact_wrong == 0
    # The approximate mode does make boundary mistakes at this
    # resolution (otherwise the ablation is vacuous).
    assert approx_wrong > 0
    # And exactness is cheap: well under 2x the approximate runtime.
    assert overhead < 2.0
