"""Ablation A3: blended-constraints plan vs per-polygon plan (Fig 8b).

Sweeps the number of disjunctive constraint polygons.  The traditional
plan re-tests every point per polygon (cost grows linearly in the
constraint count); the canvas plan only adds one cheap constraint
blend per polygon.  The optimizer's cost model must track the
measured crossover direction.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.core.optimizer import selection_plans
from repro.core.queries import multi_polygonal_select
from benchmarks.conftest import QUERY_MBR, write_series

RESOLUTION = 1024
N_POINTS = 300_000
POLYGON_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def constraint_pool():
    return [
        rescale_to_box(
            hand_drawn_polygon(n_vertices=24, irregularity=0.4, seed=300 + i),
            QUERY_MBR,
        )
        for i in range(max(POLYGON_COUNTS))
    ]


def _slice(mbr_points):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n]


@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
@pytest.mark.parametrize("plan", ["blended-canvas", "per-polygon-pip"])
def test_plans(benchmark, plan, n_polys, mbr_points, constraint_pool):
    xs, ys = _slice(mbr_points)
    polys = constraint_pool[:n_polys]
    benchmark.group = f"ablation-plans:polys={n_polys}"
    if plan == "blended-canvas":
        benchmark.pedantic(
            multi_polygonal_select, args=(xs, ys, polys),
            kwargs={"resolution": RESOLUTION}, rounds=2, iterations=1,
        )
    else:
        benchmark.pedantic(
            gpu_baseline_select_multi, args=(xs, ys, polys),
            rounds=2, iterations=1,
        )


def test_plans_report(benchmark, mbr_points, constraint_pool):
    def run_report():
        xs, ys = _slice(mbr_points)
        rows = []
        for n_polys in POLYGON_COUNTS:
            polys = constraint_pool[:n_polys]
            start = time.perf_counter()
            multi_polygonal_select(xs, ys, polys, resolution=RESOLUTION)
            t_canvas = time.perf_counter() - start
            start = time.perf_counter()
            gpu_baseline_select_multi(xs, ys, polys)
            t_pip = time.perf_counter() - start
            rows.append((n_polys, t_canvas, t_pip))
        lines = ["# polys, blended-canvas [s], per-polygon-pip [s]"]
        lines += [f"{n:2d} {a:.4f} {b:.4f}" for n, a, b in rows]
        write_series("ablation_plans", lines)
        for line in lines:
            print(line)
        return rows

    rows = benchmark.pedantic(run_report, rounds=1, iterations=1)

    # Per-polygon cost grows ~linearly in the constraint count; the
    # blended plan grows far slower.  Compare growth from 1 to 8.
    growth_canvas = rows[-1][1] / rows[0][1]
    growth_pip = rows[-1][2] / rows[0][2]
    assert growth_pip > 2.0 * growth_canvas, (growth_canvas, growth_pip)

    # With 8 constraints the canvas plan wins outright.
    assert rows[-1][1] < rows[-1][2]

    # The cost model ranks consistently at the extremes.
    many = selection_plans(N_POINTS, constraint_pool, (RESOLUTION, RESOLUTION))
    assert many[0].name == "blended-canvas"
