"""Ablation A3: blended-constraints plan vs per-polygon plan (Fig 8b).

Sweeps the number of disjunctive constraint polygons.  The traditional
plan re-tests every point per polygon (cost grows linearly in the
constraint count); the canvas plan only adds one cheap constraint
blend per polygon.  The optimizer's cost model must track the
measured crossover direction.

Also reports the engine-era metrics: planner overhead (cost-model
evaluation time per query) and the canvas-cache hit rate / warm-run
speedup when the same constraints repeat.

Run ``python benchmarks/bench_ablation_plans.py --dry-run`` for a tiny
smoke version without pytest-benchmark (used by CI; plain pytest must
be installed — the shared workload constants live in the conftest).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.core.optimizer import selection_plans
from repro.engine import QueryEngine, SELECTION_BLENDED

if __package__ in (None, ""):
    # Invoked as a script (CI dry-run): put the repo root on sys.path
    # so the suite's shared workload constants resolve.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import QUERY_MBR, write_series

RESOLUTION = 1024
N_POINTS = 300_000
POLYGON_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def constraint_pool():
    return [
        rescale_to_box(
            hand_drawn_polygon(n_vertices=24, irregularity=0.4, seed=300 + i),
            QUERY_MBR,
        )
        for i in range(max(POLYGON_COUNTS))
    ]


def _slice(mbr_points):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n]


def _run_blended_cold(xs, ys, polys):
    """One cold blended-canvas execution (fresh engine, forced plan).

    The ablation measures the canvas *plan*, so the engine's cost-based
    choice and its cross-run cache are both pinned out of the loop.
    """
    from repro.core.queries import default_window

    engine = QueryEngine()
    return engine.select_points(
        xs, ys, polys, window=default_window(xs, ys, polys),
        resolution=RESOLUTION, force_plan=SELECTION_BLENDED,
    )


@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
@pytest.mark.parametrize("plan", ["blended-canvas", "per-polygon-pip"])
def test_plans(benchmark, plan, n_polys, mbr_points, constraint_pool):
    xs, ys = _slice(mbr_points)
    polys = constraint_pool[:n_polys]
    benchmark.group = f"ablation-plans:polys={n_polys}"
    if plan == "blended-canvas":
        benchmark.pedantic(
            _run_blended_cold, args=(xs, ys, polys),
            rounds=2, iterations=1,
        )
    else:
        benchmark.pedantic(
            gpu_baseline_select_multi, args=(xs, ys, polys),
            rounds=2, iterations=1,
        )


def test_plans_report(benchmark, mbr_points, constraint_pool):
    def run_report():
        xs, ys = _slice(mbr_points)
        rows = []
        for n_polys in POLYGON_COUNTS:
            polys = constraint_pool[:n_polys]
            start = time.perf_counter()
            _run_blended_cold(xs, ys, polys)
            t_canvas = time.perf_counter() - start
            start = time.perf_counter()
            gpu_baseline_select_multi(xs, ys, polys)
            t_pip = time.perf_counter() - start
            rows.append((n_polys, t_canvas, t_pip))
        lines = ["# polys, blended-canvas [s], per-polygon-pip [s]"]
        lines += [f"{n:2d} {a:.4f} {b:.4f}" for n, a, b in rows]
        write_series("ablation_plans", lines)
        for line in lines:
            print(line)
        return rows

    rows = benchmark.pedantic(run_report, rounds=1, iterations=1)

    # Per-polygon cost grows ~linearly in the constraint count; the
    # blended plan grows far slower.  Compare growth from 1 to 8.
    growth_canvas = rows[-1][1] / rows[0][1]
    growth_pip = rows[-1][2] / rows[0][2]
    assert growth_pip > 2.0 * growth_canvas, (growth_canvas, growth_pip)

    # With 8 constraints the canvas plan wins outright.
    assert rows[-1][1] < rows[-1][2]

    # The cost model ranks consistently at the extremes.
    many = selection_plans(N_POINTS, constraint_pool, (RESOLUTION, RESOLUTION))
    assert many[0].name == "blended-canvas"


# ----------------------------------------------------------------------
# Engine metrics: planner overhead and canvas-cache effectiveness
# ----------------------------------------------------------------------
def _planner_overhead_us(n_points: int, polys, repeats: int = 200) -> float:
    """Mean time (microseconds) to enumerate + rank candidate plans."""
    start = time.perf_counter()
    for _ in range(repeats):
        selection_plans(n_points, polys, (RESOLUTION, RESOLUTION))
    return (time.perf_counter() - start) / repeats * 1e6


def _cache_sweep(xs, ys, polys, resolution, runs: int = 3):
    """Run the same constrained selection repeatedly on a fresh engine.

    Forces the blended-canvas plan (the raster path is what the cache
    accelerates) and returns per-run wall times plus final cache stats.
    """
    engine = QueryEngine()
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        engine.select_points(
            xs, ys, polys,
            window=QUERY_MBR.expand(0.5),
            resolution=resolution,
            force_plan=SELECTION_BLENDED,
        )
        times.append(time.perf_counter() - start)
    return times, engine.cache.stats()


def _engine_report_rows(xs, ys, constraint_pool, polygon_counts):
    rows = []
    for n_polys in polygon_counts:
        polys = constraint_pool[:n_polys]
        plan_us = _planner_overhead_us(len(xs), polys)
        times, stats = _cache_sweep(xs, ys, polys, RESOLUTION)
        cold, warm = times[0], min(times[1:])
        rows.append((n_polys, plan_us, cold, warm, stats.hit_rate))
    return rows


def test_engine_overhead_report(benchmark, mbr_points, constraint_pool):
    """Planner overhead and canvas-cache hit rate alongside exec time."""

    def run_report():
        xs, ys = _slice(mbr_points)
        rows = _engine_report_rows(xs, ys, constraint_pool, POLYGON_COUNTS)
        lines = [
            "# polys, planner overhead [us], cold run [s], warm run [s], "
            "cache hit rate"
        ]
        lines += [
            f"{n:2d} {us:8.2f} {cold:.4f} {warm:.4f} {rate:.3f}"
            for n, us, cold, warm, rate in rows
        ]
        write_series("ablation_plans_engine", lines)
        for line in lines:
            print(line)
        return rows

    rows = benchmark.pedantic(run_report, rounds=1, iterations=1)

    for n_polys, plan_us, cold, warm, hit_rate in rows:
        # Planning must be noise next to execution (< 5% of a cold run).
        assert plan_us * 1e-6 < 0.05 * cold, (plan_us, cold)
        # Re-running the same constraints hits the canvas cache and
        # never rasterizes twice.
        assert hit_rate > 0.0
        assert warm <= cold


def main(argv=None) -> int:
    """Standalone smoke entry point (CI: ``--dry-run``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dry-run", action="store_true",
                        help="tiny workload, no pytest-benchmark")
    args = parser.parse_args(argv)
    if not args.dry_run:
        parser.error("run the full suite via pytest; use --dry-run here")

    rng = np.random.default_rng(7)
    n = 5_000
    xs = rng.uniform(QUERY_MBR.xmin, QUERY_MBR.xmax, n)
    ys = rng.uniform(QUERY_MBR.ymin, QUERY_MBR.ymax, n)
    pool = [
        rescale_to_box(
            hand_drawn_polygon(n_vertices=16, irregularity=0.4, seed=300 + i),
            QUERY_MBR,
        )
        for i in range(4)
    ]
    print("# dry-run: engine ablation smoke")
    for n_polys, plan_us, cold, warm, rate in _engine_report_rows(
        xs, ys, pool, [1, 4]
    ):
        print(
            f"polys={n_polys} planner={plan_us:.1f}us "
            f"cold={cold * 1e3:.2f}ms warm={warm * 1e3:.2f}ms "
            f"cache_hit_rate={rate:.2f}"
        )
        assert rate > 0.0, "cache produced no hits in dry-run"
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
