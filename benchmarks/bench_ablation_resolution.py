"""Ablation A1: canvas resolution vs time and approximate error.

Section 5.1: "the texture size can be adjusted in order to
appropriately bound the error in the query result".  This sweep
measures, per resolution: exact-mode runtime, the number of exact
boundary tests the hybrid pays, and the approximate mode's result
error.  Expectations: error falls with resolution; boundary tests fall
with resolution; exact results are identical at every resolution.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.core.queries import polygonal_select_points
from benchmarks.conftest import write_series

RESOLUTIONS = [64, 128, 256, 512, 1024, 2048]
N_POINTS = 200_000


def _workload(mbr_points, query_polygons):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n], query_polygons[0]


@pytest.mark.parametrize("resolution", RESOLUTIONS)
def test_resolution_sweep(benchmark, resolution, mbr_points, query_polygons):
    xs, ys, polygon = _workload(mbr_points, query_polygons)
    benchmark.group = "ablation:resolution"
    benchmark.pedantic(
        polygonal_select_points, args=(xs, ys, polygon),
        kwargs={"resolution": resolution}, rounds=2, iterations=1,
    )


def test_resolution_report(benchmark, mbr_points, query_polygons):
    def run_report():
        xs, ys, polygon = _workload(mbr_points, query_polygons)
        reference = None
        rows = []
        for resolution in RESOLUTIONS:
            start = time.perf_counter()
            exact = polygonal_select_points(
                xs, ys, polygon, resolution=resolution
            )
            elapsed = time.perf_counter() - start
            approx = polygonal_select_points(
                xs, ys, polygon, resolution=resolution, exact=False
            )
            if reference is None:
                reference = set(exact.ids.tolist())
            assert set(exact.ids.tolist()) == reference  # exactness invariant
            err = (
                len(set(approx.ids.tolist()) ^ reference)
                / max(len(reference), 1)
            )
            rows.append((resolution, elapsed, exact.n_exact_tests, err))
        lines = [
            "# resolution, exact time [s], boundary exact tests, "
            "approx symmetric-difference error",
        ]
        lines += [
            f"{r:5d} {t:.4f} {bt:8d} {e:.5f}" for r, t, bt, e in rows
        ]
        write_series("ablation_resolution", lines)
        for line in lines:
            print(line)
        return rows

    rows = benchmark.pedantic(run_report, rounds=1, iterations=1)
    # Error and boundary-test counts fall monotonically-ish with
    # resolution: compare the coarsest and finest points.
    assert rows[-1][3] <= rows[0][3]
    assert rows[-1][2] < rows[0][2]
