"""Figure 10: varying the polygonal constraint (E5).

The paper fixes the input and sweeps five hand-drawn polygons with a
common MBR and selectivities from roughly 3% to 83%.  Its observations:

- every approach's runtime varies across constraints, but the
  *baseline's* variation is larger because its PIP-test count scales
  with polygon size/complexity;
- the canvas approach stays nearly flat — its per-point cost is one
  texture gather regardless of the constraint.

Groups ``fig10:sel=<pct>`` reproduce the per-polygon comparison;
``bench_fig10_report`` writes the series and asserts the
variation-ratio claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.cpu_pip import cpu_select_multi
from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.gpu.device import Device
from repro.core.queries import polygonal_select_points
from benchmarks.conftest import write_series

N_POINTS = 300_000
RESOLUTION = 1024

APPROACHES = ["cpu", "gpu-baseline", "canvas-discrete", "canvas-integrated"]


def _slice(mbr_points):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n]


def _run(approach, xs, ys, polygon):
    if approach == "cpu":
        return cpu_select_multi(xs, ys, [polygon])
    if approach == "gpu-baseline":
        return gpu_baseline_select_multi(xs, ys, [polygon])
    if approach == "canvas-discrete":
        return polygonal_select_points(
            xs, ys, polygon, resolution=RESOLUTION, device=Device.discrete()
        ).ids
    if approach == "canvas-integrated":
        return polygonal_select_points(
            xs, ys, polygon, resolution=RESOLUTION,
            device=Device.integrated(tile_rows=16),
        ).ids
    raise ValueError(approach)


@pytest.mark.parametrize("poly_index", range(5))
@pytest.mark.parametrize("approach", APPROACHES)
def test_fig10(benchmark, approach, poly_index, mbr_points, fig10_polygons):
    xs, ys = _slice(mbr_points)
    polygon, selectivity = fig10_polygons[poly_index]
    benchmark.group = f"fig10:sel={selectivity:.0%}"
    rounds = 1 if approach == "cpu" else 3
    benchmark.pedantic(
        _run, args=(approach, xs, ys, polygon), rounds=rounds, iterations=1
    )


def test_fig10_report(benchmark, mbr_points, fig10_polygons):
    """Series + the flatness claim: the canvas runtime varies less
    across constraints than the per-point-PIP baseline's."""

    def run_report():
        xs, ys = _slice(mbr_points)
        times: dict[str, list[float]] = {a: [] for a in APPROACHES}
        for polygon, _sel in fig10_polygons:
            for approach in APPROACHES:
                repeats = 1 if approach == "cpu" else 3
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    _run(approach, xs, ys, polygon)
                    best = min(best, time.perf_counter() - start)
                times[approach].append(best)
        lines = [
            "# fig10: runtime seconds across 5 polygonal constraints",
            "# selectivities = "
            + " ".join(f"{sel:.2f}" for _, sel in fig10_polygons),
        ]
        for approach in APPROACHES:
            row = " ".join(f"{t:.4f}" for t in times[approach])
            spread = max(times[approach]) / min(times[approach])
            lines.append(f"{approach:18s} {row}   max/min={spread:.2f}")
        write_series("fig10", lines)
        for line in lines:
            print(line)
        return times

    times = benchmark.pedantic(run_report, rounds=1, iterations=1)

    def spread(approach):
        ts = times[approach]
        return max(ts) / min(ts)

    # The canvas approach's variation across constraints is smaller
    # than the vectorized-PIP baseline's (paper: "this variation is
    # higher for the baseline").
    assert spread("canvas-discrete") < spread("gpu-baseline"), (
        spread("canvas-discrete"), spread("gpu-baseline"),
    )
    # And every constraint still completes far faster than the CPU.
    for i in range(5):
        assert times["canvas-discrete"][i] < times["cpu"][i]
