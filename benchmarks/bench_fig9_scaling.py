"""Figure 9: scaling with input size (E1-E4, A4).

The paper plots, for one and two polygonal constraints:

- (a)/(c) speedup of every approach over the single-threaded CPU
  implementation as input size grows;
- (b)/(d) absolute runtimes.

Each pytest-benchmark group ``fig9{a,c}:n=<size>`` holds the five
approaches at one input size — the grouped comparison table *is* the
figure.  ``bench_fig9_report_*`` additionally computes the speedup
series (the paper's y-axis) and writes them to ``benchmarks/out/``,
asserting the claims that must reproduce:

- every data-parallel approach is well over an order of magnitude
  faster than the scalar CPU baseline (paper: two-plus orders);
- the canvas algebra's advantage over the traditional GPU baseline
  *widens* when the constraint count goes from one to two polygons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cpu_pip import cpu_select_multi
from repro.baselines.cpu_parallel import parallel_cpu_select
from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.gpu.device import Device
from repro.core.queries import polygonal_select_points
from benchmarks.conftest import FIG9_SIZES, QUERY_MBR, write_series

RESOLUTION = 1024

APPROACHES = [
    "cpu",
    "cpu-parallel",
    "gpu-baseline",
    "canvas-discrete",
    "canvas-integrated",
]


def _slice(mbr_points, n):
    xs, ys = mbr_points
    n = min(n, len(xs))
    return xs[:n], ys[:n]


def _run(approach: str, xs, ys, polygons):
    if approach == "cpu":
        return cpu_select_multi(xs, ys, polygons)
    if approach == "cpu-parallel":
        return parallel_cpu_select(xs, ys, polygons, processes=4)
    if approach == "gpu-baseline":
        return gpu_baseline_select_multi(xs, ys, polygons)
    if approach == "canvas-discrete":
        return polygonal_select_points(
            xs, ys, polygons, resolution=RESOLUTION,
            device=Device.discrete(),
        ).ids
    if approach == "canvas-integrated":
        return polygonal_select_points(
            xs, ys, polygons, resolution=RESOLUTION,
            device=Device.integrated(tile_rows=16),
        ).ids
    raise ValueError(approach)


def _bench_rounds(approach: str, n: int) -> int:
    # Scalar CPU baselines are slow by design; one round suffices.
    if approach in ("cpu", "cpu-parallel"):
        return 1
    return 3


@pytest.mark.parametrize("n", FIG9_SIZES)
@pytest.mark.parametrize("approach", APPROACHES)
def test_fig9a(benchmark, approach, n, mbr_points, query_polygons):
    """Fig 9(a)/(b): one polygonal constraint."""
    xs, ys = _slice(mbr_points, n)
    polygons = query_polygons[:1]
    benchmark.group = f"fig9ab:1-polygon:n={n}"
    benchmark.pedantic(
        _run, args=(approach, xs, ys, polygons),
        rounds=_bench_rounds(approach, n), iterations=1,
    )


@pytest.mark.parametrize("n", FIG9_SIZES)
@pytest.mark.parametrize("approach", APPROACHES)
def test_fig9c(benchmark, approach, n, mbr_points, query_polygons):
    """Fig 9(c)/(d): disjunction of two polygonal constraints."""
    xs, ys = _slice(mbr_points, n)
    benchmark.group = f"fig9cd:2-polygons:n={n}"
    benchmark.pedantic(
        _run, args=(approach, xs, ys, query_polygons),
        rounds=_bench_rounds(approach, n), iterations=1,
    )


def _speedup_table(mbr_points, polygons) -> dict[str, dict[int, float]]:
    """Median runtimes per approach and size (single measurement for
    the slow CPU row, best-of-3 elsewhere)."""
    import time

    times: dict[str, dict[int, float]] = {a: {} for a in APPROACHES}
    for n in FIG9_SIZES:
        xs, ys = _slice(mbr_points, n)
        for approach in APPROACHES:
            repeats = 1 if approach in ("cpu", "cpu-parallel") else 3
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                _run(approach, xs, ys, polygons)
                best = min(best, time.perf_counter() - start)
            times[approach][n] = best
    return times


def _report(times, label: str) -> list[str]:
    lines = [
        f"# {label}: runtime seconds and speedup over cpu",
        f"# sizes = {FIG9_SIZES}",
    ]
    for approach in APPROACHES:
        runtimes = " ".join(f"{times[approach][n]:.4f}" for n in FIG9_SIZES)
        speedups = " ".join(
            f"{times['cpu'][n] / times[approach][n]:.1f}" for n in FIG9_SIZES
        )
        lines.append(f"{approach:18s} time[s]: {runtimes}   speedup: {speedups}")
    return lines


def test_fig9_report(benchmark, mbr_points, query_polygons):
    """Regenerates the Fig 9 series and asserts the paper's shape."""

    def run_report():
        one = _speedup_table(mbr_points, query_polygons[:1])
        two = _speedup_table(mbr_points, query_polygons)
        lines = _report(one, "fig9ab (1 polygon)") + [""] + _report(
            two, "fig9cd (2 polygons)"
        )
        write_series("fig9", lines)
        for line in lines:
            print(line)
        return one, two

    one, two = benchmark.pedantic(run_report, rounds=1, iterations=1)

    n_max = FIG9_SIZES[-1]
    # Claim 1: every data-parallel approach clearly beats the scalar
    # CPU at the largest size.  The paper reports two-plus orders of
    # magnitude on real hardware; our substrate compresses the ratio
    # (the interpreted CPU baseline matches the paper's ~2-3 us/point,
    # but NumPy kernels are ~100x slower per point than a real GPU), so
    # the asserted floor is ordinal, not a magnitude — EXPERIMENTS.md
    # records the measured ratios next to the paper's.
    for approach in ("gpu-baseline", "canvas-discrete", "canvas-integrated"):
        speedup = one["cpu"][n_max] / one[approach][n_max]
        assert speedup > 3.0, (approach, speedup)

    # Claim 2: the canvas advantage over the GPU baseline widens with
    # the second constraint polygon (Fig 9a vs 9c) ...
    adv_one = one["gpu-baseline"][n_max] / one["canvas-discrete"][n_max]
    adv_two = two["gpu-baseline"][n_max] / two["canvas-discrete"][n_max]
    assert adv_two > adv_one, (adv_one, adv_two)
    # ... to the point that the canvas plan wins outright under two
    # constraints (the Fig 9(c)/(d) crossover).
    assert adv_two > 1.0, adv_two

    # Claim 3: the integrated-device profile keeps the canvas
    # advantage — it too beats the traditional GPU baseline under two
    # constraints (the paper's "fast spatial queries even on mid-range
    # laptops" takeaway).  On this single-core host the tile budget
    # does not reliably cost wall-clock (no bandwidth gap to emulate),
    # so no discrete-vs-integrated ordering is asserted; see
    # EXPERIMENTS.md.
    assert two["gpu-baseline"][n_max] > two["canvas-integrated"][n_max]
