"""The filtering-stage rationale of the paper's setup (Section 6).

The paper justifies benchmarking only the refinement step: "the
filtering step used by the state-of-the-art GPU-based selection
approach, even though it is CPU-based, takes only a few milliseconds
even for data having over a billion points" — i.e. filtering is no
longer the bottleneck.  This bench substantiates that on our substrate:
an STR R-tree MBR query costs a small fraction of any refinement
approach's runtime on the same input.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.cpu_pip import cpu_select_multi
from repro.geometry.bbox import BoundingBox
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.core.queries import polygonal_select_points
from benchmarks.conftest import QUERY_MBR, write_series

N_POINTS = 200_000


@pytest.fixture(scope="module")
def full_cloud(taxi_pool):
    xs = taxi_pool.pickup_x[:N_POINTS]
    ys = taxi_pool.pickup_y[:N_POINTS]
    return xs, ys


@pytest.fixture(scope="module")
def rtree(full_cloud):
    xs, ys = full_cloud
    items = [
        (i, BoundingBox(float(xs[i]), float(ys[i]),
                        float(xs[i]), float(ys[i])))
        for i in range(len(xs))
    ]
    return RTree(items, leaf_capacity=64)


@pytest.fixture(scope="module")
def grid(full_cloud):
    xs, ys = full_cloud
    window = BoundingBox(
        float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())
    ).expand(1e-9)
    index = GridIndex(window, 128, 128)
    index.bulk_load_points(xs, ys)
    return index


def test_rtree_filter(benchmark, rtree):
    benchmark.group = "filtering-stage"
    benchmark.pedantic(rtree.query, args=(QUERY_MBR,), rounds=5, iterations=1)


def test_grid_filter(benchmark, grid):
    benchmark.group = "filtering-stage"
    benchmark.pedantic(grid.query, args=(QUERY_MBR,), rounds=5, iterations=1)


def test_filtering_report(benchmark, full_cloud, rtree, query_polygons):
    """Filtering is a small fraction of any refinement cost."""

    def run_report():
        xs, ys = full_cloud

        start = time.perf_counter()
        candidates = rtree.query(QUERY_MBR)
        t_filter = time.perf_counter() - start

        idx = np.asarray(sorted(candidates), dtype=np.int64)
        fx, fy = xs[idx], ys[idx]

        start = time.perf_counter()
        polygonal_select_points(fx, fy, query_polygons[0], resolution=1024)
        t_canvas = time.perf_counter() - start

        start = time.perf_counter()
        cpu_select_multi(fx, fy, [query_polygons[0]])
        t_cpu = time.perf_counter() - start

        lines = [
            f"# filtering stage vs refinement, n={len(xs)} "
            f"({len(idx)} in the query MBR)",
            f"rtree MBR filter      {t_filter:.4f}s",
            f"canvas refinement     {t_canvas:.4f}s "
            f"({t_filter / t_canvas:.1%} of which is filtering)",
            f"cpu refinement        {t_cpu:.4f}s",
        ]
        write_series("filtering_stage", lines)
        for line in lines:
            print(line)
        return t_filter, t_canvas, t_cpu

    t_filter, t_canvas, t_cpu = benchmark.pedantic(
        run_report, rounds=1, iterations=1
    )
    # The paper's premise: refinement, not filtering, is the
    # bottleneck.  Bounds are deliberately loose — the full-suite run
    # times these stages under cache pressure from earlier benchmarks.
    assert t_filter < 0.8 * t_canvas
    assert t_filter < 0.25 * t_cpu
