"""PR 2 hot-path benchmark: before-vs-after knobs for the scatter-gather
RasterJoin, bbox-clipped rasterization, and copy-eliding algebra ops.

Each section times the seed-era strategy against the rewritten hot path
on the same workload and verifies the results agree (bit-identical for
the rasterjoin plans).  The measurements land in ``BENCH_PR2.json`` at
the repo root — the start of the perf trajectory the ROADMAP asks for:

- **rasterjoin** — :func:`repro.core.rasterjoin.raster_join_aggregate`
  (scatter-gather) vs :func:`raster_join_aggregate_legacy` (the literal
  per-polygon plan the seed shipped);
- **draw_polygon** — bbox-clipped rasterization vs a faithful inline
  reconstruction of the seed's full-frame fill;
- **algebra** — ``blend``/``mask``/``value_transform`` with the new
  ``out=`` seam vs the default copying semantics;
- **engine_cache** — repeated engine-routed rasterjoin runs, showing
  the canvas cache serving constraint coverage (cold vs warm + hits).

Run ``python benchmarks/bench_pr2_hotpaths.py`` for the full workload
(64 polygons at 1024x1024; writes ``BENCH_PR2.json``) or ``--dry-run``
for a tiny smoke version used by CI (writes
``benchmarks/out/bench_pr2_dry.json`` instead).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.bbox import BoundingBox
from repro.gpu.rasterizer import ring_boundary_cells
from repro.gpu.scanline import parity_fill
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import DIM_AREA, FIELD_COUNT, FIELD_ID, FIELD_VALUE, channel
from repro.core.rasterjoin import (
    raster_join_aggregate,
    raster_join_aggregate_legacy,
)
from repro.engine import AGG_RASTERJOIN, QueryEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_JSON = REPO_ROOT / "BENCH_PR2.json"
DRY_JSON = Path(__file__).resolve().parent / "out" / "bench_pr2_dry.json"

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _workload(n_points: int, n_polys: int, seed: int = 11):
    """Uniform points plus scattered hand-drawn district polygons."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(WINDOW.xmin, WINDOW.xmax, n_points)
    ys = rng.uniform(WINDOW.ymin, WINDOW.ymax, n_points)
    values = rng.uniform(0.0, 5.0, n_points)
    polys = [
        hand_drawn_polygon(
            n_vertices=16, irregularity=0.4, seed=1000 + i,
            center=(rng.uniform(12, 88), rng.uniform(12, 88)),
            radius=rng.uniform(4, 14),
        )
        for i in range(n_polys)
    ]
    return xs, ys, values, polys


def _best_of(fn, rounds: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# Section 1: scatter-gather RasterJoin vs the legacy per-polygon plan
# ----------------------------------------------------------------------
def bench_rasterjoin(n_points: int, n_polys: int, resolution: int,
                     rounds: int = 3) -> dict:
    xs, ys, values, polys = _workload(n_points, n_polys)
    kwargs = dict(window=WINDOW, resolution=resolution)

    t_new_count, r_new = _best_of(
        lambda: raster_join_aggregate(xs, ys, polys, aggregate="count", **kwargs),
        rounds,
    )
    t_new_sum, s_new = _best_of(
        lambda: raster_join_aggregate(xs, ys, polys, values=values,
                                      aggregate="sum", **kwargs),
        rounds,
    )
    t_leg_count, r_leg = _best_of(
        lambda: raster_join_aggregate_legacy(xs, ys, polys, aggregate="count",
                                             **kwargs),
        1,
    )
    t_leg_sum, s_leg = _best_of(
        lambda: raster_join_aggregate_legacy(xs, ys, polys, values=values,
                                             aggregate="sum", **kwargs),
        1,
    )
    identical = (
        np.array_equal(r_new.groups, r_leg.groups)
        and np.array_equal(r_new.values, r_leg.values)
        and np.array_equal(s_new.values, s_leg.values)
    )
    return {
        "n_points": n_points,
        "n_polygons": n_polys,
        "resolution": resolution,
        "legacy_count_s": round(t_leg_count, 4),
        "scatter_gather_count_s": round(t_new_count, 4),
        "legacy_sum_s": round(t_leg_sum, 4),
        "scatter_gather_sum_s": round(t_new_sum, 4),
        "speedup_count": round(t_leg_count / max(t_new_count, 1e-9), 1),
        "speedup_sum": round(t_leg_sum / max(t_new_sum, 1e-9), 1),
        "bit_identical": bool(identical),
    }


# ----------------------------------------------------------------------
# Section 2: bbox-clipped vs full-frame polygon rasterization
# ----------------------------------------------------------------------
def _draw_polygon_fullframe(canvas: Canvas, polygon, record_id: int) -> Canvas:
    """The seed's full-frame ``draw_polygon``, reconstructed verbatim."""
    rings = [canvas._ring_pixels(polygon.shell)]
    rings.extend(canvas._ring_pixels(h) for h in polygon.holes)
    interior = parity_fill(rings, canvas.height, canvas.width,
                           device=canvas.device)
    brows_list, bcols_list = [], []
    for ring_px in rings:
        br, bc = ring_boundary_cells(ring_px, canvas.height, canvas.width)
        brows_list.append(br)
        bcols_list.append(bc)
    brows = np.concatenate(brows_list)
    bcols = np.concatenate(bcols_list)
    covered = interior.copy()
    covered[brows, bcols] = True
    data = canvas.texture.data
    data[:, :, channel(DIM_AREA, FIELD_ID)][covered] = float(record_id)
    data[:, :, channel(DIM_AREA, FIELD_COUNT)][covered] = 1.0
    data[:, :, channel(DIM_AREA, FIELD_VALUE)][covered] = 0.0
    canvas.texture.valid[:, :, DIM_AREA] |= covered
    canvas.boundary[brows, bcols] = True
    canvas.geometries[int(record_id)] = polygon
    return canvas


def bench_draw_polygon(n_polys: int, resolution: int, rounds: int = 3) -> dict:
    _, _, _, polys = _workload(16, n_polys)

    def clipped():
        canvas = Canvas(WINDOW, resolution)
        for i, poly in enumerate(polys, start=1):
            canvas.draw_polygon(poly, record_id=i)
        return canvas

    def fullframe():
        canvas = Canvas(WINDOW, resolution)
        for i, poly in enumerate(polys, start=1):
            _draw_polygon_fullframe(canvas, poly, record_id=i)
        return canvas

    t_clip, c_clip = _best_of(clipped, rounds)
    t_full, c_full = _best_of(fullframe, 1)
    identical = (
        np.array_equal(c_clip.texture.data, c_full.texture.data)
        and np.array_equal(c_clip.texture.valid, c_full.texture.valid)
        and np.array_equal(c_clip.boundary, c_full.boundary)
    )
    return {
        "n_polygons": n_polys,
        "resolution": resolution,
        "fullframe_s": round(t_full, 4),
        "bbox_clipped_s": round(t_clip, 4),
        "speedup": round(t_full / max(t_clip, 1e-9), 1),
        "bit_identical": bool(identical),
    }


# ----------------------------------------------------------------------
# Section 3: copying vs in-place algebra operators
# ----------------------------------------------------------------------
def bench_algebra_inplace(n_points: int, resolution: int,
                          rounds: int = 3) -> dict:
    xs, ys, _, polys = _workload(n_points, 4)
    points = Canvas.from_points(xs, ys, WINDOW, resolution)
    constraint = Canvas.from_polygon(polys[0], WINDOW, resolution)
    predicate = mask_point_in_any_polygon(1.0)

    def shift(gx, gy, data, valid):
        return data + 1.0, valid

    def copying():
        blended = algebra.blend(points, constraint, PIP_MERGE)
        masked = algebra.mask(blended, predicate)
        return algebra.value_transform(masked, shift)

    def in_place():
        scratch = algebra.blend(points, constraint, PIP_MERGE)
        algebra.mask(scratch, predicate, out=scratch)
        return algebra.value_transform(scratch, shift, out=scratch)

    t_copy, r_copy = _best_of(copying, rounds)
    t_inpl, r_inpl = _best_of(in_place, rounds)
    identical = (
        np.array_equal(r_copy.texture.data, r_inpl.texture.data)
        and np.array_equal(r_copy.texture.valid, r_inpl.texture.valid)
    )
    return {
        "n_points": n_points,
        "resolution": resolution,
        "copying_s": round(t_copy, 4),
        "in_place_s": round(t_inpl, 4),
        "speedup": round(t_copy / max(t_inpl, 1e-9), 2),
        "identical": bool(identical),
    }


# ----------------------------------------------------------------------
# Section 4: the engine serving rasterjoin coverage from its cache
# ----------------------------------------------------------------------
def bench_engine_cache(n_points: int, n_polys: int, resolution: int,
                       runs: int = 3) -> dict:
    xs, ys, _, polys = _workload(n_points, n_polys)
    engine = QueryEngine()
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        engine.aggregate_points(
            xs, ys, polys, window=WINDOW, resolution=resolution,
            exact=False, force_plan=AGG_RASTERJOIN,
        )
        times.append(time.perf_counter() - start)
    last = engine.last_report
    stats = engine.cache.stats()
    return {
        "n_points": n_points,
        "n_polygons": n_polys,
        "resolution": resolution,
        "cold_s": round(times[0], 4),
        "warm_s": round(min(times[1:]), 4),
        "warm_run_cache_hits": last.cache_hits,
        "warm_run_cache_misses": last.cache_misses,
        "cache_hit_rate": round(stats.hit_rate, 3),
    }


# ----------------------------------------------------------------------
def run(n_points: int, n_polys: int, resolution: int, out_path: Path,
        rounds: int = 3) -> dict:
    report = {
        "benchmark": "bench_pr2_hotpaths",
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "workload": {
            "window": list(WINDOW),
            "n_points": n_points,
            "n_polygons": n_polys,
            "resolution": resolution,
        },
        "rasterjoin": bench_rasterjoin(n_points, n_polys, resolution, rounds),
        "draw_polygon": bench_draw_polygon(n_polys, resolution, rounds),
        "algebra_inplace": bench_algebra_inplace(n_points, resolution, rounds),
        "engine_cache": bench_engine_cache(n_points, n_polys, resolution),
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dry-run", action="store_true",
                        help="tiny workload; smoke-checks the hot paths "
                             "without touching BENCH_PR2.json")
    args = parser.parse_args(argv)

    if args.dry_run:
        report = run(n_points=20_000, n_polys=12, resolution=256,
                     out_path=DRY_JSON, rounds=2)
    else:
        report = run(n_points=500_000, n_polys=64, resolution=1024,
                     out_path=FULL_JSON, rounds=3)

    rj = report["rasterjoin"]
    dp = report["draw_polygon"]
    ai = report["algebra_inplace"]
    ec = report["engine_cache"]
    print(f"rasterjoin      legacy {rj['legacy_count_s']:.3f}s -> "
          f"scatter-gather {rj['scatter_gather_count_s']:.3f}s "
          f"({rj['speedup_count']}x, bit-identical={rj['bit_identical']})")
    print(f"draw_polygon    full-frame {dp['fullframe_s']:.3f}s -> "
          f"bbox-clipped {dp['bbox_clipped_s']:.3f}s ({dp['speedup']}x)")
    print(f"algebra         copying {ai['copying_s']:.3f}s -> "
          f"in-place {ai['in_place_s']:.3f}s ({ai['speedup']}x)")
    print(f"engine cache    cold {ec['cold_s']:.3f}s -> warm {ec['warm_s']:.3f}s "
          f"({ec['warm_run_cache_hits']} hits on the warm run)")

    # Smoke assertions: equivalence always; the 5x bar on the full run.
    assert rj["bit_identical"], "scatter-gather rasterjoin diverged from legacy"
    assert dp["bit_identical"], "bbox-clipped rasterization diverged"
    assert ai["identical"], "in-place algebra diverged from copying ops"
    assert ec["warm_run_cache_hits"] >= 1, "rasterjoin coverage never hit cache"
    if not args.dry_run:
        assert rj["speedup_count"] >= 5.0, (
            f"rasterjoin speedup {rj['speedup_count']}x below the 5x bar"
        )
    print("ok")
    return 0


if __name__ == "__main__":
    if __package__ in (None, ""):
        sys.path.insert(0, str(REPO_ROOT))
    raise SystemExit(main())
