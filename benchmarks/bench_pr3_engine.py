"""PR 3 engine benchmark: tree-wide copy elision, batch cache sharing,
and the routed-query plan ablation.

Three sections, each verifying result equivalence before timing:

- **copy_elision** — a deep dense expression chain evaluated with the
  legacy copying evaluator vs ownership-aware (``EvalContext``): the
  owned chain pays zero full-texture copies, and the buffer counters
  land in the report;
- **batch_sharing** — a dashboard-style list of selections over the
  same constraint set: one ``execute_batch`` on a shared engine vs the
  unbatched baseline (a cold engine per query, i.e. no cross-query
  cache), showing the batch rasterizing the constraints once;
- **routed_plans** — the newly routed query kinds (distance, knn,
  voronoi, od) timed under each forced physical plan, with the cost
  model's auto choice recorded — the Section 7 ablation extended to
  every frontend.

Run ``python benchmarks/bench_pr3_engine.py`` for the full workload
(writes ``BENCH_PR3.json`` at the repo root) or ``--dry-run`` for the
tiny CI smoke version (writes ``benchmarks/out/bench_pr3_dry.json``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.bbox import BoundingBox
from repro.core.blendfuncs import POLY_MERGE
from repro.core.canvas import Canvas
from repro.core.expressions import EvalContext, InputNode
from repro.core.masks import FieldCompare, NotNull
from repro.core.objectinfo import DIM_AREA, FIELD_COUNT
from repro.engine import (
    DISTANCE_CANVAS,
    DISTANCE_DIRECT,
    KNN_KDTREE,
    KNN_PROBES,
    OD_CANVAS,
    OD_PIP,
    VORONOI_ARGMIN,
    VORONOI_ITERATED,
    BatchQuery,
    QueryEngine,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_JSON = REPO_ROOT / "BENCH_PR3.json"
DRY_JSON = Path(__file__).resolve().parent / "out" / "bench_pr3_dry.json"

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _best_of(fn, rounds: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _scale(factor: float):
    def f(gx, gy, data, valid):
        return data * factor, valid.copy()

    return f


# ----------------------------------------------------------------------
# Section 1: tree-wide copy elision
# ----------------------------------------------------------------------
def bench_copy_elision(resolution: int, depth: int, rounds: int = 3) -> dict:
    """A deep owned chain: legacy copies per operator, ownership-aware
    runs the whole tree in place on one buffer."""
    polys = [
        hand_drawn_polygon(n_vertices=14, irregularity=0.3, seed=70 + i,
                           center=(30 + 8 * i, 50), radius=22)
        for i in range(3)
    ]

    def build(leaf_owned: bool):
        tree = InputNode(
            Canvas.from_polygon(polys[0], WINDOW, resolution, record_id=1),
            owned=leaf_owned,
        )
        for i in range(depth):
            step = i % 3
            if step == 0:
                tree = tree.value_transform(_scale(1.01), name="x1.01")
            elif step == 1:
                tree = tree.mask(NotNull(DIM_AREA))
            else:
                other = InputNode(
                    Canvas.from_polygon(
                        polys[(i // 3) % 3], WINDOW, resolution,
                        record_id=2 + i,
                    ),
                    owned=leaf_owned,
                )
                tree = tree.blend(other, POLY_MERGE)
        return tree.mask(FieldCompare(DIM_AREA, FIELD_COUNT, ">=", 1.0))

    t_legacy, legacy = _best_of(lambda: build(False).evaluate(), rounds)

    ctx_holder = {}

    def run_owned():
        ctx = EvalContext()
        result = build(True).evaluate(ctx)
        ctx_holder["counters"] = ctx.take_counters()
        return result

    t_owned, owned = _best_of(run_owned, rounds)

    identical = (
        np.array_equal(legacy.texture.data, owned.texture.data)
        and np.array_equal(legacy.texture.valid, owned.texture.valid)
        and np.array_equal(legacy.boundary, owned.boundary)
    )
    counters = ctx_holder["counters"]
    return {
        "resolution": resolution,
        "chain_depth": depth,
        "legacy_s": round(t_legacy, 4),
        "ownership_s": round(t_owned, 4),
        "speedup": round(t_legacy / max(t_owned, 1e-9), 2),
        "owned_full_copies": counters.full_copies,
        "owned_inplace_ops": counters.inplace_ops,
        "bit_identical": bool(identical),
    }


# ----------------------------------------------------------------------
# Section 2: batch cache sharing
# ----------------------------------------------------------------------
def bench_batch_sharing(n_points: int, n_queries: int, resolution: int,
                        rounds: int = 3) -> dict:
    """One dashboard refresh: batched on a shared engine vs a cold
    engine per query (the no-sharing baseline)."""
    rng = np.random.default_rng(31)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    districts = [
        hand_drawn_polygon(n_vertices=14, irregularity=0.3, seed=80 + i,
                           center=(25 + 12 * i, 50), radius=13)
        for i in range(4)
    ]
    specs = [
        BatchQuery.selection(xs, ys, districts, window=WINDOW,
                             resolution=resolution)
        for _ in range(n_queries)
    ]

    def sequential_cold():
        return [
            QueryEngine().select_points(
                xs, ys, districts, window=WINDOW, resolution=resolution,
                force_plan="blended-canvas",
            )
            for _ in range(n_queries)
        ]

    def batched():
        engine = QueryEngine()
        return engine.execute_batch([
            BatchQuery.selection(xs, ys, districts, window=WINDOW,
                                 resolution=resolution,
                                 force_plan="blended-canvas")
            for _ in range(n_queries)
        ])

    t_seq, seq_results = _best_of(sequential_cold, rounds)
    t_batch, batch_outcome = _best_of(batched, rounds)
    identical = all(
        np.array_equal(a.ids, b.ids)
        for a, b in zip(seq_results, batch_outcome.results)
    )
    return {
        "n_points": n_points,
        "n_queries": n_queries,
        "resolution": resolution,
        "sequential_cold_s": round(t_seq, 4),
        "batched_s": round(t_batch, 4),
        "speedup": round(t_seq / max(t_batch, 1e-9), 2),
        "batch_cache_hits": batch_outcome.report.cache_hits,
        "batch_cache_misses": batch_outcome.report.cache_misses,
        "identical_results": bool(identical),
    }


# ----------------------------------------------------------------------
# Section 3: routed-query plan ablation
# ----------------------------------------------------------------------
def bench_routed_plans(n_points: int, n_sites: int, resolution: int,
                       rounds: int = 2) -> dict:
    rng = np.random.default_rng(41)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    dest_xs = rng.uniform(0, 100, n_points)
    dest_ys = rng.uniform(0, 100, n_points)
    sites = rng.uniform(10, 90, (n_sites, 2))
    q1 = hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=1,
                            center=(35, 40), radius=20)
    q2 = hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=2,
                            center=(65, 60), radius=20)
    engine = QueryEngine()
    out: dict = {}

    def ablate(kind, plans, run, same):
        rows = {}
        results = {}
        for plan in plans:
            t, result = _best_of(lambda p=plan: run(p), rounds)
            rows[plan] = round(t, 4)
            results[plan] = result
        auto = run(None)
        rows["auto_choice"] = auto.report.plan
        rows["equivalent"] = bool(same(*results.values()))
        out[kind] = rows

    ablate(
        "distance", (DISTANCE_CANVAS, DISTANCE_DIRECT),
        lambda plan: engine.select_distance(
            xs, ys, (50.0, 50.0), 15.0, window=WINDOW,
            resolution=resolution, force_plan=plan,
        ),
        lambda a, b: np.array_equal(a.ids, b.ids),
    )
    ablate(
        "knn", (KNN_PROBES, KNN_KDTREE),
        lambda plan: engine.knn(
            xs, ys, (50.0, 50.0), 10, window=WINDOW,
            resolution=resolution, force_plan=plan,
        ),
        lambda a, b: set(a.ids.tolist()) == set(b.ids.tolist()),
    )
    ablate(
        "voronoi", (VORONOI_ITERATED, VORONOI_ARGMIN),
        lambda plan: engine.voronoi(
            sites, WINDOW, resolution=resolution, force_plan=plan
        ),
        lambda a, b: np.array_equal(a.canvas.texture.data,
                                    b.canvas.texture.data),
    )
    ablate(
        "od", (OD_CANVAS, OD_PIP),
        lambda plan: engine.od_select(
            xs, ys, dest_xs, dest_ys, q1, q2, window=WINDOW,
            resolution=resolution, force_plan=plan,
        ),
        lambda a, b: np.array_equal(a.ids, b.ids),
    )
    return out


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    if dry:
        sizes = dict(
            elision=dict(resolution=64, depth=6, rounds=1),
            batch=dict(n_points=5_000, n_queries=3, resolution=128,
                       rounds=1),
            routed=dict(n_points=3_000, n_sites=6, resolution=64, rounds=1),
        )
        out_path = DRY_JSON
    else:
        sizes = dict(
            elision=dict(resolution=1024, depth=12, rounds=3),
            batch=dict(n_points=50_000, n_queries=8, resolution=1024,
                       rounds=2),
            routed=dict(n_points=100_000, n_sites=24, resolution=512,
                        rounds=2),
        )
        out_path = FULL_JSON

    print("== copy elision (deep owned chain) ==")
    elision = bench_copy_elision(**sizes["elision"])
    print(json.dumps(elision, indent=2))
    print("== batch cache sharing ==")
    batch = bench_batch_sharing(**sizes["batch"])
    print(json.dumps(batch, indent=2))
    print("== routed-query plan ablation ==")
    routed = bench_routed_plans(**sizes["routed"])
    print(json.dumps(routed, indent=2))

    payload = {
        "dry_run": dry,
        "copy_elision": elision,
        "batch_sharing": batch,
        "routed_plans": routed,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    ok = (
        elision["bit_identical"]
        and elision["owned_full_copies"] == 0
        and batch["identical_results"]
        and all(row["equivalent"] for row in routed.values())
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
