"""PR 4 API benchmark: spec-dispatch overhead and serve throughput.

Two sections, each verifying result equivalence before timing:

- **spec_dispatch** — the same selection and kNN workloads executed
  three ways: straight engine calls (no declarative layer), the legacy
  frontend signatures (now spec-constructing sugar), and the full
  service path (``Session.run(spec_from_dict(json.loads(line)))`` with
  a registry-referenced dataset).  The acceptance bar for the PR: the
  full spec path costs **< 5%** over the engine-direct call.
- **serve** — queries/sec of the JSON-lines loop on a warm session
  (constraint canvases cached after the first request), for a repeated
  dashboard selection and a mixed select/knn/aggregate stream.

Run ``python benchmarks/bench_pr4_api.py`` for the full workload
(writes ``BENCH_PR4.json`` at the repo root) or ``--dry-run`` for the
tiny CI smoke version (writes ``benchmarks/out/bench_pr4_dry.json``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    DatasetRegistry,
    GeometryData,
    SelectSpec,
    Session,
    serve_lines,
    spec_from_dict,
)
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox
from repro.queries import knn as knn_frontend
from repro.queries import polygonal_select_points
from repro.queries.common import default_window

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_JSON = REPO_ROOT / "BENCH_PR4.json"
DRY_JSON = Path(__file__).resolve().parent / "out" / "bench_pr4_dry.json"

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _best_of(fn, rounds: int) -> tuple[float, object]:
    best = np.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_spec_dispatch(n_points: int, resolution: int, rounds: int) -> dict:
    """Engine-direct vs frontend vs full JSON spec path, same workload."""
    rng = np.random.default_rng(40)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    poly = rescale_to_box(
        hand_drawn_polygon(seed=3, n_vertices=24),
        BoundingBox(20.0, 20.0, 80.0, 80.0),
    )
    window = default_window(xs, ys, [poly])

    registry = DatasetRegistry().register("bench", (xs, ys))
    session = Session(registry, engine=QueryEngine())
    engine = session.engine

    select_line = json.dumps(SelectSpec(
        dataset="bench", constraints=[ConstraintSpec.polygon(poly)],
        resolution=resolution,
    ).to_dict())
    knn_line = json.dumps({
        "spec": "knn", "version": 1, "dataset": "bench",
        "query_point": [50.0, 50.0], "k": 10, "resolution": resolution,
    })

    out: dict = {"n_points": n_points, "resolution": resolution}
    workloads = {
        "select": dict(
            engine_direct=lambda: engine.select_points(
                xs, ys, [poly], window=window, resolution=resolution
            ),
            frontend=lambda: polygonal_select_points(
                xs, ys, poly, resolution=resolution
            ),
            spec_json=lambda: session.run(
                spec_from_dict(json.loads(select_line))
            ),
        ),
        "knn": dict(
            engine_direct=lambda: engine.knn(
                xs, ys, (50.0, 50.0), 10,
                window=_knn_window(xs, ys, (50.0, 50.0)),
                resolution=resolution,
            ),
            frontend=lambda: knn_frontend(
                xs, ys, (50.0, 50.0), 10, resolution=resolution
            ),
            spec_json=lambda: session.run(
                spec_from_dict(json.loads(knn_line))
            ),
        ),
    }
    for name, paths in workloads.items():
        ids = {}
        timings = {}
        for path_name, fn in paths.items():
            # Warm once (fills the canvas cache identically for all
            # paths), then take the best of `rounds`.
            reference = fn()
            timings[path_name], result = _best_of(fn, rounds)
            got = result.ids if hasattr(result, "ids") else result
            ids[path_name] = np.asarray(got)
            del reference
        assert all(
            np.array_equal(ids["engine_direct"], other)
            for other in ids.values()
        ), f"{name}: paths disagree"
        overhead = (
            100.0 * (timings["spec_json"] - timings["engine_direct"])
            / timings["engine_direct"]
        )
        out[name] = {
            "engine_direct_ms": timings["engine_direct"] * 1e3,
            "frontend_ms": timings["frontend"] * 1e3,
            "spec_json_ms": timings["spec_json"] * 1e3,
            "spec_overhead_pct": overhead,
            "meets_5pct_bar": bool(overhead < 5.0),
        }
        print(
            f"  {name:<7} engine {timings['engine_direct'] * 1e3:8.2f} ms | "
            f"frontend {timings['frontend'] * 1e3:8.2f} ms | "
            f"spec+json {timings['spec_json'] * 1e3:8.2f} ms | "
            f"overhead {overhead:+.2f}%"
        )
    return out


def _knn_window(xs, ys, query_point):
    base = default_window(xs, ys)
    qx, qy = query_point
    return base.union(BoundingBox(qx, qy, qx, qy)).expand(
        0.01 * max(base.width, base.height)
    )


def bench_serve(n_points: int, resolution: int, n_requests: int) -> dict:
    """Queries/sec of the JSON-lines loop on a warm session."""
    rng = np.random.default_rng(41)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    poly = rescale_to_box(
        hand_drawn_polygon(seed=5, n_vertices=24),
        BoundingBox(15.0, 25.0, 75.0, 85.0),
    )
    registry = DatasetRegistry().register("bench", (xs, ys))
    session = Session(registry, engine=QueryEngine())

    select_spec = SelectSpec(
        dataset="bench", constraints=[ConstraintSpec.polygon(poly)],
        resolution=resolution,
    ).to_dict()
    mixed_specs = [
        select_spec,
        {"spec": "knn", "version": 1, "dataset": "bench",
         "query_point": [30.0, 60.0], "k": 5, "resolution": resolution},
        AggregateSpec(
            dataset="bench", polygons=GeometryData([poly], ids=[1]),
            resolution=resolution,
        ).to_dict(),
    ]

    out: dict = {"n_points": n_points, "resolution": resolution,
                 "n_requests": n_requests}
    for name, stream in (
        ("repeated_select", [select_spec] * n_requests),
        ("mixed_families",
         [mixed_specs[i % len(mixed_specs)] for i in range(n_requests)]),
    ):
        lines = [json.dumps(spec) for spec in stream]
        # Warm the cache so the steady state is measured, as a service
        # would see it.
        for _ in serve_lines(lines[:3], session):
            pass
        t0 = time.perf_counter()
        answered = 0
        for response in serve_lines(lines, session):
            assert json.loads(response)["ok"]
            answered += 1
        elapsed = time.perf_counter() - t0
        out[name] = {
            "queries_per_sec": answered / elapsed,
            "mean_latency_ms": elapsed / answered * 1e3,
        }
        print(
            f"  serve {name:<16} {answered / elapsed:8.1f} q/s "
            f"({elapsed / answered * 1e3:.2f} ms/query)"
        )
    return out


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    if dry:
        dispatch_cfg = dict(n_points=5_000, resolution=128, rounds=3)
        serve_cfg = dict(n_points=5_000, resolution=128, n_requests=12)
        target = DRY_JSON
    else:
        dispatch_cfg = dict(n_points=500_000, resolution=512, rounds=5)
        serve_cfg = dict(n_points=200_000, resolution=512, n_requests=60)
        target = FULL_JSON

    print(f"spec dispatch overhead ({dispatch_cfg['n_points']} points, "
          f"{dispatch_cfg['resolution']}^2):")
    dispatch = bench_spec_dispatch(**dispatch_cfg)
    print(f"serve throughput ({serve_cfg['n_points']} points, warm cache):")
    throughput = bench_serve(**serve_cfg)

    payload = {
        "benchmark": "pr4_api",
        "mode": "dry-run" if dry else "full",
        "spec_dispatch": dispatch,
        "serve": throughput,
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
