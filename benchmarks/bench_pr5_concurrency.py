"""PR 5 concurrency benchmark: parallel batches, result cache, serve.

Three sections, each verifying result equivalence before timing:

- **parallel_batch** — wall-clock of ``execute_batch`` at 8 and 16
  independent members as the worker count grows (1, 2, 4, 8).  Members
  are distinct selections (distinct constraint canvases), so the
  speedup measures genuine overlap of rasterize+gather work, not cache
  sharing.  The acceptance bar: **>= 1.5x** on the 8-member batch at
  the best worker count.  Thread-level speedup needs hardware threads:
  the JSON records ``cpu_count`` next to the measurements, and on a
  single-CPU host (where *no* threading design can beat serial
  wall-clock) the bar is reported as ``not_applicable`` rather than
  silently failed.
- **result_cache** — latency of a warm spec-digest result-cache hit vs
  the cold run of the same spec (`Session(result_cache_max_bytes=…)`).
- **serve_workers** — queries/sec of the JSON-lines loop over a mixed
  spec stream at 1, 2 and 4 workers, same shared session semantics as
  ``python -m repro serve --workers N``.

Run ``python benchmarks/bench_pr5_concurrency.py`` for the full
workload (writes ``BENCH_PR5.json`` at the repo root) or ``--dry-run``
for the tiny CI smoke version (writes
``benchmarks/out/bench_pr5_dry.json``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import (
    ConstraintSpec,
    DatasetRegistry,
    SelectSpec,
    Session,
    serve_lines,
)
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import BatchQuery, QueryEngine
from repro.geometry.bbox import BoundingBox

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_JSON = REPO_ROOT / "BENCH_PR5.json"
DRY_JSON = Path(__file__).resolve().parent / "out" / "bench_pr5_dry.json"

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _member_polygons(n_members: int) -> list:
    """Distinct constraint polygons — one canvas build per member."""
    return [
        rescale_to_box(
            hand_drawn_polygon(seed=seed, n_vertices=28),
            BoundingBox(5.0 + 2 * seed, 5.0, 60.0 + 2 * seed, 75.0),
        )
        for seed in range(n_members)
    ]


def _selection_batch(xs, ys, polygons, resolution) -> list[BatchQuery]:
    return [
        BatchQuery.selection(
            xs, ys, [poly], window=WINDOW, resolution=resolution,
            force_plan="blended-canvas",
        )
        for poly in polygons
    ]


def bench_parallel_batch(n_points: int, resolution: int,
                         worker_counts: tuple[int, ...],
                         rounds: int = 2) -> dict:
    """Batch wall-clock vs workers at 8 and 16 independent members."""
    import os

    cpus = os.cpu_count() or 1
    rng = np.random.default_rng(50)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    out: dict = {"n_points": n_points, "resolution": resolution,
                 "cpu_count": cpus}
    for n_members in (8, 16):
        polygons = _member_polygons(n_members)
        reference = None
        rows = {}
        for workers in worker_counts:
            best = np.inf
            for _ in range(rounds):
                # A fresh engine per round: a warm canvas cache would
                # let later configurations skip the rasterization the
                # earlier ones paid.
                engine = QueryEngine(max_workers=workers)
                batch = _selection_batch(xs, ys, polygons, resolution)
                t0 = time.perf_counter()
                outcome = engine.execute_batch(batch)
                best = min(best, time.perf_counter() - t0)
                fingerprints = [o.ids.tobytes() for o in outcome.results]
                if reference is None:
                    reference = fingerprints
                assert fingerprints == reference, (
                    f"{workers}-worker batch diverged from serial"
                )
            rows[str(workers)] = best * 1e3
            print(
                f"  batch {n_members:>2} members x {workers} worker(s): "
                f"{best * 1e3:8.2f} ms"
            )
        serial_ms = rows[str(worker_counts[0])]
        best_workers, best_ms = min(rows.items(), key=lambda kv: kv[1])
        speedup = serial_ms / best_ms
        # On one hardware thread no software design can beat serial
        # wall-clock for CPU-bound members — report the bar as
        # inapplicable instead of silently failed so multi-core runs
        # (CI, real deployments) carry the meaningful verdict.
        bar = bool(speedup >= 1.5) if cpus > 1 else "not_applicable"
        out[f"members_{n_members}"] = {
            "wall_ms_by_workers": rows,
            "best_workers": int(best_workers),
            "speedup_at_best": speedup,
            "meets_1_5x_bar": bar,
        }
        print(
            f"  -> {n_members} members: {speedup:.2f}x at "
            f"{best_workers} workers (cpus: {cpus})"
        )
    return out


def bench_result_cache(n_points: int, resolution: int, rounds: int) -> dict:
    """Warm result-cache hit latency vs the cold run of the same spec."""
    registry = DatasetRegistry()
    rng = np.random.default_rng(51)
    registry.register("bench", (rng.uniform(0, 100, n_points),
                                rng.uniform(0, 100, n_points)))
    poly = rescale_to_box(hand_drawn_polygon(seed=9, n_vertices=24),
                          BoundingBox(20.0, 20.0, 80.0, 80.0))
    spec = SelectSpec(dataset="bench",
                      constraints=[ConstraintSpec.polygon(poly)],
                      resolution=resolution)

    cold_session = Session(registry, engine=QueryEngine())
    t0 = time.perf_counter()
    cold_result = cold_session.run(spec)
    cold_s = time.perf_counter() - t0

    warm_session = Session(registry, engine=QueryEngine(),
                           result_cache_max_bytes=64 * 1024 * 1024)
    first = warm_session.run(spec)  # populate
    best_warm = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        warm_result = warm_session.run(spec)
        best_warm = min(best_warm, time.perf_counter() - t0)
    assert np.array_equal(cold_result.ids, first.ids)
    assert warm_result is first  # the shared frozen entry
    stats = warm_session.result_cache.stats()
    out = {
        "n_points": n_points,
        "resolution": resolution,
        "cold_ms": cold_s * 1e3,
        "warm_hit_ms": best_warm * 1e3,
        "speedup": cold_s / best_warm,
        "cache": stats.as_dict(),
    }
    print(
        f"  result cache: cold {cold_s * 1e3:8.2f} ms -> warm hit "
        f"{best_warm * 1e3:8.3f} ms ({cold_s / best_warm:.0f}x)"
    )
    return out


def bench_serve_workers(n_points: int, resolution: int,
                        n_requests: int) -> dict:
    """Threaded serve q/s over a mixed stream, 1 / 2 / 4 workers."""
    rng = np.random.default_rng(52)
    xs = rng.uniform(0, 100, n_points)
    ys = rng.uniform(0, 100, n_points)
    polys = _member_polygons(6)
    lines = [
        json.dumps(SelectSpec(
            dataset="bench",
            constraints=[ConstraintSpec.polygon(polys[i % len(polys)])],
            resolution=resolution,
        ).to_dict())
        for i in range(n_requests)
    ]

    # Worker throughput is meaningless without the core count it ran
    # on (parallel_batch already records it; keep the sections aligned).
    out: dict = {"n_points": n_points, "resolution": resolution,
                 "n_requests": n_requests, "cpu_count": os.cpu_count() or 1}
    reference = None
    for workers in (1, 2, 4):
        registry = DatasetRegistry(allow_files=False).register(
            "bench", (xs, ys)
        )
        session = Session(registry, engine=QueryEngine(),
                          max_join_members=1_000)
        t0 = time.perf_counter()
        matched = []
        for response in serve_lines(iter(lines), session, workers=workers):
            payload = json.loads(response)
            assert payload["ok"]
            matched.append(payload["result"]["matched"])
        elapsed = time.perf_counter() - t0
        if reference is None:
            reference = matched
        assert matched == reference, "threaded serve answers diverged"
        out[f"workers_{workers}"] = {
            "queries_per_sec": len(lines) / elapsed,
            "mean_latency_ms": elapsed / len(lines) * 1e3,
        }
        print(
            f"  serve x{workers} worker(s): "
            f"{len(lines) / elapsed:8.1f} q/s "
            f"({elapsed / len(lines) * 1e3:.2f} ms/query)"
        )
    return out


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    if dry:
        batch_cfg = dict(n_points=4_000, resolution=128,
                         worker_counts=(1, 2))
        cache_cfg = dict(n_points=4_000, resolution=128, rounds=3)
        serve_cfg = dict(n_points=4_000, resolution=128, n_requests=8)
        target = DRY_JSON
    else:
        batch_cfg = dict(n_points=200_000, resolution=512,
                         worker_counts=(1, 2, 4, 8))
        cache_cfg = dict(n_points=200_000, resolution=512, rounds=5)
        serve_cfg = dict(n_points=100_000, resolution=256, n_requests=48)
        target = FULL_JSON

    print(f"parallel batch ({batch_cfg['n_points']} points, "
          f"{batch_cfg['resolution']}^2):")
    batch = bench_parallel_batch(**batch_cfg)
    print("result cache:")
    cache = bench_result_cache(**cache_cfg)
    print("threaded serve:")
    serve = bench_serve_workers(**serve_cfg)

    payload = {
        "benchmark": "pr5_concurrency",
        "mode": "dry-run" if dry else "full",
        "parallel_batch": batch,
        "result_cache": cache,
        "serve_workers": serve,
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
