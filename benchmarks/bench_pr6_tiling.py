"""PR 6 tiling benchmark: warm tiles under pan/zoom, high-res feasibility.

Three sections, each verifying result equivalence before timing:

- **pan_zoom** — a dashboard-style pan circuit: one fixed constraint
  set, ~24 viewport windows walking the perimeter of a pan grid in
  exact tile-sized steps, repeated for several rounds.  Both engines
  get the *same* canvas-cache byte budget; the whole-frame engine must
  rasterize per (constraint set, window) pair, so the circuit's
  working set blows the budget and every round stays cold, while the
  tiled engine re-gathers from lattice tiles shared across windows and
  is fully warm from round 2.  The acceptance bar: **>= 2x**
  wall-clock on rounds 2+ (tiled vs whole-frame re-execution).
- **high_resolution** — one 4096x4096 selection through the tiled path
  under a cache byte budget (256 MiB) that a single full-frame canvas
  (~1.27 GiB) could not even enter; tiles build, serve their gather,
  and age out without the peak footprint ever exceeding the budget.
- **tiled_vs_frame** — the honest cold ablation: same query, fresh
  caches, whole-frame vs tiled.  Tiling pays per-tile overhead when
  nothing is warm; this records the price the pan/zoom reuse buys back.

Run ``python benchmarks/bench_pr6_tiling.py`` for the full workload
(writes ``BENCH_PR6.json`` at the repo root) or ``--dry-run`` for the
tiny CI smoke version (writes ``benchmarks/out/bench_pr6_dry.json``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox

REPO_ROOT = Path(__file__).resolve().parent.parent
FULL_JSON = REPO_ROOT / "BENCH_PR6.json"
DRY_JSON = Path(__file__).resolve().parent / "out" / "bench_pr6_dry.json"

#: Bytes of a whole-frame canvas at HxW: a 9-channel float64 texture,
#: a 3-group validity mask, and a boundary byte per pixel.  Kept as
#: arithmetic (not an allocation) so the high-resolution section can
#: price the full-frame alternative without materialising it.
FRAME_BYTES_PER_PIXEL = 9 * 8 + 3 * 1 + 1


def _scatter_polygons(n: int, domain: BoundingBox, seed0: int = 7) -> list:
    """Constraint polygons spread across *domain* so every viewport of
    the pan circuit overlaps a few of them."""
    rng = np.random.default_rng(seed0)
    polys = []
    for i in range(n):
        cx = rng.uniform(domain.xmin, domain.xmax)
        cy = rng.uniform(domain.ymin, domain.ymax)
        half_w = rng.uniform(0.25, 0.45) * (domain.xmax - domain.xmin) / 2
        half_h = rng.uniform(0.25, 0.45) * (domain.ymax - domain.ymin) / 2
        polys.append(rescale_to_box(
            hand_drawn_polygon(seed=seed0 + i, n_vertices=40),
            BoundingBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
        ))
    return polys


def _pan_circuit(n_cols: int, n_rows: int, step: float,
                 size: float) -> list[BoundingBox]:
    """Viewport windows walking the perimeter of an (n_cols x n_rows)
    pan grid in *step*-sized moves — the classic dashboard pan loop.
    *step* must be the world size of one tile so consecutive windows
    share lattice tiles exactly."""
    positions = (
        [(i, 0) for i in range(n_cols)]
        + [(n_cols - 1, j) for j in range(1, n_rows)]
        + [(i, n_rows - 1) for i in range(n_cols - 2, -1, -1)]
        + [(0, j) for j in range(n_rows - 2, 0, -1)]
    )
    return [
        BoundingBox(i * step, j * step, i * step + size, j * step + size)
        for i, j in positions
    ]


def _run_circuit(engine: QueryEngine, xs, ys, polys, windows,
                 resolution: int, tiling: int | None) -> tuple[float, list]:
    """One round of the circuit on *engine*; returns (seconds, ids)."""
    matched = []
    t0 = time.perf_counter()
    for window in windows:
        result = engine.select_points(
            xs, ys, polys, window=window, resolution=resolution,
            exact=False, tiling=tiling,
            force_plan=None if tiling is not None else "blended-canvas",
        )
        matched.append(result.ids)
    return time.perf_counter() - t0, matched


def bench_pan_zoom(n_points: int, resolution: int, tiling: int,
                   n_cols: int, n_rows: int, rounds: int,
                   cache_mb: int) -> dict:
    """Warm-tile pan circuit vs whole-frame re-execution, same budget."""
    tile_world = 1.0 / tiling  # window is 1.0 wide at `resolution` px
    windows = _pan_circuit(n_cols, n_rows, step=tile_world, size=1.0)
    span = BoundingBox.union_all(windows)
    rng = np.random.default_rng(60)
    xs = rng.uniform(span.xmin, span.xmax, n_points)
    ys = rng.uniform(span.ymin, span.ymax, n_points)
    polys = _scatter_polygons(8, span)

    budget = cache_mb * 1024 * 1024
    # Entry capacity far above the tile count: the byte budget must be
    # the binding constraint for both engines, not the LRU entry cap.
    frame_engine = QueryEngine(cache_capacity=8192, cache_max_bytes=budget)
    tiled_engine = QueryEngine(cache_capacity=8192, cache_max_bytes=budget)

    frame_rounds, tiled_rounds = [], []
    reference = None
    for _ in range(rounds):
        f_sec, f_ids = _run_circuit(frame_engine, xs, ys, polys, windows,
                                    resolution, tiling=None)
        t_sec, t_ids = _run_circuit(tiled_engine, xs, ys, polys, windows,
                                    resolution, tiling=tiling)
        for a, b in zip(f_ids, t_ids):
            assert np.array_equal(a, b), "tiled pan answers diverged"
        if reference is None:
            reference = f_ids
        frame_rounds.append(f_sec)
        tiled_rounds.append(t_sec)
        print(f"  pan round: frame {f_sec * 1e3:8.1f} ms   "
              f"tiled {t_sec * 1e3:8.1f} ms")

    last = tiled_engine.reports[-1]
    warm_frame = sum(frame_rounds[1:])
    warm_tiled = sum(tiled_rounds[1:])
    return {
        "n_points": n_points,
        "resolution": resolution,
        "tiling": tiling,
        "n_windows": len(windows),
        "rounds": rounds,
        "cache_max_bytes": budget,
        "frame_round_s": frame_rounds,
        "tiled_round_s": tiled_rounds,
        "frame_cache_bytes_used": frame_engine.cache.stats().bytes_used,
        "tiled_cache_bytes_used": tiled_engine.cache.stats().bytes_used,
        "last_query_tiles": {"lattice": last.tiles, "hits": last.tile_hits,
                             "misses": last.tile_misses},
        "warm_speedup": warm_frame / warm_tiled,
    }


def bench_high_resolution(n_points: int, resolution: int, tiling: int,
                          cache_mb: int) -> dict:
    """One high-resolution tiled selection under a byte budget the
    whole-frame canvas would exceed on its own."""
    window = BoundingBox(0.0, 0.0, 1.0, 1.0)
    rng = np.random.default_rng(61)
    xs = rng.uniform(0.0, 1.0, n_points)
    ys = rng.uniform(0.0, 1.0, n_points)
    polys = [rescale_to_box(
        hand_drawn_polygon(seed=62, n_vertices=48),
        BoundingBox(0.05, 0.05, 0.95, 0.95),
    )]

    budget = cache_mb * 1024 * 1024
    frame_bytes = resolution * resolution * FRAME_BYTES_PER_PIXEL
    engine = QueryEngine(cache_capacity=256, cache_max_bytes=budget)
    t0 = time.perf_counter()
    result = engine.select_points(
        xs, ys, polys, window=window, resolution=resolution,
        exact=False, tiling=tiling,
    )
    elapsed = time.perf_counter() - t0
    peak = engine.cache.stats().bytes_used
    report = engine.reports[-1]
    print(f"  {resolution}x{resolution} tiled selection: "
          f"{elapsed * 1e3:.1f} ms, cache peak "
          f"{peak / 2**20:.1f} MiB of {cache_mb} MiB budget "
          f"(full frame would be {frame_bytes / 2**20:.1f} MiB)")
    return {
        "n_points": n_points,
        "resolution": resolution,
        "tiling": tiling,
        "matched": int(len(result.ids)),
        "elapsed_s": elapsed,
        "cache_max_bytes": budget,
        "cache_bytes_used": peak,
        "full_frame_bytes": frame_bytes,
        "frame_exceeds_budget": frame_bytes > budget,
        "tiles": {"lattice": report.tiles, "hits": report.tile_hits,
                  "misses": report.tile_misses},
    }


def bench_tiled_vs_frame(n_points: int, resolution: int,
                         tiling: int) -> dict:
    """Cold ablation: fresh caches, one run each way, same answers."""
    window = BoundingBox(0.0, 0.0, 1.0, 1.0)
    rng = np.random.default_rng(63)
    xs = rng.uniform(0.0, 1.0, n_points)
    ys = rng.uniform(0.0, 1.0, n_points)
    polys = _scatter_polygons(6, window, seed0=64)

    frame_engine = QueryEngine()
    tiled_engine = QueryEngine()
    t0 = time.perf_counter()
    frame = frame_engine.select_points(
        xs, ys, polys, window=window, resolution=resolution,
        exact=False, force_plan="blended-canvas",
    )
    frame_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    tiled = tiled_engine.select_points(
        xs, ys, polys, window=window, resolution=resolution,
        exact=False, tiling=tiling,
    )
    tiled_s = time.perf_counter() - t0
    assert np.array_equal(frame.ids, tiled.ids), "cold ablation diverged"
    print(f"  cold: frame {frame_s * 1e3:8.1f} ms   "
          f"tiled {tiled_s * 1e3:8.1f} ms "
          f"(x{tiled_s / frame_s:.2f} cold overhead)")
    return {
        "n_points": n_points,
        "resolution": resolution,
        "tiling": tiling,
        "frame_cold_s": frame_s,
        "tiled_cold_s": tiled_s,
        "tiled_over_frame": tiled_s / frame_s,
    }


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    if dry:
        pan_cfg = dict(n_points=3_000, resolution=64, tiling=2,
                       n_cols=4, n_rows=3, rounds=2, cache_mb=4)
        hires_cfg = dict(n_points=5_000, resolution=512, tiling=4,
                         cache_mb=4)
        ablation_cfg = dict(n_points=3_000, resolution=64, tiling=2)
        target = DRY_JSON
    else:
        pan_cfg = dict(n_points=30_000, resolution=256, tiling=4,
                       n_cols=9, n_rows=5, rounds=4, cache_mb=64)
        hires_cfg = dict(n_points=100_000, resolution=4096, tiling=8,
                         cache_mb=256)
        ablation_cfg = dict(n_points=30_000, resolution=512, tiling=4)
        target = FULL_JSON

    print("# pan_zoom")
    pan = bench_pan_zoom(**pan_cfg)
    print(f"  warm-round speedup: x{pan['warm_speedup']:.2f}")
    print("# high_resolution")
    hires = bench_high_resolution(**hires_cfg)
    print("# tiled_vs_frame (cold)")
    ablation = bench_tiled_vs_frame(**ablation_cfg)

    payload = {
        "benchmark": "pr6_tiling",
        "dry_run": dry,
        "pan_zoom": pan,
        "high_resolution": hires,
        "tiled_vs_frame": ablation,
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {target}")

    if not dry:
        # The acceptance bars, enforced where the numbers are produced.
        assert pan["warm_speedup"] >= 2.0, (
            f"warm-tile pan speedup x{pan['warm_speedup']:.2f} < x2"
        )
        assert hires["cache_bytes_used"] <= hires["cache_max_bytes"], (
            "tile cache exceeded its byte budget"
        )
        assert hires["frame_exceeds_budget"], (
            "high-res section must use a budget below one full frame"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
