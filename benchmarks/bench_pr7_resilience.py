"""PR 7 resilience benchmark: what the safety rails cost and deliver.

Three sections:

- **checkpoint_overhead** — the PR 6 warm pan circuit (tiled, fully
  warm from round 2) run twice on identical engines: once with no
  deadline, once with a generous 60 s budget so every checkpoint
  executes its comparison and nothing ever aborts.  The acceptance
  bar: warm-round overhead **< 5%**.  Answers are asserted identical
  first — checkpoints observe, they never change results.
- **shed_latency** — a window-saturating synthetic stream against a
  2-worker serve loop whose requests are slowed by an injected delay
  and whose admission backlog is capped: overload must shed in-band,
  and a shed answer must come back far faster than a served one
  (that is the entire point of shedding).  The session's caches and
  pool run under a ``MemoryGovernor`` budget and usage is recorded.
- **deadline_abort_latency** — repeated runs of a raster query under
  tiny budgets, measuring the overshoot past the budget at which the
  typed abort actually lands (the "within one checkpoint" guarantee,
  as a distribution: p50/p95/max overshoot).

Run ``python benchmarks/bench_pr7_resilience.py`` for the full
workload or ``--dry-run`` for the CI smoke version; both write
``BENCH_PR7.json`` at the repo root (the dry run is marked as such in
the payload).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import Session
from repro.api.serve import serve_lines
from repro.api.specs import VoronoiSpec, WindowSpec
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox
from repro.resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    MemoryGovernor,
)
from repro.testing import FaultPlan, FaultRule, inject

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGET_JSON = REPO_ROOT / "BENCH_PR7.json"


def _scatter_polygons(n: int, domain: BoundingBox, seed0: int = 7) -> list:
    rng = np.random.default_rng(seed0)
    polys = []
    for i in range(n):
        cx = rng.uniform(domain.xmin, domain.xmax)
        cy = rng.uniform(domain.ymin, domain.ymax)
        half_w = rng.uniform(0.25, 0.45) * (domain.xmax - domain.xmin) / 2
        half_h = rng.uniform(0.25, 0.45) * (domain.ymax - domain.ymin) / 2
        polys.append(rescale_to_box(
            hand_drawn_polygon(seed=seed0 + i, n_vertices=40),
            BoundingBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
        ))
    return polys


def _pan_circuit(n_cols: int, n_rows: int, step: float,
                 size: float) -> list[BoundingBox]:
    positions = (
        [(i, 0) for i in range(n_cols)]
        + [(n_cols - 1, j) for j in range(1, n_rows)]
        + [(i, n_rows - 1) for i in range(n_cols - 2, -1, -1)]
        + [(0, j) for j in range(n_rows - 2, 0, -1)]
    )
    return [
        BoundingBox(i * step, j * step, i * step + size, j * step + size)
        for i, j in positions
    ]


def _run_circuit(engine: QueryEngine, xs, ys, polys, windows,
                 resolution: int, tiling: int,
                 deadline_s: float | None) -> tuple[float, list]:
    matched = []
    t0 = time.perf_counter()
    for window in windows:
        result = engine.select_points(
            xs, ys, polys, window=window, resolution=resolution,
            exact=False, tiling=tiling,
            deadline=Deadline(deadline_s) if deadline_s else None,
        )
        matched.append(result.ids)
    return time.perf_counter() - t0, matched


def bench_checkpoint_overhead(n_points: int, resolution: int, tiling: int,
                              n_cols: int, n_rows: int,
                              rounds: int) -> dict:
    """Warm pan circuit with vs without a (never-hit) deadline."""
    tile_world = 1.0 / tiling
    windows = _pan_circuit(n_cols, n_rows, step=tile_world, size=1.0)
    span = BoundingBox.union_all(windows)
    rng = np.random.default_rng(70)
    xs = rng.uniform(span.xmin, span.xmax, n_points)
    ys = rng.uniform(span.ymin, span.ymax, n_points)
    polys = _scatter_polygons(8, span)

    bare_engine = QueryEngine(cache_capacity=8192)
    deadlined_engine = QueryEngine(cache_capacity=8192)
    bare_rounds, deadlined_rounds = [], []
    for _ in range(rounds):
        b_sec, b_ids = _run_circuit(bare_engine, xs, ys, polys, windows,
                                    resolution, tiling, deadline_s=None)
        d_sec, d_ids = _run_circuit(deadlined_engine, xs, ys, polys,
                                    windows, resolution, tiling,
                                    deadline_s=60.0)
        for a, b in zip(b_ids, d_ids):
            assert np.array_equal(a, b), "checkpoints changed answers"
        bare_rounds.append(b_sec)
        deadlined_rounds.append(d_sec)
        print(f"  pan round: bare {b_sec * 1e3:8.1f} ms   "
              f"deadlined {d_sec * 1e3:8.1f} ms")

    warm_bare = sum(bare_rounds[1:])
    warm_deadlined = sum(deadlined_rounds[1:])
    overhead = warm_deadlined / warm_bare - 1.0
    return {
        "n_points": n_points,
        "resolution": resolution,
        "tiling": tiling,
        "n_windows": len(windows),
        "rounds": rounds,
        "bare_round_s": bare_rounds,
        "deadlined_round_s": deadlined_rounds,
        "warm_overhead_fraction": overhead,
    }


def bench_shed_latency(n_requests: int, workers: int, max_pending: int,
                       delay_s: float, budget_mb: int) -> dict:
    """Window-saturating stream: per-response latency, shed vs served."""
    governor = MemoryGovernor(budget_mb * 1024 * 1024)
    session = Session(memory_governor=governor)
    admission = AdmissionController(max_pending=max_pending)
    spec = VoronoiSpec(
        dataset="synthetic:uniform?n=400&seed=7",
        window=WindowSpec(0.0, 0.0, 100.0, 100.0),
        resolution=128,
    )
    lines = [json.dumps(spec.to_dict())] * n_requests

    plan = FaultPlan(FaultRule(site="serve.request", action="delay",
                               delay_s=delay_s, probability=1.0, seed=70))
    gaps: list[tuple[str, float]] = []
    with inject(plan):
        t0 = time.perf_counter()
        last = t0
        for raw in serve_lines(iter(lines), session, workers=workers,
                               window=4 * workers, admission=admission):
            now = time.perf_counter()
            response = json.loads(raw)
            kind = "shed" if response.get("code") == "shed" else "served"
            gaps.append((kind, now - last))
            last = now
        total = time.perf_counter() - t0

    shed_gaps = sorted(g for kind, g in gaps if kind == "shed")
    served_gaps = sorted(g for kind, g in gaps if kind == "served")
    usage = governor.usage()
    print(f"  {len(shed_gaps)} shed / {len(served_gaps)} served "
          f"in {total * 1e3:.0f} ms; governor usage "
          f"{usage / 2**20:.2f} MiB of {budget_mb} MiB")
    return {
        "n_requests": n_requests,
        "workers": workers,
        "max_pending": max_pending,
        "injected_delay_s": delay_s,
        "total_s": total,
        "shed_count": len(shed_gaps),
        "served_count": len(served_gaps),
        "shed_gap_p50_ms": _pctl(shed_gaps, 0.5) * 1e3,
        "served_gap_p50_ms": _pctl(served_gaps, 0.5) * 1e3,
        "governor_budget_bytes": governor.budget_bytes,
        "governor_usage_bytes": usage,
        "usage_within_budget": usage <= governor.budget_bytes,
    }


def _pctl(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def bench_deadline_abort_latency(repeats: int, budgets_ms: list[float],
                                 n_sites: int, resolution: int) -> dict:
    """How far past its budget a raster query overshoots before the
    typed abort lands — the 'within one checkpoint' bound, measured."""
    session = Session()
    rows = []
    for budget_ms in budgets_ms:
        overshoots = []
        for _ in range(repeats):
            spec = VoronoiSpec(
                dataset=f"synthetic:uniform?n={n_sites}&seed=9",
                window=WindowSpec(0.0, 0.0, 100.0, 100.0),
                resolution=resolution,
                deadline_ms=budget_ms,
            )
            t0 = time.perf_counter()
            try:
                session.run(spec)
                continue  # finished inside the budget: nothing to record
            except DeadlineExceeded:
                elapsed_ms = (time.perf_counter() - t0) * 1e3
            overshoots.append(max(0.0, elapsed_ms - budget_ms))
        overshoots.sort()
        if overshoots:
            rows.append({
                "budget_ms": budget_ms,
                "aborted": len(overshoots),
                "overshoot_p50_ms": _pctl(overshoots, 0.5),
                "overshoot_p95_ms": _pctl(overshoots, 0.95),
                "overshoot_max_ms": overshoots[-1],
            })
            print(f"  budget {budget_ms:6.1f} ms: "
                  f"{len(overshoots)}/{repeats} aborted, overshoot "
                  f"p50 {rows[-1]['overshoot_p50_ms']:.2f} ms  "
                  f"p95 {rows[-1]['overshoot_p95_ms']:.2f} ms")
    return {
        "repeats": repeats,
        "n_sites": n_sites,
        "resolution": resolution,
        "by_budget": rows,
    }


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    if dry:
        overhead_cfg = dict(n_points=3_000, resolution=64, tiling=2,
                            n_cols=4, n_rows=3, rounds=2)
        shed_cfg = dict(n_requests=24, workers=2, max_pending=2,
                        delay_s=0.02, budget_mb=64)
        abort_cfg = dict(repeats=5, budgets_ms=[2.0, 10.0],
                         n_sites=200, resolution=256)
    else:
        overhead_cfg = dict(n_points=30_000, resolution=256, tiling=4,
                            n_cols=9, n_rows=5, rounds=4)
        shed_cfg = dict(n_requests=200, workers=2, max_pending=4,
                        delay_s=0.02, budget_mb=256)
        abort_cfg = dict(repeats=25, budgets_ms=[1.0, 2.0, 5.0, 20.0],
                         n_sites=600, resolution=512)

    print("# checkpoint_overhead")
    overhead = bench_checkpoint_overhead(**overhead_cfg)
    print(f"  warm-round checkpoint overhead: "
          f"{overhead['warm_overhead_fraction'] * 100:+.2f}%")
    print("# shed_latency")
    shed = bench_shed_latency(**shed_cfg)
    print("# deadline_abort_latency")
    aborts = bench_deadline_abort_latency(**abort_cfg)

    payload = {
        "benchmark": "pr7_resilience",
        "dry_run": dry,
        "checkpoint_overhead": overhead,
        "shed_latency": shed,
        "deadline_abort_latency": aborts,
    }
    with open(TARGET_JSON, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {TARGET_JSON}")

    assert shed["usage_within_budget"], "governor budget exceeded"
    assert shed["shed_count"] > 0, "overload run must actually shed"
    if not dry:
        # The acceptance bar, enforced where the number is produced.
        assert overhead["warm_overhead_fraction"] < 0.05, (
            f"checkpoint overhead "
            f"{overhead['warm_overhead_fraction'] * 100:.2f}% >= 5%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
