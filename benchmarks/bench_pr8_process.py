"""PR 8 process-backend benchmark: does fan-out actually buy speed?

Four sections, each asserting bit-identity before timing (the
backend's contract is *exactly* the serial answer, faster):

- **batch_scaling** — one batch of distinct blended selections run
  serially and with ``process_workers`` swept up to ``cpu_count``;
  records wall-clock per worker count.  The acceptance bar — **>=
  1.5x** at ``process_workers == cpu_count`` — only applies on a
  multi-core host: on a single-CPU container the verdict is recorded
  as ``not_applicable`` with the CPU count annotated, because worker
  processes on one core can only time-slice, not overlap.
- **tile_fanout** — one cold high-resolution tiled build (4096^2 at
  full size), serial vs process tile prefetch: cold tiles ship to
  workers and land in the coordinator's cache.
- **serve_qps** — the same request stream through a thread-dispatch
  serve loop vs one whose session executes on worker processes.
- **dispatch_overhead** — what crossing the process boundary costs:
  worker spawn + shared-memory attach time (from the workers' own
  clocks), round-trip latency of an empty dispatch, and the attach
  cost as a fraction of one cold query (bar: **< 5%**).

Run ``python benchmarks/bench_pr8_process.py`` for the full workload
or ``--dry-run`` for the CI smoke version; both write
``BENCH_PR8.json`` at the repo root (the dry run is marked as such in
the payload).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import ConstraintSpec, SelectSpec, Session, serve_lines
from repro.core.optimizer import CostModel
from repro.geometry.primitives import Polygon

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGET_JSON = REPO_ROOT / "BENCH_PR8.json"

#: Steers selection planning onto the blended-canvas plan — the
#: cache-bearing, rasterizing path worth parallelizing.
BLEND = CostModel(edge_test=1e6)


def _cloud(n: int, seed: int = 1204) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 100, n), rng.uniform(0, 100, n)


def _rect(x0: float, y0: float, w: float, h: float) -> Polygon:
    return Polygon([(x0, y0), (x0 + w, y0), (x0 + w, y0 + h), (x0, y0 + h)])


def _member_specs(n_members: int) -> list[SelectSpec]:
    """Distinct constraint rectangles — distinct canvases, so members
    are genuinely independent work (nothing answers from a warm key)."""
    return [
        SelectSpec(
            dataset="pts",
            constraints=[_spec_poly(i)],
        )
        for i in range(n_members)
    ]


def _spec_poly(i: int) -> ConstraintSpec:
    return ConstraintSpec.polygon(
        _rect(2.0 + 5.7 * (i % 12), 2.0 + 7.3 * (i % 9), 30.0, 40.0)
    )


def _session(cloud, *, process_workers=None, **knobs) -> Session:
    session = Session(process_workers=process_workers, **knobs)
    session.registry.register("pts", cloud)
    return session


def _ids_of(results) -> list[tuple]:
    return [tuple(r.ids.tolist()) for r in results]


def bench_batch_scaling(n_points: int, n_members: int, resolution: int,
                        worker_counts: list[int]) -> dict:
    cloud = _cloud(n_points)
    specs = _member_specs(n_members)

    serial = _session(cloud, resolution=resolution, cost_model=BLEND)
    t0 = time.perf_counter()
    base_run = serial.run_batch(specs)
    serial_s = time.perf_counter() - t0
    base_ids = _ids_of(base_run.results)

    per_workers = {}
    for workers in worker_counts:
        session = _session(cloud, resolution=resolution, cost_model=BLEND,
                           process_workers=workers)
        try:
            # Spawn + publish outside the clock, against a constraint
            # no batch member shares (nothing warms a measured key).
            session.run(SelectSpec(
                dataset="pts",
                constraints=[ConstraintSpec.circle((50.0, 50.0), 5.0)],
            ))
            t0 = time.perf_counter()
            run = session.run_batch(specs)
            elapsed = time.perf_counter() - t0
            assert _ids_of(run.results) == base_ids, "process batch diverged"
            assert run.report.plans == base_run.report.plans
            per_workers[workers] = {
                "wall_s": elapsed,
                "speedup_vs_serial": serial_s / elapsed if elapsed else None,
            }
        finally:
            session.close()
    return {
        "n_points": n_points,
        "n_members": n_members,
        "resolution": resolution,
        "serial_wall_s": serial_s,
        "per_workers": per_workers,
    }


def bench_tile_fanout(n_points: int, resolution: int, tiling: int,
                      workers: int) -> dict:
    cloud = _cloud(n_points)
    spec = SelectSpec(dataset="pts", constraints=[_spec_poly(0)])

    serial = _session(cloud, resolution=resolution, tiling=tiling,
                      cost_model=BLEND)
    t0 = time.perf_counter()
    base = serial.run(spec)
    serial_s = time.perf_counter() - t0

    session = _session(cloud, resolution=resolution, tiling=tiling,
                       cost_model=BLEND, process_workers=workers)
    try:
        # Touch a different spec so the fleet is spawned and attached
        # before the cold build goes on the clock.
        session.run(SelectSpec(dataset="pts", constraints=[_spec_poly(1)]))
        t0 = time.perf_counter()
        result = session.run(spec)
        proc_s = time.perf_counter() - t0
        assert np.array_equal(result.ids, base.ids), "tiled build diverged"
    finally:
        session.close()
    return {
        "n_points": n_points,
        "resolution": resolution,
        "tiling": tiling,
        "workers": workers,
        "serial_cold_s": serial_s,
        "process_cold_s": proc_s,
        "speedup": serial_s / proc_s if proc_s else None,
    }


def bench_serve_qps(n_requests: int, resolution: int, workers: int) -> dict:
    lines = [
        json.dumps(SelectSpec(
            dataset=f"synthetic:uniform?n=4000&seed={i}",
            constraints=[_spec_poly(i)],
            resolution=resolution,
        ).to_dict())
        for i in range(n_requests)
    ]

    def drain(session: Session | None, serve_workers: int) -> tuple:
        t0 = time.perf_counter()
        out = [json.loads(line)
               for line in serve_lines(list(lines), session,
                                       workers=serve_workers)]
        return out, time.perf_counter() - t0

    thread_out, thread_s = drain(None, workers)

    proc_session = Session(process_workers=workers)
    try:
        proc_session.run(json.loads(lines[0]))  # spawn off the clock
        proc_out, proc_s = drain(proc_session, workers)
    finally:
        proc_session.close()

    matched = [o["result"]["matched"] for o in thread_out]
    assert matched == [o["result"]["matched"] for o in proc_out]
    return {
        "n_requests": n_requests,
        "workers": workers,
        "threads_wall_s": thread_s,
        "threads_qps": n_requests / thread_s,
        "process_wall_s": proc_s,
        "process_qps": n_requests / proc_s,
    }


def bench_dispatch_overhead(n_points: int, resolution: int,
                            pings: int) -> dict:
    cloud = _cloud(n_points)

    serial = _session(cloud, resolution=resolution, cost_model=BLEND)
    spec = SelectSpec(dataset="pts", constraints=[_spec_poly(0)])
    t0 = time.perf_counter()
    serial.run(spec)
    cold_query_s = time.perf_counter() - t0

    session = _session(cloud, resolution=resolution, cost_model=BLEND,
                       process_workers=1)
    try:
        t0 = time.perf_counter()
        backend = session._ensure_backend()
        spawn_s = time.perf_counter() - t0
        (stats,) = backend.attach_stats()
        attach_s = stats["attach_s"]

        from repro.engine.process_worker import ping_task

        rtts = []
        for _ in range(pings):
            t0 = time.perf_counter()
            backend.dispatch_to(0, ping_task, {}).result()
            rtts.append(time.perf_counter() - t0)
    finally:
        session.close()
    return {
        "n_points": n_points,
        "cold_query_s": cold_query_s,
        "spawn_and_publish_s": spawn_s,
        "shm_attach_s": attach_s,
        "attach_fraction_of_cold_query": attach_s / cold_query_s,
        "dispatch_rtt_p50_s": float(np.median(rtts)),
        "dispatch_rtt_max_s": float(np.max(rtts)),
    }


def main(argv: list[str]) -> int:
    dry = "--dry-run" in argv
    cpus = os.cpu_count() or 1
    if dry:
        batch_cfg = dict(n_points=4_000, n_members=8, resolution=128)
        tile_cfg = dict(n_points=4_000, resolution=256, tiling=4)
        serve_cfg = dict(n_requests=8, resolution=128, workers=2)
        overhead_cfg = dict(n_points=4_000, resolution=128, pings=5)
    else:
        batch_cfg = dict(n_points=100_000, n_members=16, resolution=1024)
        tile_cfg = dict(n_points=100_000, resolution=4096, tiling=8)
        serve_cfg = dict(n_requests=48, resolution=512, workers=2)
        overhead_cfg = dict(n_points=100_000, resolution=1024, pings=20)

    worker_counts = sorted({1, 2, cpus} | ({cpus // 2} if cpus >= 4 else set()))

    print(f"# batch_scaling (cpu_count={cpus})")
    batch = bench_batch_scaling(worker_counts=worker_counts, **batch_cfg)
    for w, row in batch["per_workers"].items():
        print(f"  {w} worker(s): {row['wall_s']:.3f}s "
              f"({row['speedup_vs_serial']:.2f}x vs serial)")
    print("# tile_fanout")
    tiles = bench_tile_fanout(workers=cpus, **tile_cfg)
    print(f"  cold {tiles['resolution']}^2 build: serial "
          f"{tiles['serial_cold_s']:.3f}s, process "
          f"{tiles['process_cold_s']:.3f}s")
    print("# serve_qps")
    qps = bench_serve_qps(**serve_cfg)
    print(f"  threads {qps['threads_qps']:.1f} q/s, "
          f"processes {qps['process_qps']:.1f} q/s")
    print("# dispatch_overhead")
    overhead = bench_dispatch_overhead(**overhead_cfg)
    print(f"  shm attach {overhead['shm_attach_s'] * 1e3:.2f}ms = "
          f"{overhead['attach_fraction_of_cold_query'] * 100:.2f}% of a "
          f"cold query; dispatch RTT p50 "
          f"{overhead['dispatch_rtt_p50_s'] * 1e3:.2f}ms")

    at_cpus = batch["per_workers"][cpus]["speedup_vs_serial"]
    if cpus < 2:
        # Worker processes on a single CPU can only time-slice; the
        # >= 1.5x bar is unobservable here by construction, and saying
        # so beats publishing a meaningless ratio as if it were one.
        verdict = {
            "status": "not_applicable",
            "reason": "single-CPU host: processes time-slice one core, "
                      "parallel speedup is unobservable",
            "cpu_count": cpus,
            "speedup_at_cpu_count": at_cpus,
        }
    else:
        verdict = {
            "status": "pass" if at_cpus >= 1.5 else "fail",
            "required_speedup": 1.5,
            "cpu_count": cpus,
            "speedup_at_cpu_count": at_cpus,
        }

    payload = {
        "benchmark": "pr8_process",
        "dry_run": dry,
        "cpu_count": cpus,
        "batch_scaling": batch,
        "tile_fanout": tiles,
        "serve_qps": qps,
        "dispatch_overhead": overhead,
        "verdict": verdict,
    }
    with open(TARGET_JSON, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {TARGET_JSON}")
    print(f"verdict: {verdict['status']}")

    if not dry:
        assert overhead["attach_fraction_of_cold_query"] < 0.05, (
            f"shm attach is "
            f"{overhead['attach_fraction_of_cold_query'] * 100:.2f}% "
            f"of a cold query (bar: < 5%)"
        )
        assert verdict["status"] != "fail", (
            f"batch speedup {at_cpus:.2f}x at {cpus} workers "
            f"(bar: >= 1.5x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
