"""RasterJoin plan vs join-then-aggregate (E15 / A3, Section 5.2).

The paper's argument: merging all points into one canvas first
(``B*[+](CP)``) shrinks the blend's left side, so per-polygon work is
bounded by the texture instead of the point count.  With many points
and many polygons RasterJoin wins; the classic plan wins when points
are few.  The optimizer (Section 7) must pick accordingly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.join_baselines import (
    indexed_join_aggregate,
    nested_loop_join_aggregate,
)
from repro.data.polygons import hand_drawn_polygon
from repro.core.optimizer import choose_aggregation_plan
from repro.core.queries import join_aggregate
from repro.core.rasterjoin import raster_join_aggregate
from benchmarks.conftest import QUERY_MBR, write_series

RESOLUTION = 512
N_POINTS = 400_000
N_POLYGONS = 12


@pytest.fixture(scope="module")
def districts():
    rng = np.random.default_rng(111)
    return [
        hand_drawn_polygon(
            n_vertices=16, irregularity=0.3, seed=200 + i,
            center=(
                float(rng.uniform(QUERY_MBR.xmin + 2, QUERY_MBR.xmax - 2)),
                float(rng.uniform(QUERY_MBR.ymin + 3, QUERY_MBR.ymax - 3)),
            ),
            radius=3.0,
        )
        for i in range(N_POLYGONS)
    ]


def _slice(mbr_points):
    xs, ys = mbr_points
    n = min(N_POINTS, len(xs))
    return xs[:n], ys[:n]


PLANS = ["rasterjoin", "join-then-aggregate", "nested-loop", "indexed-join"]


def _run(plan, xs, ys, districts):
    if plan == "rasterjoin":
        return raster_join_aggregate(
            xs, ys, districts, aggregate="count", resolution=RESOLUTION
        )
    if plan == "join-then-aggregate":
        return join_aggregate(
            xs, ys, districts, aggregate="count", resolution=RESOLUTION
        )
    if plan == "nested-loop":
        return nested_loop_join_aggregate(xs, ys, districts, aggregate="count")
    if plan == "indexed-join":
        return indexed_join_aggregate(xs, ys, districts, aggregate="count")
    raise ValueError(plan)


@pytest.mark.parametrize("plan", PLANS)
def test_aggregation_plans(benchmark, plan, mbr_points, districts):
    xs, ys = _slice(mbr_points)
    benchmark.group = f"rasterjoin-ablation:n={len(xs)}:polys={N_POLYGONS}"
    benchmark.pedantic(_run, args=(plan, xs, ys, districts),
                       rounds=2, iterations=1)


def test_rasterjoin_report(benchmark, mbr_points, districts):
    """Accuracy + plan-choice report for the RasterJoin trade."""

    def run_report():
        xs, ys = _slice(mbr_points)
        times = {}
        for plan in PLANS:
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                result = _run(plan, xs, ys, districts)
                best = min(best, time.perf_counter() - start)
            times[plan] = best

        exact = nested_loop_join_aggregate(xs, ys, districts,
                                           aggregate="count")
        approx = raster_join_aggregate(xs, ys, districts, aggregate="count",
                                       resolution=RESOLUTION)
        max_rel_err = max(
            abs(approx.as_dict()[pid] - exact[pid]) / max(exact[pid], 1.0)
            for pid in exact
        )
        lines = [
            f"# rasterjoin ablation: n={len(xs)} polygons={N_POLYGONS} "
            f"resolution={RESOLUTION}",
            *(f"{plan:22s} {times[plan]:.4f}s" for plan in PLANS),
            f"max relative count error (rasterjoin): {max_rel_err:.4f}",
        ]
        write_series("rasterjoin_ablation", lines)
        for line in lines:
            print(line)
        return times, max_rel_err

    times, max_rel_err = benchmark.pedantic(run_report, rounds=1, iterations=1)

    # RasterJoin beats the exact canvas join-then-aggregate at this
    # scale (many points x many polygons), with bounded error.
    assert times["rasterjoin"] < times["join-then-aggregate"]
    assert max_rel_err < 0.10

    # The cost model agrees with the measurement.
    choice = choose_aggregation_plan(
        N_POINTS, districts, (RESOLUTION, RESOLUTION)
    )
    assert choice.name == "rasterjoin"
