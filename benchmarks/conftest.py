"""Shared benchmark workloads.

The evaluation setup mirrors Section 6 of the paper:

- input points are synthetic taxi pickups *filtered to the query MBR*
  (the paper assumes the index-filtering stage happened upstream and
  measures only the refinement step);
- all constraint polygons are "hand-drawn-like" and rescaled to the
  same MBR;
- input size is swept via the trip count (standing in for the paper's
  pickup-time-range knob — see DESIGN.md, substitutions).

Scale with ``REPRO_BENCH_SCALE`` (default 1.0): sizes multiply by it,
so CI can run quick and a workstation can run closer to paper scale.

Figure series (the rows the paper plots) are written to
``benchmarks/out/*.txt`` by the report benchmarks in addition to the
pytest-benchmark tables.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data.polygons import calibrate_selectivity, hand_drawn_polygon, rescale_to_box
from repro.data.taxi import generate_taxi_trips
from repro.geometry.bbox import BoundingBox

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Input sizes for the Figure 9 sweep (points inside the query MBR).
#: Scaled down from the paper's 35M..571M to laptop/CI budgets; the
#: per-point work of every approach is identical, so the curve shapes
#: survive the rescale once fixed raster costs amortize (>= ~10^5).
FIG9_SIZES = [int(n * SCALE) for n in (50_000, 200_000, 800_000)]

#: The common query MBR inside the taxi window (the paper normalizes
#: all hand-drawn polygons to one MBR).
QUERY_MBR = BoundingBox(3.0, 6.0, 17.0, 34.0)

OUT_DIR = Path(__file__).parent / "out"


def write_series(name: str, lines: list[str]) -> None:
    """Persist a figure's series so it survives output capturing."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text("\n".join(lines) + "\n")


@pytest.fixture(scope="session")
def taxi_pool():
    """A large pool of trips; benchmarks slice prefixes from it."""
    n = max(FIG9_SIZES) * 3
    return generate_taxi_trips(n, seed=101)


@pytest.fixture(scope="session")
def mbr_points(taxi_pool):
    """Pickup points filtered to the query MBR (the filtering stage)."""
    xs, ys = taxi_pool.pickup_x, taxi_pool.pickup_y
    inside = (
        (xs >= QUERY_MBR.xmin) & (xs <= QUERY_MBR.xmax)
        & (ys >= QUERY_MBR.ymin) & (ys <= QUERY_MBR.ymax)
    )
    return xs[inside], ys[inside]


@pytest.fixture(scope="session")
def query_polygons(mbr_points):
    """Two hand-drawn constraint polygons with the common MBR."""
    return [
        rescale_to_box(
            hand_drawn_polygon(n_vertices=24, irregularity=0.45, seed=7),
            QUERY_MBR,
        ),
        rescale_to_box(
            hand_drawn_polygon(n_vertices=32, irregularity=0.55, seed=8),
            QUERY_MBR,
        ),
    ]


@pytest.fixture(scope="session")
def fig10_polygons(mbr_points):
    """Five polygons with selectivities spanning the paper's ~3%..83%."""
    xs, ys = mbr_points
    sample = slice(0, min(len(xs), 20_000))
    polys = []
    for target, vertices, seed in [
        (0.05, 64, 21), (0.20, 32, 22), (0.45, 24, 23),
        (0.65, 20, 24), (0.83, 16, 25),
    ]:
        poly, achieved = calibrate_selectivity(
            xs[sample], ys[sample], target, QUERY_MBR,
            n_vertices=vertices, seed=seed,
        )
        polys.append((poly, achieved))
    return polys
