"""Dashboard-style batched execution through ``QueryEngine.execute_batch``.

A dashboard refresh issues many queries over the *same* constraint
polygons: a selection per district panel, an aggregation for the
headline counters, a couple of point-centric widgets (distance ring,
nearest depots).  Batching them plans the list together — the shared
constraint canvas rasterizes once for the whole batch, and members
after the first are priced cache-aware, so the cost model flips them
to the blended plan even where a cold query would have picked the
per-polygon PIP kernel.

Run:  python examples/batch_dashboard.py
"""

import time

import numpy as np

from repro.data.polygons import hand_drawn_polygon
from repro.data.taxi import NYC_WINDOW, generate_taxi_trips
from repro.engine import BatchQuery, QueryEngine


def main() -> None:
    trips = generate_taxi_trips(150_000, seed=17)
    xs, ys = trips.pickup_x, trips.pickup_y

    districts = [
        hand_drawn_polygon(
            n_vertices=14, irregularity=0.25, seed=40 + i,
            center=(4.0 + 4.5 * i, 10.0 + 4.0 * (i % 3)), radius=3.0,
        )
        for i in range(4)
    ]

    # One refresh = selections per panel + headline aggregation +
    # point widgets, all over the same constraint set.
    batch = [
        BatchQuery.selection(xs, ys, districts, window=NYC_WINDOW,
                             resolution=512),
        BatchQuery.selection(xs[:5_000], ys[:5_000], districts,
                             window=NYC_WINDOW, resolution=512),
        BatchQuery.aggregation(xs, ys, districts, window=NYC_WINDOW,
                               resolution=512, polygon_ids=[1, 2, 3, 4]),
        BatchQuery.distance(xs, ys, (10.0, 15.0), 2.5, window=NYC_WINDOW,
                            resolution=512),
        BatchQuery.knn(xs, ys, (10.0, 15.0), 5, window=NYC_WINDOW,
                       resolution=512),
    ]

    engine = QueryEngine()
    start = time.perf_counter()
    outcome = engine.execute_batch(batch)
    elapsed = time.perf_counter() - start

    print(f"dashboard refresh: {len(batch)} queries "
          f"in {elapsed * 1e3:.1f} ms\n")
    print(outcome.report.describe())
    print()

    selection, small_selection, aggregation, ring, nearest = outcome.results
    print(f"panel selection: {len(selection.ids)} pickups in any district "
          f"(plan {selection.report.plan})")
    print(f"small panel:     {len(small_selection.ids)} of 5k "
          f"(plan {small_selection.report.plan} — warm cache flipped it)")
    print("headline counts: "
          + ", ".join(f"D{g}={v:.0f}" for g, v in
                      zip(aggregation.groups, aggregation.values)))
    print(f"2.5km ring:      {len(ring.ids)} pickups "
          f"(plan {ring.report.plan})")
    print(f"5 nearest:       ids {nearest.ids.tolist()} "
          f"(plan {nearest.report.plan})")

    # The same refresh again: everything is warm now.
    again = engine.execute_batch(batch)
    print(f"\nsecond refresh: {again.report.cache_hits} cache hits, "
          f"{again.report.cache_misses} misses")


if __name__ == "__main__":
    main()
