"""Nearest neighbors and Voronoi: Sections 4.4 and 4.5.

Finds the k nearest coffee shops to an office via the paper's
concentric-circle plan (validated against a k-d tree), then computes
the shops' Voronoi diagram with the iterated Value Transform stored
procedure and renders it as ASCII art.

Run:  python examples/knn_voronoi.py
"""

import numpy as np

from repro import knn, voronoi
from repro.geometry.bbox import BoundingBox
from repro.index.kdtree import KDTree
from repro.core.objectinfo import DIM_AREA, FIELD_ID


def main() -> None:
    rng = np.random.default_rng(12)
    window = BoundingBox(0.0, 0.0, 100.0, 100.0)

    # 2000 coffee shops, one office.
    xs = rng.uniform(0, 100, 2000)
    ys = rng.uniform(0, 100, 2000)
    office = (42.0, 58.0)
    k = 8

    print(f"finding the {k} coffee shops nearest to {office} ...")
    result = knn(xs, ys, office, k, resolution=1024)
    tree = KDTree(np.stack([xs, ys], axis=1))
    oracle = {item for item, _ in tree.nearest(*office, k=k)}
    assert set(result.ids.tolist()) == oracle
    print("canvas-algebra kNN matches the k-d tree oracle:")
    for shop_id in result.ids:
        d = float(np.hypot(xs[shop_id] - office[0], ys[shop_id] - office[1]))
        print(f"  shop #{shop_id:4d} at distance {d:6.2f}")

    # Voronoi over a handful of "flagship" shops.
    flagship = np.stack([xs[:12], ys[:12]], axis=1)
    print("\ncomputing the Voronoi diagram of 12 flagship shops")
    print("(iterated V[f] stored procedure, Section 4.5) ...")
    diagram = voronoi(flagship, window, resolution=(30, 60))
    owner = diagram.field(DIM_AREA, FIELD_ID).astype(int)

    glyphs = "0123456789ab"
    print()
    for row in reversed(range(owner.shape[0])):
        print("   " + "".join(glyphs[owner[row, col]]
                              for col in range(owner.shape[1])))
    print("\neach cell shows the id of its nearest flagship shop")

    # Sanity: region of each site contains the site itself.
    for i, (px, py) in enumerate(flagship):
        data, valid = diagram.sample(float(px), float(py))
        assert valid[DIM_AREA] and int(data[DIM_AREA * 3 + FIELD_ID]) == i
    print("every site owns its own pixel — diagram verified")


if __name__ == "__main__":
    main()
