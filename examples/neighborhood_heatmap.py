"""Neighborhood aggregation: group-by over a spatial join (Section 4.3).

Counts taxi pickups and sums fares per "neighborhood" polygon, through
three plans — the exact algebraic join-aggregate, the RasterJoin plan
(Figure 8(c)), and the classic join-then-aggregate baseline — then
renders the result as an ASCII heatmap of the busiest districts.

Run:  python examples/neighborhood_heatmap.py
"""

import time

import numpy as np

from repro import join_aggregate, raster_join_aggregate
from repro.baselines.join_baselines import nested_loop_join_aggregate
from repro.data.polygons import hand_drawn_polygon
from repro.data.taxi import NYC_WINDOW, generate_taxi_trips


def main() -> None:
    trips = generate_taxi_trips(200_000, seed=3)
    xs, ys = trips.pickup_x, trips.pickup_y

    # A 4x6 grid of hand-drawn "neighborhoods" over the city.
    districts = []
    names = []
    for i in range(4):
        for j in range(6):
            cx = 2.5 + 5.0 * i
            cy = 3.3 + 6.7 * j
            districts.append(
                hand_drawn_polygon(
                    n_vertices=12, irregularity=0.2,
                    seed=100 + i * 6 + j, center=(cx, cy), radius=2.4,
                )
            )
            names.append(f"D{i}{j}")

    print(f"{len(xs)} pickups x {len(districts)} districts\n")

    start = time.perf_counter()
    exact = join_aggregate(xs, ys, districts, aggregate="count",
                           resolution=512)
    t_exact = time.perf_counter() - start

    start = time.perf_counter()
    approx = raster_join_aggregate(xs, ys, districts, aggregate="count",
                                   resolution=512)
    t_approx = time.perf_counter() - start

    start = time.perf_counter()
    baseline = nested_loop_join_aggregate(xs, ys, districts,
                                          aggregate="count")
    t_base = time.perf_counter() - start

    fares = join_aggregate(xs, ys, districts, values=trips.fare,
                           aggregate="sum", resolution=512)

    print(f"exact algebra plan:     {t_exact * 1000:8.1f} ms")
    print(f"rasterjoin plan:        {t_approx * 1000:8.1f} ms")
    print(f"nested-loop baseline:   {t_base * 1000:8.1f} ms\n")

    # Correctness of the exact plan against the baseline.
    for pid in range(len(districts)):
        assert exact.as_dict()[pid] == baseline[pid]
    max_err = max(
        abs(approx.as_dict()[p] - baseline[p]) / max(baseline[p], 1.0)
        for p in baseline
    )
    print(f"exact plan matches the baseline on all {len(districts)} groups")
    print(f"rasterjoin max relative error: {max_err:.3%}\n")

    # ASCII heatmap: pickups per district (4 columns x 6 rows).
    counts = exact.values.reshape(4, 6)
    shades = " .:-=+*#%@"
    top = counts.max()
    print("pickup heatmap (south at bottom):")
    for j in reversed(range(6)):
        row = ""
        for i in range(4):
            level = int(counts[i, j] / max(top, 1) * (len(shades) - 1))
            row += shades[level] * 3
        print("   " + row)

    busiest = int(np.argmax(exact.values))
    print(
        f"\nbusiest district: {names[busiest]} with "
        f"{int(exact.values[busiest])} pickups, "
        f"${fares.values[busiest]:,.0f} total fares"
    )


if __name__ == "__main__":
    main()
