"""Origin-destination flows: the composed query of Section 4.6.

"Retrieve all the taxi trips between two specific neighborhoods": a
selection with polygonal constraints on *both* the pickup and dropoff
attributes, realized by the Figure 8(a) plan — origin selection, a
value-driven Geometric Transform jumping each surviving record to its
destination, then a second blend+mask.  Also shows the relational
duality (Section 7): results come back as spatial-table rows.

Run:  python examples/od_flows.py
"""

import numpy as np

from repro import od_select
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.data.taxi import generate_taxi_trips
from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Point
from repro.relational.spatial_table import SpatialTable


def main() -> None:
    trips = generate_taxi_trips(150_000, seed=21)

    # Two neighborhoods: "downtown" pickup, "uptown" dropoff.
    downtown = rescale_to_box(
        hand_drawn_polygon(n_vertices=14, irregularity=0.25, seed=31),
        BoundingBox(2, 2, 18, 16),
    )
    uptown = rescale_to_box(
        hand_drawn_polygon(n_vertices=14, irregularity=0.25, seed=32),
        BoundingBox(2, 24, 18, 38),
    )

    print("SELECT * FROM trips WHERE Origin INSIDE downtown "
          "AND Destination INSIDE uptown")
    result = od_select(
        trips.pickup_x, trips.pickup_y,
        trips.dropoff_x, trips.dropoff_y,
        downtown, uptown, resolution=1024,
    )
    print(f"  {len(result.ids)} of {len(trips)} trips match "
          f"({result.n_exact_tests} exact boundary tests)")

    # Verify against brute force.
    truth = (
        points_in_polygon(trips.pickup_x, trips.pickup_y, downtown)
        & points_in_polygon(trips.dropoff_x, trips.dropoff_y, uptown)
    )
    assert set(result.ids.tolist()) == set(np.nonzero(truth)[0].tolist())
    print("  verified against brute-force evaluation")

    # Relational duality: jump from canvas result back to tuples.
    table = SpatialTable(
        {
            "pickup": np.array(
                [Point(x, y) for x, y in zip(trips.pickup_x, trips.pickup_y)],
                dtype=object,
            ),
            "fare": trips.fare,
            "pickup_time": trips.pickup_time,
        },
        geometry_columns=("pickup",),
    )
    matched = table.from_selection(result)
    print(f"\nmatched rows as a relational table: {matched.n_rows} rows")
    if matched.n_rows:
        fares = matched["fare"]
        print(f"  average fare downtown->uptown: ${fares.mean():.2f}")
        print(f"  total revenue on this corridor: ${fares.sum():,.0f}")
        by_fare = matched.sort_by("fare", descending=True)
        top = by_fare.row(0)
        print(f"  most expensive trip: ${top['fare']:.2f} "
              f"at t={top['pickup_time']:.1f}h")


if __name__ == "__main__":
    main()
