"""Quickstart: the canvas algebra in five minutes.

Walks the paper's running example (Figure 1): select the restaurants
inside a hand-drawn neighborhood polygon — first through the high-level
query API, then by composing the algebra's operators explicitly so the
Figure 5 plan is visible.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import polygonal_select_points
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import InputNode, render_plan
from repro.core.masks import mask_point_in_any_polygon
from repro.geometry import Polygon
from repro.geometry.bbox import BoundingBox


def main() -> None:
    rng = np.random.default_rng(0)

    # A city of 100k restaurants (points) ...
    xs = rng.uniform(0.0, 100.0, 100_000)
    ys = rng.uniform(0.0, 100.0, 100_000)

    # ... and a hand-drawn neighborhood (the query polygon Q).
    neighborhood = Polygon(
        [(25, 20), (70, 15), (80, 45), (60, 80), (30, 75), (15, 45)]
    )

    # The query polygon rendered into a canvas: interior filled,
    # boundary pixels conservatively flagged.
    window = BoundingBox(0, 0, 100, 100)
    cq = Canvas.from_polygon(neighborhood, window, resolution=1024)

    # --- The one-liner -------------------------------------------------
    # Queries route through the cost-based engine, which would pick the
    # cheaper physical plan for this workload; handing it the prebuilt
    # constraint canvas pins the canvas-algebra plan this example walks
    # through below.
    result = polygonal_select_points(
        xs, ys, neighborhood, window=window, resolution=1024,
        constraint_canvas=cq,
    )
    print(f"restaurants inside the neighborhood: {len(result.ids)}")
    print(f"  raster candidates: {result.n_candidates}")
    print(f"  exact boundary tests paid: {result.n_exact_tests}")

    from repro.engine import explain

    print("\nengine explain():")
    print(explain())

    # --- The same query, operator by operator (Figure 5) ---------------
    # Every record is conceptually its own canvas; the sparse canvas
    # set stores them columnarly ("created on the fly", Section 5.1).
    cp = CanvasSet.from_points(xs, ys)

    # Blend ⊙ merges each point canvas with the query canvas, and the
    # mask keeps points whose pixel has a 2-primitive incident.
    blended = algebra.blend(cp, cq, PIP_MERGE)
    masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
    print(f"manual plan result (pre-refinement): {masked.n_samples}")

    # The plan diagram, as in the paper's figures:
    plan = InputNode(cp, name="CP").blend(
        InputNode(cq, name="CQ"), PIP_MERGE
    ).mask(mask_point_in_any_polygon(1.0))
    print("\nplan diagram (M[Mp'](B[⊙](CP, CQ))):")
    print(render_plan(plan))

    # The algebra is closed: the masked result is again a canvas
    # collection, ready for more operators (aggregation, transforms...).
    count = masked.n_samples
    exact = result.n_candidates
    assert count == exact
    print("\nclosure check passed: the result is a canvas set, "
          f"{count} member canvases")


if __name__ == "__main__":
    main()
