"""Session quickstart: the declarative query API in five minutes.

PR 4 made the engine service-callable: every query family has a typed,
versioned, JSON-round-trippable spec, datasets resolve by name through
a registry, and a ``Session`` facade runs specs (single or batched) on
the plan-driven engine.  This walkthrough covers the full loop:

1. register a dataset and run a spec through a session;
2. ship the *same* query as JSON text and get a bit-identical answer;
3. batch specs so shared constraints rasterize once;
4. round-trip a spec through the ``serve`` JSON-lines protocol —
   exactly what ``python -m repro serve`` speaks over stdin/stdout.

Run:  python examples/session_quickstart.py
"""

import io
import json

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    DatasetRegistry,
    GeometryData,
    SelectSpec,
    Session,
    serve,
)
from repro.data.taxi import generate_taxi_trips
from repro.geometry.primitives import Polygon


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A registry + session: specs name their data, the session owns
    #    the engine (and its canvas cache) across requests.
    # ------------------------------------------------------------------
    trips = generate_taxi_trips(100_000, seed=7)
    registry = DatasetRegistry().register("trips", trips)
    session = Session(registry, resolution=512)

    midtown = Polygon([(4, 18), (14, 18), (14, 30), (4, 30)])
    spec = SelectSpec(
        dataset="taxi:pickups?n=100000&seed=7",  # scheme ref: no arrays!
        constraints=[ConstraintSpec.polygon(midtown)],
    )
    result = session.run(spec)
    print(f"pickups in midtown: {len(result.ids)} "
          f"(plan: {result.plan})")

    # ------------------------------------------------------------------
    # 2. The spec is data.  Serialize it, pretend it crossed a network,
    #    and run the restored copy — bit-identical by construction.
    # ------------------------------------------------------------------
    wire = json.dumps(spec.to_dict())
    print(f"\nspec as JSON ({len(wire)} bytes):")
    print("  " + wire[:110] + " ...")
    again = session.run(json.loads(wire))
    assert (again.ids == result.ids).all()
    print("restored spec answered bit-identically ✓")

    # The plan/cost/cache report for any spec:
    print("\nsession.explain(spec):")
    print(session.explain(spec))

    # ------------------------------------------------------------------
    # 3. Batching: members share the engine's planning sweep, so a
    #    dashboard's queries over the same constraint rasterize it once.
    # ------------------------------------------------------------------
    fares = AggregateSpec(
        dataset="taxi:pickups?n=100000&seed=7",
        polygons=GeometryData([midtown], ids=[1]),
        aggregate="sum",
    )
    batch = session.run_batch([spec, spec, fares])
    print("\nbatch report:")
    print(batch.report.describe())
    total_fare = float(batch.results[2].values[0])
    print(f"fare volume from midtown: ${total_fare:,.0f}")

    # ------------------------------------------------------------------
    # 4. The serve protocol: one JSON spec per line in, one result
    #    summary + report per line out (python -m repro serve).
    # ------------------------------------------------------------------
    knn_line = json.dumps({
        "spec": "knn", "version": 1,
        "dataset": "taxi:pickups?n=100000&seed=7",
        "query_point": [10.0, 24.0], "k": 5, "resolution": 512,
    })
    stdin = io.StringIO(wire + "\n" + knn_line + "\n" + "oops\n")
    stdout = io.StringIO()
    serve(stdin, stdout, session)
    print("\nserve round trip (3 lines in -> 3 answers out):")
    for line in stdout.getvalue().strip().splitlines():
        answer = json.loads(line)
        if answer["ok"]:
            summary = answer["result"]
            print(f"  ok: {summary['type']} matched={summary.get('matched')}"
                  f" plan={answer['report']['plan']}")
        else:
            print(f"  error (loop survives): {answer['error'][:50]}")


if __name__ == "__main__":
    main()
