"""Taxi-trip selection: the paper's evaluation workload end to end.

Reproduces Section 6's experimental setup at laptop scale: generate
NYC-like taxi trips, filter pickups to a query MBR (the upstream
filtering stage), draw constraint polygons with a common MBR, and
compare the canvas algebra against the CPU and traditional-GPU
baselines on single- and multi-constraint selections.

Run:  python examples/taxi_selection.py
"""

import time

import numpy as np

from repro import multi_polygonal_select, polygonal_select_points
from repro.baselines.cpu_pip import cpu_select_multi
from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.data.taxi import generate_taxi_trips
from repro.geometry.bbox import BoundingBox


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:24s} {elapsed * 1000:9.1f} ms   -> {len(result)} trips")
    return result


def main() -> None:
    print("generating 400k synthetic taxi trips ...")
    trips = generate_taxi_trips(400_000, seed=42)

    # The filtering stage: keep pickups inside the query MBR.
    mbr = BoundingBox(3.0, 6.0, 17.0, 34.0)
    inside = (
        (trips.pickup_x >= mbr.xmin) & (trips.pickup_x <= mbr.xmax)
        & (trips.pickup_y >= mbr.ymin) & (trips.pickup_y <= mbr.ymax)
    )
    xs = trips.pickup_x[inside]
    ys = trips.pickup_y[inside]
    print(f"{len(xs)} pickups inside the query MBR\n")

    # Two hand-drawn constraint polygons, normalized to the MBR.
    q1 = rescale_to_box(
        hand_drawn_polygon(n_vertices=24, irregularity=0.45, seed=7), mbr
    )
    q2 = rescale_to_box(
        hand_drawn_polygon(n_vertices=32, irregularity=0.55, seed=8), mbr
    )

    print("single polygonal constraint:")
    canvas_ids = timed(
        "canvas algebra",
        lambda: polygonal_select_points(xs, ys, q1, resolution=1024).ids,
    )
    gpu_ids = timed(
        "gpu baseline (PIP)",
        lambda: gpu_baseline_select_multi(xs, ys, [q1]),
    )
    cpu_ids = timed(
        "cpu baseline (scalar)",
        lambda: cpu_select_multi(xs, ys, [q1]),
    )
    assert set(canvas_ids.tolist()) == set(gpu_ids.tolist())
    print("  all approaches agree\n")

    print("disjunction of two constraints (Figure 8(b) plan):")
    timed(
        "canvas algebra",
        lambda: multi_polygonal_select(
            xs, ys, [q1, q2], resolution=1024
        ).ids,
    )
    timed(
        "gpu baseline (PIP x2)",
        lambda: gpu_baseline_select_multi(xs, ys, [q1, q2]),
    )
    timed(
        "cpu baseline (scalar)",
        lambda: cpu_select_multi(xs, ys, [q1, q2]),
    )
    print(
        "\nnote how only the baselines pay for the second polygon — the\n"
        "canvas plan just blends one more constraint into the canvas."
    )


if __name__ == "__main__":
    main()
