"""Pan/zoom over a tiled canvas: tile reuse you can watch in explain.

A map dashboard pans its viewport in small steps, re-running the same
selection over the same district polygons each time.  Whole-frame
execution re-rasterizes the constraint canvas for every viewport —
each window is a distinct cache key.  With ``tiling=K`` the engine
shards the plan onto a K×K *global* tile lattice instead: tiles are
keyed by their lattice position (not the window), so the panned
viewport re-rasterizes only the newly exposed strip and gathers the
rest from warm tiles.  The ``tile cache: … warm / … cold`` line in
``explain`` (and ``report.tile_hits``/``tile_misses``) shows exactly
that.

Run:  python examples/tiled_dashboard.py
"""

import time

import numpy as np

from repro.data.polygons import hand_drawn_polygon
from repro.data.taxi import generate_taxi_trips
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox

#: Viewport edge in world units and the tile split: the pan step below
#: is exactly one tile (VIEW / TILING), so consecutive viewports share
#: all but one row/column of lattice tiles.
VIEW = 8.0
TILING = 4
RESOLUTION = 512


def main() -> None:
    trips = generate_taxi_trips(200_000, seed=23)
    xs, ys = trips.pickup_x, trips.pickup_y

    districts = [
        hand_drawn_polygon(
            n_vertices=16, irregularity=0.3, seed=70 + i,
            center=(5.0 + 3.5 * i, 12.0 + 5.0 * (i % 3)), radius=3.0,
        )
        for i in range(4)
    ]

    engine = QueryEngine()
    step = VIEW / TILING  # one lattice tile per pan

    # A dashboard pan: right, right, up — then back to the start.
    # Base viewport at (4, 10) world units, over the district cluster.
    base_i, base_j = 2, 5  # in tile steps
    pans = [(0, 0), (1, 0), (2, 0), (2, 1), (0, 0)]
    print(f"viewport {VIEW}x{VIEW} world units at {RESOLUTION}px, "
          f"tiling={TILING} (pan step = one {step} world-unit tile)\n")
    for di, dj in pans:
        i, j = base_i + di, base_j + dj
        window = BoundingBox(
            i * step, j * step, i * step + VIEW, j * step + VIEW
        )
        t0 = time.perf_counter()
        result = engine.select_points(
            xs, ys, districts, window=window, resolution=RESOLUTION,
            tiling=TILING,
        )
        ms = (time.perf_counter() - t0) * 1e3
        r = result.report
        print(
            f"viewport ({window.xmin:4.1f},{window.ymin:4.1f}) → "
            f"{len(result.ids):6d} pickups   {ms:7.1f} ms   "
            f"tiles: {r.tile_hits:2d} warm / {r.tile_misses:2d} cold "
            f"of {r.tiles}"
        )

    # The full engine report for the last viewport — note the
    # `blended-canvas-tiled` plan, the TiledGather node in the plan
    # tree, and the tile-cache line.
    print("\n" + engine.explain())


if __name__ == "__main__":
    main()
