"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` works in offline environments where
the ``wheel`` package (needed for PEP 660 editable builds) is not
available: ``pip install -e . --no-build-isolation --no-use-pep517``
takes the legacy ``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GPU-friendly geometric data model and canvas algebra for spatial "
        "queries (SIGMOD 2020 reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23"],
)
