"""repro — reproduction of "A GPU-friendly Geometric Data Model and
Algebra for Spatial Queries" (Doraiswamy & Freire, SIGMOD 2020).

Public surface:

- :mod:`repro.api` — the declarative layer: typed JSON-round-trippable
  query specs, the dataset registry, and the ``Session`` facade (the
  service-callable entry point; ``python -m repro serve`` speaks it);
- :mod:`repro.core` — the canvas data model, the five-operator algebra,
  and the standard spatial queries of Section 4;
- :mod:`repro.queries` — the query frontends (selection / join /
  aggregate / knn / voronoi / od), thin sugar over :mod:`repro.api`;
- :mod:`repro.engine` — the plan-driven execution engine: cost-based
  physical-plan choice, canvas caching, and ``explain()`` reports;
- :mod:`repro.geometry` — the computational-geometry substrate;
- :mod:`repro.gpu` — the simulated GPU raster pipeline;
- :mod:`repro.index` — classical spatial indexes (filtering stage);
- :mod:`repro.baselines` — the CPU / parallel-CPU / traditional-GPU
  comparators of the paper's evaluation;
- :mod:`repro.data` — taxi-like workload generators;
- :mod:`repro.relational` — relational interop (canvas-tuple duality).

Quickstart::

    import numpy as np
    from repro import polygonal_select_points
    from repro.geometry import Polygon

    xs, ys = np.random.rand(2, 100_000)
    q = Polygon([(0.2, 0.2), (0.8, 0.3), (0.7, 0.8), (0.3, 0.7)])
    result = polygonal_select_points(xs, ys, q)
    print(len(result.ids), "points inside")
"""

from repro.core import (
    AggregateResult,
    Canvas,
    CanvasSet,
    SelectionResult,
    aggregate_over_select,
    distance_select,
    join_aggregate,
    knn,
    multi_polygonal_select,
    od_select,
    polygonal_select_objects,
    polygonal_select_points,
    polygonal_select_polygons,
    range_select,
    raster_join_aggregate,
    spatial_join_points_polygons,
    voronoi,
)

# The declarative layer imports after repro.core: its Session pulls in
# the engine and (lazily) the query frontends, which the core chain has
# fully initialized by this point — importing it first would re-enter
# repro.api mid-load through the frontends' spec imports.
from repro.api import DatasetRegistry, Session
from repro.gpu import Device

__version__ = "1.0.0"

__all__ = [
    "AggregateResult",
    "Canvas",
    "CanvasSet",
    "DatasetRegistry",
    "Device",
    "SelectionResult",
    "Session",
    "aggregate_over_select",
    "distance_select",
    "join_aggregate",
    "knn",
    "multi_polygonal_select",
    "od_select",
    "polygonal_select_objects",
    "polygonal_select_points",
    "polygonal_select_polygons",
    "range_select",
    "raster_join_aggregate",
    "spatial_join_points_polygons",
    "voronoi",
]
