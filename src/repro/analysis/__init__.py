"""`repro.analysis` — the repo's executable invariant contracts.

PRs 1–8 grew the engine into a concurrent, process-parallel service
whose correctness rests on invariants that were *written down* (the
ROADMAP architecture section, ADR 0001/0002) but enforced only by
reviewer vigilance: cached canvases are immutable and must never flow
into an ``out=`` seam, ``repro/queries/*`` routes through the engine
rather than calling ``core.algebra`` directly, shared state is touched
under its lock, serve errors carry a stable :data:`ERROR_CODES` code,
shared-memory segments always reach an unlink path.  This package
turns those prose invariants into stdlib-``ast`` static analysis so
every future PR lands against a machine-checked contract:

    python -m repro.analysis [--format json|text] [paths ...]
    python -m repro.analysis --list-rules

The rule set (see ``docs/adr/0003-static-invariant-checking.md`` for
each rule's provenance and the allowlist policy):

===================  ===============================================
rule id              invariant
===================  ===============================================
layering             package import matrix is acyclic (core never
                     imports engine/api; queries never call
                     core.algebra directly — the PR 3 contract)
cached-out           values derived from CanvasCache getters never
                     flow into ``out=`` or an in-place numpy op
lock-discipline      attributes ever written under ``with
                     self._lock`` are never touched outside it
error-envelope       every ``{"ok": False}`` envelope built in
                     serve.py/cli.py carries a stable ERROR_CODES code
shm-lifecycle        every ``SharedMemory(create=True)`` is dominated
                     by a try/finally or registered-cleanup unlink
deadline-checkpoint  loops annotated ``# deadline-seam:`` contain a
                     deadline check call
spec-digest          every ``*Spec`` dataclass field is serialized by
                     ``to_dict`` or listed in the documented
                     policy-excluded set
===================  ===============================================

Per-line allowlisting uses ``# repro-lint: disable=<rule>[,<rule>] --
<justification>``; the justification text is mandatory — a bare
disable is itself reported (``lint-pragma``).  A whole-line pragma
comment applies to the next line, so long constructs stay readable.

The analyzer is self-contained over the stdlib ``ast``/``tokenize``
modules — it never imports the modules it checks, so a module with an
import-time side effect (or an import error) is still analyzable.
"""

from repro.analysis.base import Finding, ModuleInfo, Rule, all_rules, get_rule
from repro.analysis.runner import analyze_paths, analyze_source, render_findings

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "render_findings",
]
