"""``python -m repro.analysis`` — the repro-lint CLI.

Usage::

    python -m repro.analysis [--format text|json] [--rules a,b] [paths...]
    python -m repro.analysis --list-rules

Paths default to ``src`` and ``tests`` (whichever exist under the
current directory).  Exit codes, stable for CI: 0 — no findings;
1 — findings (the gate fails); 2 — usage error (unknown rule, no
analyzable paths).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.base import get_rule
from repro.analysis.runner import (
    analyze_paths,
    render_findings,
    render_rule_table,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: the repo's invariant contracts as "
                    "static analysis (see --list-rules)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table (id, severity, "
                             "invariant) and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_table())
        return 0

    rules = None
    if args.rules is not None:
        try:
            rules = [get_rule(rule_id.strip())
                     for rule_id in args.rules.split(",") if rule_id.strip()]
        except KeyError as exc:
            print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
            return 2
        if not rules:
            print("repro-lint: --rules selected nothing", file=sys.stderr)
            return 2

    paths = args.paths or [p for p in ("src", "tests") if os.path.isdir(p)]
    if not paths:
        print("repro-lint: no paths given and no src/tests directory "
              "under the current directory", file=sys.stderr)
        return 2

    findings, files_checked = analyze_paths(paths, rules)
    if files_checked == 0:
        print(f"repro-lint: no .py files under {paths}", file=sys.stderr)
        return 2
    print(render_findings(findings, files_checked, args.fmt))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
