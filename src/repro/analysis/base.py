"""Analysis framework core: findings, the rule registry, module info.

A *rule* encodes one repo invariant as a pure function over a parsed
module (``ModuleInfo``: path, dotted module name, source lines, AST,
allowlist pragmas).  Rules never import the code they inspect — a
module that fails at import time is still checkable, and the analyzer
cannot be broken by the very bug it is hunting.

Allowlist pragmas
-----------------
A finding on line *N* is suppressed by a pragma on line *N*, or by a
pragma that is the *only* content of line *N-1* (for constructs too
long to share a line with their justification)::

    self._hits += 1  # repro-lint: disable=lock-discipline -- callers hold self._lock

    # repro-lint: disable=cached-out -- copy made two lines up
    blend(a, b, out=canvas)

The justification after ``--`` is mandatory: a disable pragma without
one (or naming an unknown rule) is itself reported as a
``lint-pragma`` finding, which cannot be suppressed.  This keeps the
allowlist honest — every exception to a contract carries its written
reason in the diff that introduced it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable

#: Pragma grammar (on real comments only — docstrings showing the
#: syntax do not activate it): ``disable=`` then rule ids, then a
#: mandatory ``--``-separated justification.
_PRAGMA_RE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s+--\s*(?P<why>.*))?\s*$"
)

#: Severity levels, most severe first (orders --list-rules output).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass
class Pragma:
    """One parsed ``repro-lint: disable=`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    #: True when the pragma is the whole line (applies to the next line).
    standalone: bool


@dataclass
class ModuleInfo:
    """Everything a rule may inspect about one source module."""

    path: str
    #: Dotted module name when the file sits under a ``repro`` package
    #: root (``repro.engine.cache``); None for scripts/tests outside it.
    module: str | None
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    pragmas: list[Pragma] = field(default_factory=list)
    #: line number -> comment text (``#`` included), real comments only.
    comments: dict[int, str] = field(default_factory=dict)

    def disabled_rules(self, line: int) -> set[str]:
        """Rules allowlisted for findings anchored at *line*."""
        disabled: set[str] = set()
        for pragma in self.pragmas:
            if not pragma.justification:
                continue  # bare pragmas never suppress (see lint-pragma)
            if pragma.line == line or (pragma.standalone
                                       and pragma.line == line - 1):
                disabled.update(pragma.rules)
        return disabled


def extract_comments(source: str, lines: list[str]) -> dict[int, str]:
    """Real ``#`` comments by line number, via :mod:`tokenize`.

    Tokenizing (rather than regex-scanning lines) keeps docstrings and
    string literals that merely *show* pragma/annotation syntax from
    activating it.  Files the tokenizer rejects fall back to a crude
    per-line scan — a partially broken file must still honor its
    pragmas so the parse-error finding is the only one reported.
    """
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        for lineno, text in enumerate(lines, start=1):
            if "#" in text:
                comments[lineno] = text[text.index("#"):]
    return comments


def parse_pragmas(comments: dict[int, str],
                  lines: list[str]) -> list[Pragma]:
    """Parse allowlist pragmas out of the module's comments."""
    pragmas: list[Pragma] = []
    for lineno in sorted(comments):
        match = _PRAGMA_RE.search(comments[lineno])
        if match is None:
            continue
        rules = tuple(
            name.strip() for name in match.group("rules").split(",")
            if name.strip()
        )
        why = (match.group("why") or "").strip()
        line_text = lines[lineno - 1] if lineno <= len(lines) else ""
        pragmas.append(Pragma(
            line=lineno,
            rules=rules,
            justification=why,
            standalone=line_text.strip().startswith("#"),
        ))
    return pragmas


def module_name_for(path: str) -> str | None:
    """Dotted module name of *path* when it lives under a package root.

    The heuristic that matters for the layering matrix: any path
    component named ``repro`` starts the dotted name, so both
    ``src/repro/engine/cache.py`` and a test fixture staged under
    ``tmp/repro/core/bad.py`` resolve.  Files outside a ``repro`` tree
    (tests, benchmarks) return None — package-scoped rules skip them.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    tail = parts[parts.index("repro"):]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    #: Stable rule id (the allowlist key and CLI/JSON name).
    id: str = ""
    severity: str = "error"
    #: One-line statement of the invariant (``--list-rules`` output).
    invariant: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST | int,
                message: str) -> Finding:
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        else:
            line, col = node, 0
        return Finding(
            rule=self.id, path=module.path, line=line, col=col,
            message=message, severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by id) to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"rule {rule_cls.id}: bad severity "
                         f"{rule_cls.severity!r}")
    _REGISTRY[rule_cls.id] = rule_cls()
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, id-sorted (stable CLI/JSON ordering)."""
    import repro.analysis.rules  # noqa: F401 -- registration side effect

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401 -- registration side effect

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_rule_ids() -> set[str]:
    import repro.analysis.rules  # noqa: F401 -- registration side effect

    return set(_REGISTRY)


def iter_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child → parent map for rules that need ancestor context."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents
