"""Rule modules — importing this package registers every rule.

Each module defines one rule class decorated with
:func:`repro.analysis.base.register`; the import below is the
registration side effect the framework relies on.  Add new rules by
dropping a module here and importing it.
"""

from repro.analysis.rules import (  # noqa: F401 -- registration imports
    cached_out,
    checkpoints,
    envelopes,
    layering,
    locks,
    shm_lifecycle,
    spec_digest,
)
