"""Rule ``cached-out`` — frozen cache entries never flow into ``out=``.

Cache entries (canvas cache, tile cache, coverage footprints) are
shared, never copied: every consumer of ``CanvasCache.get_or_build``
holds the *same* object every later hit will receive.  The entries
are frozen (numpy ``writeable=False``) so a mutating consumer raises
at runtime — but that safety net triggers in production, on the
unlucky request that aliased a warm entry.  This rule moves the catch
to review time: any value *derived from* a cache getter that reaches
an ``out=`` keyword argument (the algebra's in-place seam) or an
in-place operation is flagged.

Taint model (intra-function, flow-insensitive — deliberately simple):

- seeds: the result of any ``*.get_or_build(...)`` call, plus calls
  to names listed in :data:`CACHE_GETTERS` (``constraint_canvas`` is
  the engine's public cached-canvas accessor);
- propagation: assignment, tuple unpacking, attribute access
  (``entry.texture.data`` is the entry's own buffer), subscripts,
  conditional expressions; a *call* on a tainted value clears taint
  (``entry.texture.data.copy()`` is the documented remedy and
  returns a fresh buffer);
- sinks: ``out=<tainted>`` keywords, augmented assignment on a
  tainted target, and item assignment into a tainted base.

False positives are possible (a reassigned name stays tainted); that
is what the per-line allowlist with a written justification is for —
an aliasing hazard subtle enough to defeat the model deserves a
comment explaining why it is safe.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: Method/function names whose return value is a shared cache entry.
CACHE_GETTERS = frozenset({"get_or_build", "constraint_canvas"})

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _scope_walk(root: ast.AST):
    """``ast.walk`` limited to *root*'s own scope.

    Nested function/class definitions are yielded (their header lives
    in this scope) but not entered — each nested function gets its own
    taint pass, so descending here would double-report its sinks.
    Lambdas stay in the enclosing scope: they share its names.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_BARRIERS):
                continue
            stack.append(child)


def _is_cache_getter_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in CACHE_GETTERS
    if isinstance(func, ast.Name):
        return func.id in CACHE_GETTERS
    return False


class _FunctionTaint:
    """One function's taint pass: collect tainted names, then sinks."""

    def __init__(self, rule: Rule, module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- taint predicate -------------------------------------------------
    def is_tainted(self, node: ast.AST) -> bool:
        if _is_cache_getter_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.NamedExpr):
            return self.is_tainted(node.value)
        # Any other call launders taint: .copy()/np.array(...) return
        # fresh buffers, and modelling every numpy view-returning
        # function would drown the rule in false positives.
        return False

    # -- taint collection (fixpoint over assignments) --------------------
    def collect(self, func: ast.AST) -> None:
        changed = True
        while changed:
            changed = False
            for node in _scope_walk(func):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                if value is None or not self.is_tainted(value):
                    continue
                for target in targets:
                    for name in _target_names(target):
                        if name not in self.tainted:
                            self.tainted.add(name)
                            changed = True

    # -- sinks -----------------------------------------------------------
    def find_sinks(self, func: ast.AST) -> None:
        for node in _scope_walk(func):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "out" and self.is_tainted(
                        keyword.value
                    ):
                        self.findings.append(self.rule.finding(
                            self.module, node,
                            "cache-derived value passed as out= — "
                            "cached entries are shared and frozen; "
                            "write into a fresh/owned buffer instead "
                            "(.copy() the entry if it must seed the "
                            "output)",
                        ))
            elif isinstance(node, ast.AugAssign):
                if self.is_tainted(node.target):
                    self.findings.append(self.rule.finding(
                        self.module, node,
                        "in-place operation on a cache-derived value "
                        "— cached entries are shared and frozen; "
                        "operate on a copy",
                    ))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and self.is_tainted(
                        target.value
                    ):
                        self.findings.append(self.rule.finding(
                            self.module, node,
                            "item assignment into a cache-derived "
                            "value — cached entries are shared and "
                            "frozen; write into a copy",
                        ))


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


@register
class CachedOutRule(Rule):
    id = "cached-out"
    severity = "error"
    invariant = ("values derived from cache getters never flow into "
                 "out= keywords or in-place numpy operations")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            taint = _FunctionTaint(self, module)
            taint.collect(node)
            # Sinks with inline seeds (blend(..., out=x.get_or_build(k)))
            # need no named taint, so always run the sink pass.
            taint.find_sinks(node)
            yield from taint.findings
