"""Rule ``deadline-checkpoint`` — annotated seams actually checkpoint.

The PR 7 deadline design is *cooperative*: a request aborts within
one checkpoint of its budget because every long-running engine loop
calls :func:`repro.resilience.check_deadline` (or ``Deadline.check``)
per iteration.  The guarantee is exactly as strong as the checkpoint
coverage — a new executor loop without a checkpoint silently extends
the worst-case overshoot from "one tile" to "the whole query", and
nothing at runtime notices until an operator wonders why a deadline
landed seconds late.

Coverage is declared in the source with a seam annotation on (or
immediately above) the loop header::

    # deadline-seam: tile-build
    for tile_key in plan.tile_keys:
        check_deadline(deadline, "tile-build")
        ...

The rule enforces both directions of the contract:

- an annotated loop whose body contains no ``check_deadline(...)`` /
  ``*.check(...)`` call is flagged (the seam rotted);
- an annotation with no ``for``/``while`` loop on the same or next
  line is flagged (the anchor rotted — e.g. the loop was refactored
  away and the comment stayed).

The annotation is deliberately explicit rather than inferred ("any
loop over tiles"): which loops are deadline seams is a *policy*
decision recorded in ADR 0001, and the annotation puts that decision
in the diff where review can see it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: Seam annotation grammar: ``# deadline-seam: <checkpoint-name>``.
SEAM_RE = re.compile(r"#\s*deadline-seam:\s*(?P<name>[A-Za-z0-9_\-]+)")

#: Call names that count as a checkpoint inside an annotated loop.
CHECK_CALLS = frozenset({"check_deadline", "check"})


def _loop_has_check(loop: ast.AST) -> bool:
    for node in ast.walk(loop):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in CHECK_CALLS:
            return True
    return False


@register
class DeadlineCheckpointRule(Rule):
    id = "deadline-checkpoint"
    severity = "error"
    invariant = ("loops annotated `# deadline-seam:` contain a "
                 "check_deadline/Deadline.check call")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        seams: dict[int, str] = {}
        for lineno, text in module.comments.items():
            match = SEAM_RE.search(text)
            if match is not None:
                seams[lineno] = match.group("name")
        if not seams:
            return
        loops_by_line: dict[int, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                loops_by_line.setdefault(node.lineno, node)
        for lineno, seam_name in sorted(seams.items()):
            # Trailing comment on the loop line, or a whole-line
            # comment directly above the header.
            loop = loops_by_line.get(lineno) or loops_by_line.get(lineno + 1)
            if loop is None:
                yield self.finding(
                    module, lineno,
                    f"deadline-seam annotation {seam_name!r} has no "
                    f"for/while loop on this or the next line — the "
                    f"seam it documented was moved or removed; move "
                    f"the annotation with the loop",
                )
                continue
            if not _loop_has_check(loop):
                yield self.finding(
                    module, loop,
                    f"loop annotated as deadline seam {seam_name!r} "
                    f"contains no check_deadline/Deadline.check call — "
                    f"requests in this loop cannot abort until it "
                    f"finishes (ADR 0001 cooperative-cancellation "
                    f"contract)",
                )
