"""Rule ``error-envelope`` — serve errors speak the stable taxonomy.

ADR 0001 fixed the machine-readable error contract: every
``{"ok": false}`` line the service emits carries exactly one ``code``
drawn from :data:`repro.resilience.ERROR_CODES`, so clients branch on
codes, never on message text.  The contract lives or dies at the
construction sites — one forgotten ``"code"`` key in a new except
branch and a client's retry logic silently stops matching.

The rule checks every dict literal (and ``dict(...)`` call) that maps
``"ok"`` to ``False`` inside the serve-boundary modules
(:data:`TARGET_BASENAMES` — ``serve.py`` and ``cli.py``, where the
envelopes are built):

- a ``"code"`` key must be present;
- when its value is a string literal, it must be a member of the
  taxonomy (dynamic values like ``exc.code`` are trusted — the typed
  exceptions carry their own codes, regression-tested at runtime).
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: Files whose error envelopes face clients.  Basename-scoped so the
#: rule follows the module wherever the tree (or a test fixture)
#: puts it.
TARGET_BASENAMES = frozenset({"serve.py", "cli.py"})

#: The stable taxonomy, mirrored from repro.resilience.ERROR_CODES.
#: Mirrored, not imported: the analyzer must parse the contract even
#: when the package under inspection cannot be imported, and a
#: mismatch here fails the meta-test that compares the two at runtime
#: (tests/analysis/test_error_envelope.py).
ERROR_CODES = (
    "bad_request",
    "deadline",
    "cancelled",
    "shed",
    "too_costly",
    "memory",
    "worker_lost",
    "internal",
)


def _const(node: ast.AST | None):
    return node.value if isinstance(node, ast.Constant) else _NOT_CONST


_NOT_CONST = object()


def _envelope_items(node: ast.AST) -> list[tuple[str, ast.AST]] | None:
    """``[(key, value_node), ...]`` when *node* builds a literal dict
    with constant string keys; None otherwise."""
    if isinstance(node, ast.Dict):
        items = []
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                return None  # **spread / dynamic key: not checkable
            items.append((key.value, value))
        return items
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "dict" and not node.args):
        return [(kw.arg, kw.value) for kw in node.keywords
                if kw.arg is not None]
    return None


@register
class ErrorEnvelopeRule(Rule):
    id = "error-envelope"
    severity = "error"
    invariant = ('every {"ok": False} envelope in serve.py/cli.py '
                 "carries a code key from ERROR_CODES")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if os.path.basename(module.path) not in TARGET_BASENAMES:
            return
        for node in ast.walk(module.tree):
            items = _envelope_items(node)
            if items is None:
                continue
            mapping = dict(items)
            if "ok" not in mapping or _const(mapping["ok"]) is not False:
                continue
            if "code" not in mapping:
                yield self.finding(
                    module, node,
                    '{"ok": False} envelope has no "code" key — every '
                    "serve error must name one stable ERROR_CODES code "
                    "(ADR 0001)",
                )
                continue
            code = _const(mapping["code"])
            if code is not _NOT_CONST and code not in ERROR_CODES:
                yield self.finding(
                    module, node,
                    f'error envelope code {code!r} is not in '
                    f"ERROR_CODES {ERROR_CODES}; extend the taxonomy "
                    f"in repro.resilience (and ADR 0001) first",
                )
