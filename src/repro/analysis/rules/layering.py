"""Rule ``layering`` — the package import matrix (the PR 1/3 contract).

The engine's layers compose strictly downward::

    repro.cli
      repro.api          (specs / session / serve / registry / shm)
        repro.engine     (planner / executor / caches / process pool)
          repro.core     (canvas algebra, expressions, optimizer, tiling)
            repro.geometry, repro.gpu, repro.index  (leaf kernels)

A lower layer importing an upper one creates an import cycle waiting
to happen and — worse — lets kernel code reach around the planner.
The two contracts called out in ROADMAP ("Architecture") are encoded
here verbatim: ``repro.core`` may not import ``repro.engine`` or
``repro.api``, and ``repro/queries/*`` may not call ``core.algebra``
directly (every query family routes through the engine since PR 3, so
a direct algebra call would execute outside plan pricing, reporting,
deadlines, and the canvas cache).

The matrix below is *deny-list* shaped: absent pairs are allowed, so
adding a package defaults to unconstrained until a contract is
written down for it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: package prefix -> import prefixes it must never depend on.
#: Checked by prefix: ``repro.core`` constrains ``repro.core.canvas``
#: too, and forbidding ``repro.engine`` forbids every submodule.
FORBIDDEN_IMPORTS: dict[str, tuple[str, ...]] = {
    # The kernel layer must stay callable without the service stack.
    "repro.core": (
        "repro.engine", "repro.api", "repro.queries", "repro.cli",
        "repro.baselines", "repro.relational",
    ),
    # Leaf packages: pure kernels with no upward knowledge.
    "repro.geometry": ("repro.core", "repro.engine", "repro.api",
                       "repro.queries"),
    "repro.gpu": ("repro.core", "repro.engine", "repro.api"),
    "repro.index": ("repro.core", "repro.engine", "repro.api"),
    "repro.data": ("repro.core", "repro.engine", "repro.api"),
    "repro.utils": ("repro.core", "repro.engine", "repro.api",
                    "repro.queries"),
    # Cross-cutting layers imported *by* the engine: importing it back
    # would cycle (testing.faults and resilience.deadline are wired
    # into engine hot loops).
    "repro.testing": ("repro.core", "repro.engine", "repro.api",
                      "repro.queries"),
    "repro.resilience": ("repro.engine", "repro.api", "repro.queries"),
    # The engine serves the api layer, never consumes it.
    "repro.engine": ("repro.api", "repro.cli"),
    "repro.api": ("repro.cli",),
    # The PR 3 contract: queries are thin spec sugar over the engine;
    # calling the dense algebra directly would bypass plan pricing,
    # caches, reports, and deadlines.
    "repro.queries": ("repro.core.algebra",),
    # Baselines are the independent reference implementations the
    # engine is measured against — sharing its kernels or caches would
    # make the comparison circular.
    "repro.baselines": ("repro.core.algebra", "repro.engine",
                        "repro.api"),
    # The analyzer checks these layers; importing their internals
    # would let the very bug it hunts break the hunt.
    "repro.analysis": ("repro.engine", "repro.api", "repro.core",
                       "repro.queries"),
}

#: (source prefix, forbidden prefix) -> import targets carved out of
#: the ban.  The one entry is the PR 8 data plane: the shared-memory
#: codec lives in ``repro.api.shm`` (next to the registry that
#: publishes it) but is *consumed* by the engine's process backend —
#: a deliberate, ADR-0002-documented hole in "engine never imports
#: api".  Everything else in repro.api stays off-limits to the engine.
MATRIX_EXCEPTIONS: dict[tuple[str, str], tuple[str, ...]] = {
    ("repro.engine", "repro.api"): ("repro.api.shm",),
}

#: Source modules exempt from one forbidden prefix entirely.  The
#: worker entry point hosts a *mirrored Session* in the worker process
#: (geometry/join specs ship whole and execute there — ADR 0002), so
#: it is the engine's designated bridge back into the api layer.
MODULE_EXEMPTIONS: dict[str, tuple[str, ...]] = {
    "repro.engine.process_worker": ("repro.api",),
}


def _imported_targets(tree: ast.Module,
                      module: str | None) -> Iterator[tuple[str, ast.AST]]:
    """Every dotted import target in *tree* (absolute form), with node.

    ``from x import a, b`` yields ``x.a`` and ``x.b`` — the per-name
    resolution is what catches ``from repro.core import algebra``.
    Relative imports resolve against the module's own package.
    """
    package = module.rsplit(".", 1)[0] if module and "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".") if package else []
                # one level = current package; each extra level pops.
                base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                base = ".".join(
                    part for part in base_parts + [node.module or ""] if part
                )
            else:
                base = node.module or ""
            if not base:
                continue
            yield base, node
            for alias in node.names:
                if alias.name != "*":
                    yield f"{base}.{alias.name}", node


def _matches(target: str, forbidden: str) -> bool:
    return target == forbidden or target.startswith(forbidden + ".")


@register
class LayeringRule(Rule):
    id = "layering"
    severity = "error"
    invariant = ("package import matrix stays acyclic: core never "
                 "imports engine/api, queries never import core.algebra")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.module is None or not module.module.startswith("repro"):
            return
        constraints = [
            (prefix, forbidden)
            for prefix, forbidden_list in FORBIDDEN_IMPORTS.items()
            if _matches(module.module, prefix)
            for forbidden in forbidden_list
        ]
        if not constraints:
            return
        exempt = MODULE_EXEMPTIONS.get(module.module, ())
        seen: set[tuple[str, int]] = set()
        for target, node in _imported_targets(module.tree, module.module):
            for prefix, forbidden in constraints:
                if not _matches(target, forbidden):
                    continue
                if any(_matches(forbidden, ex) for ex in exempt):
                    continue
                allowed = MATRIX_EXCEPTIONS.get((prefix, forbidden), ())
                if any(_matches(target, ex) for ex in allowed):
                    continue
                key = (forbidden, node.lineno)
                if key in seen:
                    continue  # one finding per import stmt + target
                seen.add(key)
                yield self.finding(
                    module, node,
                    f"{module.module} must not import {forbidden} "
                    f"(imports {target}); the layering matrix in "
                    f"repro/analysis/rules/layering.py forbids it",
                )
