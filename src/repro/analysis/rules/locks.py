"""Rule ``lock-discipline`` — guarded-by inference over class state.

The concurrency seams of PR 5/7/8 (canvas cache, result cache, buffer
pool, memory governor, process pool, shared-memory plane) all follow
one idiom: a class owns a ``threading.Lock`` attribute and every
touch of its mutable state happens inside ``with self._lock``.  The
idiom is load-bearing — an unguarded read of ``self._store`` races
the eviction loop; an unguarded counter write loses increments — but
nothing enforced it until now.

Inference, per class:

1. *Lock attributes*: any ``self.X = threading.Lock()`` (or
   ``RLock``/``Condition``) assignment, whatever ``X`` is called.
2. *Guarded attributes*: every ``self.Y`` **assigned** anywhere
   inside a ``with self.X:`` block (for a known lock attribute X).
   Writing under the lock is the class author declaring "Y is shared
   mutable state".
3. *Violations*: any read or write of a guarded ``self.Y`` outside
   such a ``with`` block, in any method.

Conventions the inference respects (all documented in ADR 0003):

- ``__init__``/``__post_init__``/``__del__``/``__enter__``/
  ``__exit__`` are exempt — construction happens-before sharing, and
  teardown owns the object again.
- Methods whose name ends in ``_locked`` are exempt: the suffix is
  this repo's "caller must hold the lock" marker (the rule still
  checks that *callers* of such helpers touch state lawfully, because
  the helper's own accesses are the exempt ones, not the call site's
  surrounding state).
- The lock attributes themselves are never flagged (taking the lock
  requires reading it).

Anything else is either a real race or a deliberate unguarded access
(monotonic flag reads, single-threaded teardown) that deserves its
written justification in an allowlist pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: Constructor names whose result is a lock-like guard object.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Methods exempt from the outside-the-lock check.
EXEMPT_METHODS = frozenset({
    "__init__", "__post_init__", "__del__", "__enter__", "__exit__",
})


def _is_lock_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    return False


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"``; anything else → None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _is_exempt(method: ast.AST) -> bool:
    name = getattr(method, "name", "")
    return name in EXEMPT_METHODS or name.endswith("_locked")


class _ClassAnalysis:
    """Guarded-by facts for one class body."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods = [
            node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.lock_attrs = self._find_lock_attrs()
        self.guarded = self._find_guarded_attrs()

    def _find_lock_attrs(self) -> set[str]:
        locks: set[str] = set()
        for method in self.methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_factory_call(
                    node.value
                ):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            locks.add(attr)
        return locks

    def _with_guards_lock(self, node: ast.With) -> bool:
        return any(
            _self_attr(item.context_expr) in self.lock_attrs
            for item in node.items
        )

    def _find_guarded_attrs(self) -> set[str]:
        guarded: set[str] = set()
        for method in self.methods:
            for node in ast.walk(method):
                if isinstance(node, ast.With) and self._with_guards_lock(node):
                    for inner in ast.walk(node):
                        targets: list[ast.expr] = []
                        if isinstance(inner, ast.Assign):
                            targets = inner.targets
                        elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                            targets = [inner.target]
                        for target in targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                guarded.add(attr)
                            # tuple targets: `a, self._x = ...`
                            if isinstance(target, (ast.Tuple, ast.List)):
                                for element in target.elts:
                                    attr = _self_attr(element)
                                    if attr is not None:
                                        guarded.add(attr)
        return guarded - self.lock_attrs


def _unguarded_accesses(method: ast.AST, analysis: _ClassAnalysis):
    """Yield ``(node, attr)`` for guarded-attr accesses outside the lock.

    Iterative scope walk that tracks whether the path from the method
    root passes through a lock-holding ``with``; nested defs are
    entered (a closure touching ``self`` state runs on some thread
    too) but lambdas submitted to executors keep their own findings.
    """
    stack: list[tuple[ast.AST, bool]] = [(method, False)]
    while stack:
        node, locked = stack.pop()
        if isinstance(node, ast.With) and analysis._with_guards_lock(node):
            locked = True
        attr = _self_attr(node)
        if attr is not None and attr in analysis.guarded and not locked:
            yield node, attr
        for child in ast.iter_child_nodes(node):
            stack.append((child, locked))


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    severity = "error"
    invariant = ("attributes ever written under `with self._lock` are "
                 "never read or written outside it")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            analysis = _ClassAnalysis(node)
            if not analysis.lock_attrs or not analysis.guarded:
                continue
            for method in analysis.methods:
                if _is_exempt(method):
                    continue
                for access, attr in _unguarded_accesses(method, analysis):
                    yield self.finding(
                        module, access,
                        f"self.{attr} is written under "
                        f"`with self.{sorted(analysis.lock_attrs)[0]}` "
                        f"elsewhere in {node.name} but accessed here "
                        f"outside the lock ({method.name}); guard the "
                        f"access, rename the helper *_locked, or "
                        f"justify with an allowlist pragma",
                    )
