"""Rule ``shm-lifecycle`` — every created segment reaches an unlink.

A ``multiprocessing.shared_memory.SharedMemory(create=True)`` segment
is a *kernel* object: abandon the Python handle and the ``/dev/shm``
entry stays until reboot, silently eating the host's memory budget
(PR 8's leak scans exist because this failure mode is invisible in
tests that never look).  ADR 0002 fixed the ownership policy — the
coordinator that creates a segment is the one authority that unlinks
it — and this rule checks the *shape* of that policy at every
creation site.  A creation is compliant when either:

1. it is lexically dominated by a ``try`` whose ``finally`` (or an
   exception handler) reaches a ``.unlink(...)`` call — the local
   scope-bound pattern; or
2. it happens inside a class that (a) defines some method calling
   ``.unlink(...)`` and (b) lives in a module that registers cleanup
   (`atexit.register(...)` at any level) — the registered-cleanup
   pattern :class:`~repro.api.shm.SharedDatasetPlane` uses, where
   instances are tracked in a module registry swept at exit.

Anything else — a bare ``SharedMemory(create=True)`` whose unlink
depends on a happy path — is flagged.  The rule is about *reachability
of the unlink*, not its runtime correctness; refcount bugs remain the
province of the PR 8 lifecycle tests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import (
    Finding,
    ModuleInfo,
    Rule,
    iter_parents,
    register,
)


def _is_shm_create(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    return any(
        kw.arg == "create" and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _calls_unlink(nodes: list[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"):
                return True
    return False


def _module_registers_atexit(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name == "register" and isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "atexit":
                return True
            if name == "register" and isinstance(func, ast.Name):
                # `from atexit import register` style
                return True
    return False


def _class_has_unlink_method(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _calls_unlink(node.body):
                return True
    return False


@register
class ShmLifecycleRule(Rule):
    id = "shm-lifecycle"
    severity = "error"
    invariant = ("every SharedMemory(create=True) is dominated by a "
                 "try/finally or registered-cleanup path reaching unlink")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        creates = [
            node for node in ast.walk(module.tree) if _is_shm_create(node)
        ]
        if not creates:
            return
        parents = iter_parents(module.tree)
        module_atexit = _module_registers_atexit(module.tree)
        for create in creates:
            if self._is_covered(create, parents, module_atexit):
                continue
            yield self.finding(
                module, create,
                "SharedMemory(create=True) with no unlink path: wrap "
                "the segment's lifetime in try/finally reaching "
                ".unlink(), or own it in a class with an unlink-ing "
                "close() registered for atexit cleanup (ADR 0002)",
            )

    def _is_covered(self, create: ast.AST, parents, module_atexit: bool
                    ) -> bool:
        node: ast.AST | None = create
        while node is not None:
            if isinstance(node, ast.Try):
                if _calls_unlink(node.finalbody):
                    return True
                if any(_calls_unlink(handler.body)
                       for handler in node.handlers):
                    return True
            if isinstance(node, ast.ClassDef):
                if module_atexit and _class_has_unlink_method(node):
                    return True
            node = parents.get(node)
        return False
