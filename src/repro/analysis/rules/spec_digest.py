"""Rule ``spec-digest`` — new spec fields cannot silently skip the key.

The result cache (PR 5) keys on a canonical digest of each spec's
``to_dict()`` form: two specs that serialize identically share a
cached result.  That makes ``to_dict`` coverage a *correctness*
surface — a field added to a ``*Spec`` dataclass but forgotten in its
``to_dict`` would leave the digest blind to it, and two genuinely
different queries would collide on one cache entry, returning wrong
results with a confident cache-hit report.

The contract, per dataclass whose name ends in ``Spec`` and defines
``to_dict``: every declared field must either

- appear as a string literal inside the class body (its ``to_dict``
  emits it as a key and ``from_dict`` reads it back — the *semantic
  digest set*), or
- be a member of the module's documented policy-excluded set — a
  module-level assignment named :data:`EXCLUDED_SET_NAMES` (the repo's
  is ``DIGEST_POLICY_EXCLUDED`` in :mod:`repro.api.specs`, holding
  ``deadline_ms``: a budget bounds how long a query may run, not what
  it computes, so it is popped from the digest by
  :func:`repro.api.result_cache.spec_digest`).

A field in neither set fails the build until the author decides —
and writes down — whether the field is semantics or policy.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, ModuleInfo, Rule, register

#: Module-level names recognized as the policy-excluded field set.
EXCLUDED_SET_NAMES = frozenset({
    "DIGEST_POLICY_EXCLUDED",
    "POLICY_EXCLUDED_FIELDS",
})


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


def _declared_fields(cls: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    fields = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            name = node.target.id
            if name.startswith("_"):
                continue
            annotation = ast.dump(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((name, node))
    return fields


def _string_literals(cls: ast.ClassDef) -> set[str]:
    found: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            found.add(node.value)
    return found


def _excluded_fields(tree: ast.Module) -> set[str]:
    excluded: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        names = {
            target.id for target in targets if isinstance(target, ast.Name)
        }
        if not names & EXCLUDED_SET_NAMES:
            continue
        for inner in ast.walk(value):
            if isinstance(inner, ast.Constant) and isinstance(
                inner.value, str
            ):
                excluded.add(inner.value)
    return excluded


def _defines_to_dict(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == "to_dict"
        for node in cls.body
    )


@register
class SpecDigestRule(Rule):
    id = "spec-digest"
    severity = "error"
    invariant = ("every *Spec dataclass field is serialized by to_dict "
                 "or listed in the policy-excluded set")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        excluded = _excluded_fields(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Spec"):
                continue
            if not _is_dataclass(node) or not _defines_to_dict(node):
                continue
            literals = _string_literals(node)
            for field_name, field_node in _declared_fields(node):
                if field_name in literals or field_name in excluded:
                    continue
                yield self.finding(
                    module, field_node,
                    f"{node.name}.{field_name} appears neither as a "
                    f"to_dict key nor in the policy-excluded set "
                    f"(DIGEST_POLICY_EXCLUDED) — the result-cache "
                    f"digest cannot see it, so two different queries "
                    f"would share one cache entry; serialize it or "
                    f"document the exclusion",
                )
