"""Analyzer driver: collect files, run rules, filter allowlists, render.

The driver is where the allowlist policy is *enforced* rather than
merely parsed: findings on allowlisted lines are dropped, but a
pragma without a justification — or naming a rule that does not
exist — becomes a ``lint-pragma`` finding that no pragma can
suppress.  Exit codes are stable for CI: 0 clean, 1 findings,
2 usage/internal error (see ``__main__``).
"""

from __future__ import annotations

import ast
import json
import os
from typing import Sequence

from repro.analysis.base import (
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    extract_comments,
    known_rule_ids,
    module_name_for,
    parse_pragmas,
)

#: Directory names never descended into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules",
    ".ruff_cache",
})


def collect_files(paths: Sequence[str]) -> list[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    out.append(os.path.join(dirpath, filename))
    return sorted(set(out))


def load_module(path: str, source: str | None = None) -> ModuleInfo:
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    comments = extract_comments(source, lines)
    return ModuleInfo(
        path=path,
        module=module_name_for(path),
        source=source,
        tree=tree,
        lines=lines,
        pragmas=parse_pragmas(comments, lines),
        comments=comments,
    )


def _pragma_findings(module: ModuleInfo, known: set[str]) -> list[Finding]:
    findings = []
    for pragma in module.pragmas:
        if not pragma.justification:
            findings.append(Finding(
                rule="lint-pragma", path=module.path, line=pragma.line,
                col=0, severity="error",
                message=("allowlist pragma without justification — "
                         "write `# repro-lint: disable=<rule> -- <why "
                         "this exception is safe>`"),
            ))
        for rule_id in pragma.rules:
            if rule_id not in known:
                findings.append(Finding(
                    rule="lint-pragma", path=module.path, line=pragma.line,
                    col=0, severity="error",
                    message=(f"allowlist pragma names unknown rule "
                             f"{rule_id!r}; known rules: "
                             f"{sorted(known)}"),
                ))
    return findings


def analyze_module(module: ModuleInfo,
                   rules: Sequence[Rule] | None = None) -> list[Finding]:
    """All surviving findings for one loaded module."""
    rules = list(all_rules()) if rules is None else list(rules)
    known = known_rule_ids()
    findings = _pragma_findings(module, known)
    for rule in rules:
        for finding in rule.check(module):
            if finding.rule in module.disabled_rules(finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_source(source: str, path: str = "<string>",
                   rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Analyze a source string (the fixture-test entry point)."""
    return analyze_module(load_module(path, source), rules)


def analyze_paths(paths: Sequence[str],
                  rules: Sequence[Rule] | None = None
                  ) -> tuple[list[Finding], int]:
    """``(findings, files_checked)`` over every ``.py`` file in *paths*.

    A file the parser rejects yields a ``parse-error`` finding rather
    than crashing the run — a syntax error must fail the gate, not
    the tool.
    """
    findings: list[Finding] = []
    files = collect_files(paths)
    for path in files:
        try:
            module = load_module(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(Finding(
                rule="parse-error", path=path,
                line=getattr(exc, "lineno", None) or 1, col=0,
                severity="error", message=f"cannot analyze: {exc}",
            ))
            continue
        findings.extend(analyze_module(module, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def render_findings(findings: Sequence[Finding], files_checked: int,
                    fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps({
            "ok": not findings,
            "files_checked": files_checked,
            "findings": [finding.as_dict() for finding in findings],
        }, indent=2, sort_keys=True)
    lines = [finding.render() for finding in findings]
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append(
            f"repro-lint: {len(findings)} {noun} in "
            f"{len({f.path for f in findings})} file(s) "
            f"({files_checked} checked)"
        )
    else:
        lines.append(f"repro-lint: {files_checked} file(s) clean")
    return "\n".join(lines)


def render_rule_table() -> str:
    """The ``--list-rules`` table: id, severity, one-line invariant."""
    rules = all_rules()
    width = max(len(rule.id) for rule in rules)
    lines = [f"{'rule'.ljust(width)}  severity  invariant",
             f"{'-' * width}  --------  ---------"]
    for rule in rules:
        lines.append(
            f"{rule.id.ljust(width)}  {rule.severity:<8}  {rule.invariant}"
        )
    lines.append("")
    lines.append("allowlist: # repro-lint: disable=<rule>[,<rule>] -- "
                 "<mandatory justification>")
    lines.append("details:   docs/adr/0003-static-invariant-checking.md")
    return "\n".join(lines)
