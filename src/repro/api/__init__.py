"""repro.api — the declarative, service-callable query layer (PR 4).

Everything below this package speaks live Python objects; everything
above it can speak JSON.  The three pieces:

- :mod:`repro.api.specs` — typed, versioned query specs for all seven
  query families, with eager validation and ``to_dict``/``from_dict``
  round trips (:class:`SpecError` on anything malformed);
- :mod:`repro.api.registry` — :class:`DatasetRegistry`, resolving the
  dataset names inside specs (registered arrays, ``synthetic:`` /
  ``taxi:`` / ``file:`` schemes);
- :mod:`repro.api.session` — :class:`Session`, which executes specs on
  the plan-driven engine (``run`` / ``run_batch`` / ``explain``), and
  :mod:`repro.api.serve`, the JSON-lines service loop behind
  ``python -m repro serve``.

The resilience layer (:mod:`repro.resilience`) plugs in at this level:
specs and sessions carry ``deadline_ms`` budgets, the serve loop takes
an :class:`~repro.resilience.AdmissionController` for load shedding,
and a :class:`~repro.resilience.MemoryGovernor` places the caches and
buffer pool under one byte budget (re-exported here for convenience).

The legacy functions in :mod:`repro.queries` are thin sugar over this
layer::

    from repro.api import (
        ConstraintSpec, DatasetRegistry, SelectSpec, Session,
    )

    registry = DatasetRegistry()
    session = Session(registry)
    spec = SelectSpec(
        dataset="taxi:pickups?n=10000",
        constraints=[ConstraintSpec.rect((2, 2), (12, 30))],
    )
    result = session.run(spec)              # == the legacy call
    line = json.dumps(spec.to_dict())       # ship it anywhere
"""

from repro.api.registry import DatasetRegistry
from repro.api.result_cache import (
    ResultCache,
    ResultCacheStats,
    spec_digest,
)
from repro.api.serve import (
    default_serve_session,
    handle_request,
    report_summary,
    result_summary,
    serve,
    serve_lines,
)
from repro.api.session import BatchRun, Session, default_session
from repro.api.shm import (
    AttachedPlane,
    SharedDatasetPlane,
    StaleGeneration,
)
from repro.resilience import (
    AdmissionController,
    Cancelled,
    Deadline,
    DeadlineExceeded,
    ERROR_CODES,
    MemoryGovernor,
)
from repro.api.specs import (
    AGGREGATES,
    CONSTRAINT_KINDS,
    GEOMETRY_SELECT_KINDS,
    JOIN_KINDS,
    SPEC_FAMILIES,
    AggregateSpec,
    ConstraintSpec,
    GeometryData,
    GeometrySpec,
    JoinSpec,
    KnnSpec,
    OdSpec,
    PointData,
    QuerySpec,
    SelectSpec,
    SpecError,
    TripData,
    VoronoiSpec,
    WindowSpec,
    spec_from_dict,
)

__all__ = [
    "AGGREGATES",
    "AdmissionController",
    "AggregateSpec",
    "AttachedPlane",
    "BatchRun",
    "CONSTRAINT_KINDS",
    "Cancelled",
    "ConstraintSpec",
    "DatasetRegistry",
    "Deadline",
    "DeadlineExceeded",
    "ERROR_CODES",
    "MemoryGovernor",
    "GEOMETRY_SELECT_KINDS",
    "GeometryData",
    "GeometrySpec",
    "JOIN_KINDS",
    "JoinSpec",
    "KnnSpec",
    "OdSpec",
    "PointData",
    "QuerySpec",
    "ResultCache",
    "ResultCacheStats",
    "SPEC_FAMILIES",
    "SelectSpec",
    "Session",
    "SharedDatasetPlane",
    "SpecError",
    "StaleGeneration",
    "TripData",
    "VoronoiSpec",
    "WindowSpec",
    "default_serve_session",
    "default_session",
    "handle_request",
    "report_summary",
    "result_summary",
    "serve",
    "serve_lines",
    "spec_digest",
    "spec_from_dict",
]
