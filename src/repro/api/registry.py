"""Dataset resolution: the names inside a spec become arrays here.

A spec that references its data by *name* is self-contained off-process
— the JSON line ``{"spec": "select", "dataset": "taxi:pickups?n=5000",
...}`` carries everything a remote ``serve`` loop needs.  The registry
resolves three kinds of references:

- **registered names** — in-memory arrays, geometry lists, or
  :class:`~repro.data.taxi.TaxiTrips` tables installed with
  :meth:`DatasetRegistry.register` (these take precedence);
- **generator schemes** — ``synthetic:uniform?n=10000&seed=0``,
  ``synthetic:gaussian?n=10000&clusters=8``, ``taxi:pickups?n=50000``,
  ``taxi:dropoffs?...``, ``taxi:trips?...`` (deterministic per seed,
  so two processes resolving the same reference see the same data);
- **files** — ``file:points.csv`` / ``file:region.geojson`` through
  :mod:`repro.data.datasets`.

Scheme and file resolutions are memoized per reference string, so a
``serve`` loop answering many specs over the same named dataset loads
or generates it once.
"""

from __future__ import annotations

import threading

from pathlib import Path
from typing import Any, Mapping
from urllib.parse import parse_qsl

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Geometry, Point
from repro.api.specs import (
    GeometryData,
    PointData,
    SpecError,
    TripData,
)

#: Inline payload union (what resolution produces).
DatasetPayload = Any  # PointData | GeometryData | TripData

#: Default world window for the synthetic generators.
_SYNTH_WINDOW = (0.0, 0.0, 100.0, 100.0)

#: Largest generator size a reference may request.  The schemes are
#: reachable from untrusted serve requests; one absurd `n` must not be
#: able to OOM the service process.
MAX_GENERATED_POINTS = 10_000_000


def _parse_params(query: str, ref: str) -> dict[str, str]:
    if not query:
        return {}
    try:
        return dict(parse_qsl(query, strict_parsing=True))
    except ValueError as exc:
        raise SpecError(f"dataset {ref!r}: malformed parameters") from exc


def _int_param(params: Mapping[str, str], key: str, default: int,
               ref: str) -> int:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise SpecError(
            f"dataset {ref!r}: {key} must be an integer, got {raw!r}"
        ) from exc


def _float_param(params: Mapping[str, str], key: str, default: float,
                 ref: str) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise SpecError(
            f"dataset {ref!r}: {key} must be a number, got {raw!r}"
        ) from exc


def _size_param(params: Mapping[str, str], ref: str, default: int) -> int:
    n = _int_param(params, "n", default, ref)
    if n < 0:
        raise SpecError(f"dataset {ref!r}: n must be non-negative")
    if n > MAX_GENERATED_POINTS:
        raise SpecError(
            f"dataset {ref!r}: n={n} exceeds the generator cap of "
            f"{MAX_GENERATED_POINTS} (register larger data explicitly)"
        )
    return n


def _window_param(params: Mapping[str, str], ref: str) -> BoundingBox:
    raw = params.get("window")
    if raw is None:
        return BoundingBox(*_SYNTH_WINDOW)
    parts = raw.split(",")
    if len(parts) != 4:
        raise SpecError(
            f"dataset {ref!r}: window must be 'xmin,ymin,xmax,ymax'"
        )
    try:
        return BoundingBox(*(float(p) for p in parts))
    except ValueError as exc:
        raise SpecError(f"dataset {ref!r}: bad window {raw!r}") from exc


def _check_params(params: Mapping[str, str], allowed: set[str],
                  ref: str) -> None:
    extra = set(params) - allowed
    if extra:
        raise SpecError(
            f"dataset {ref!r}: unknown parameters {sorted(extra)} "
            f"(allowed: {sorted(allowed)})"
        )


class DatasetRegistry:
    """Resolves the dataset references inside query specs.

    ``register`` installs in-memory data under a name; the generator
    and file schemes work without registration.  One registry serves
    one :class:`~repro.api.session.Session` (and its ``serve`` loop).
    """

    #: Resolved scheme/file references kept memoized at once.  Bounded:
    #: a serve stream cycling distinct `seed=K` refs must not grow the
    #: process without limit (each resolution can be ~100s of MB).
    MAX_CACHED_RESOLUTIONS = 8

    def __init__(self, allow_files: bool = True) -> None:
        self._entries: dict[str, DatasetPayload] = {}
        #: LRU by insertion order (dict preserves it; hits re-insert).
        self._cache: dict[str, DatasetPayload] = {}
        #: ``file:`` reads filesystem paths named by the *request* —
        #: fine for local Python callers and the operator CLI, but a
        #: serve boundary facing untrusted clients must disable it.
        self.allow_files = allow_files
        #: Mutation fingerprint: bumps on every ``register``, so
        #: consumers keying derived state on registry contents (the
        #: session's spec-level result cache) are invalidated the
        #: moment a name can resolve differently.
        self.generation = 0
        #: Guards the memoized-resolution LRU — a threaded serve front
        #: resolves references from many workers at once.
        self._resolve_lock = threading.Lock()

    # -- registration ----------------------------------------------------
    def register(self, name: str, data: Any) -> "DatasetRegistry":
        """Install *data* under *name* (returns self for chaining).

        Accepts the inline payload types (:class:`PointData`,
        :class:`GeometryData`, :class:`TripData`), a
        :class:`~repro.data.taxi.TaxiTrips` table, an ``(xs, ys)``
        or ``(xs, ys, ids)`` tuple, an ``(n, 2)`` coordinate array, or
        a list of geometries.
        """
        if not isinstance(name, str) or not name:
            raise SpecError("dataset name must be a non-empty string")
        self._entries[name] = self._coerce(name, data)
        self.generation += 1
        return self

    def names(self) -> list[str]:
        return sorted(self._entries)

    def publish(self) -> "SharedDatasetPlane":
        """Export every resolved dataset into shared-memory segments.

        Returns a :class:`~repro.api.shm.SharedDatasetPlane` stamped
        with this registry's current :attr:`generation`.  Registered
        names and currently memoized scheme resolutions are both
        published, so worker processes attach the exact arrays the
        coordinator resolved instead of regenerating them; schemes
        resolved *after* publication are regenerated worker-side (they
        are deterministic per reference string, so results agree).

        The caller owns the plane: pair it with
        :meth:`~repro.api.shm.SharedDatasetPlane.release` (or
        ``close``) so the segments unlink.  Registering more data
        afterwards bumps the generation and obsoletes the plane —
        consumers (the session's process backend) republish on
        mismatch.
        """
        from repro.api.shm import SharedDatasetPlane

        plane = SharedDatasetPlane(self.generation)
        with self._resolve_lock:
            memoized = dict(self._cache)
        for name, payload in {**memoized, **self._entries}.items():
            plane.publish_dataset(name, payload)
        return plane

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @staticmethod
    def _coerce(name: str, data: Any) -> DatasetPayload:
        if isinstance(data, (PointData, GeometryData, TripData)):
            return data
        # TaxiTrips-shaped tables register as trips (duck-typed so the
        # registry does not import the data package at module load).
        if hasattr(data, "pickup_x") and hasattr(data, "dropoff_x"):
            return TripData(
                data.pickup_x, data.pickup_y,
                data.dropoff_x, data.dropoff_y,
                ids=getattr(data, "ids", None),
            )
        if isinstance(data, np.ndarray) and data.ndim == 2 and data.shape[1] == 2:
            return PointData(data[:, 0], data[:, 1])
        # Geometry sequences before the (xs, ys) tuple branch: a tuple
        # of 2-3 geometries must register as geometry data, not be
        # misread as coordinate columns.
        if isinstance(data, (list, tuple)) and data and all(
            isinstance(g, Geometry) for g in data
        ):
            return GeometryData(list(data))
        if isinstance(data, tuple) and len(data) in (2, 3):
            return PointData(*data)
        raise SpecError(
            f"cannot register dataset {name!r}: unsupported payload type "
            f"{type(data).__name__}"
        )

    # -- resolution ------------------------------------------------------
    def resolve(self, ref: Any) -> DatasetPayload:
        """Inline payloads pass through; strings resolve by name/scheme."""
        if isinstance(ref, (PointData, GeometryData, TripData)):
            return ref
        if not isinstance(ref, str):
            raise SpecError(
                f"dataset reference must be a string or inline payload, "
                f"got {type(ref).__name__}"
            )
        if ref in self._entries:
            return self._entries[ref]
        with self._resolve_lock:
            if ref in self._cache:
                payload = self._cache.pop(ref)  # re-insert: LRU freshness
                self._cache[ref] = payload
                return payload
        # Generators/file reads run outside the lock (they can take
        # seconds); two threads racing the same ref may both generate,
        # but the schemes are deterministic so either result is right.
        payload = self._resolve_scheme(ref)
        with self._resolve_lock:
            while len(self._cache) >= self.MAX_CACHED_RESOLUTIONS:
                self._cache.pop(next(iter(self._cache)))
            self._cache[ref] = payload
        return payload

    def resolve_points(self, ref: Any, family: str) -> PointData:
        payload = self.resolve(ref)
        if isinstance(payload, PointData):
            return payload
        kind = "trips" if isinstance(payload, TripData) else "geometries"
        raise SpecError(
            f"{family} spec: dataset {_describe(ref)} holds {kind}, "
            f"but a point dataset is required"
        )

    def resolve_geometries(self, ref: Any, family: str) -> GeometryData:
        payload = self.resolve(ref)
        if isinstance(payload, GeometryData):
            return payload
        kind = "trips" if isinstance(payload, TripData) else "points"
        raise SpecError(
            f"{family} spec: dataset {_describe(ref)} holds {kind}, "
            f"but a geometry dataset is required"
        )

    def resolve_trips(self, ref: Any, family: str) -> TripData:
        payload = self.resolve(ref)
        if isinstance(payload, TripData):
            return payload
        kind = ("points" if isinstance(payload, PointData) else "geometries")
        raise SpecError(
            f"{family} spec: dataset {_describe(ref)} holds {kind}, "
            f"but a trips dataset is required"
        )

    # -- built-in schemes ------------------------------------------------
    def _resolve_scheme(self, ref: str) -> DatasetPayload:
        base, _, query = ref.partition("?")
        params = _parse_params(query, ref)
        if base in ("synthetic:uniform", "synthetic:gaussian"):
            return self._resolve_synthetic(base, params, ref)
        if base in ("taxi", "taxi:trips", "taxi:pickups", "taxi:dropoffs"):
            return self._resolve_taxi(base, params, ref)
        if base.startswith("file:"):
            if not self.allow_files:
                raise SpecError(
                    f"dataset {ref!r}: file: references are disabled in "
                    "this registry (serve boundary); register the data "
                    "under a name instead"
                )
            _check_params(params, {"value"}, ref)
            return self._resolve_file(
                base[len("file:"):], ref, value_column=params.get("value")
            )
        registered = ", ".join(self.names()) or "none registered"
        raise SpecError(
            f"unknown dataset {ref!r} (registered: {registered}; schemes: "
            f"synthetic:uniform, synthetic:gaussian, taxi[:pickups|"
            f"dropoffs|trips], file:<path>)"
        )

    @staticmethod
    def _resolve_synthetic(base: str, params: Mapping[str, str],
                           ref: str) -> PointData:
        from repro.data.synthetic import gaussian_mixture_points, uniform_points

        window = _window_param(params, ref)
        n = _size_param(params, ref, default=10_000)
        seed = _int_param(params, "seed", 0, ref)
        if base.endswith("uniform"):
            _check_params(params, {"n", "seed", "window"}, ref)
            xs, ys = uniform_points(n, window, seed=seed)
        else:
            _check_params(
                params,
                {"n", "seed", "window", "clusters", "spread",
                 "uniform_fraction"},
                ref,
            )
            clusters = _int_param(params, "clusters", 8, ref)
            # Same boundary rationale as the n cap: per-cluster arrays
            # must not let one request OOM the process.
            if not 1 <= clusters <= 100_000:
                raise SpecError(
                    f"dataset {ref!r}: clusters must be in [1, 100000]"
                )
            xs, ys = gaussian_mixture_points(
                n, window,
                n_clusters=clusters,
                spread=_float_param(params, "spread", 0.08, ref),
                uniform_fraction=_float_param(
                    params, "uniform_fraction", 0.15, ref
                ),
                seed=seed,
            )
        return PointData(xs, ys)

    @staticmethod
    def _resolve_taxi(base: str, params: Mapping[str, str],
                      ref: str) -> DatasetPayload:
        from repro.data.taxi import generate_taxi_trips

        _check_params(params, {"n", "seed"}, ref)
        n = _size_param(params, ref, default=50_000)
        trips = generate_taxi_trips(n, seed=_int_param(params, "seed", 7, ref))
        variant = base.partition(":")[2] or "trips"
        if variant == "pickups":
            return PointData(trips.pickup_x, trips.pickup_y, ids=trips.ids,
                             values=trips.fare)
        if variant == "dropoffs":
            return PointData(trips.dropoff_x, trips.dropoff_y, ids=trips.ids,
                             values=trips.fare)
        return TripData(trips.pickup_x, trips.pickup_y,
                        trips.dropoff_x, trips.dropoff_y, ids=trips.ids)

    @staticmethod
    def _resolve_file(
        path: str, ref: str, value_column: str | None = None
    ) -> DatasetPayload:
        from repro.data.datasets import read_csv, read_geojson

        if not path:
            raise SpecError(f"dataset {ref!r}: empty file path")
        suffix = Path(path).suffix.lower()
        reader = {".csv": read_csv, ".geojson": read_geojson,
                  ".json": read_geojson}.get(suffix)
        if reader is None:
            raise SpecError(
                f"dataset {ref!r}: unsupported file type "
                f"(use .csv or .geojson)"
            )
        try:
            geometries, properties = reader(path)
        except OSError as exc:
            raise SpecError(
                f"dataset {ref!r}: cannot read {path}: {exc}"
            ) from exc
        except (ValueError, TypeError, KeyError) as exc:
            # Loader parse errors keep the reference context so a
            # multi-dataset spec names which ref is malformed.
            raise SpecError(f"dataset {ref!r}: {exc}") from exc
        if geometries and all(isinstance(g, Point) for g in geometries):
            values = None
            if value_column is not None:
                # `file:pts.csv?value=fare` — attach a numeric property
                # column so sum/avg/min/max aggregates have something
                # to aggregate.
                try:
                    values = np.array(
                        [float(p[value_column]) for p in properties]
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise SpecError(
                        f"dataset {ref!r}: cannot read numeric column "
                        f"{value_column!r}: {exc}"
                    ) from exc
            return PointData(
                np.array([g.x for g in geometries]),
                np.array([g.y for g in geometries]),
                values=values,
            )
        if value_column is not None:
            raise SpecError(
                f"dataset {ref!r}: value= applies to point files only"
            )
        return GeometryData(geometries)


def _describe(ref: Any) -> str:
    return repr(ref) if isinstance(ref, str) else "<inline>"
