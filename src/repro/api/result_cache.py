"""Spec-level result cache: a repeated query never re-executes.

The canvas cache (:mod:`repro.engine.cache`) memoizes the *inputs* of
canvas plans; this layer memoizes whole query *results*, keyed on what
a query semantically is — a canonical digest of the spec's versioned
``to_dict()`` form — plus the dataset state it ran against (the
registry's mutation fingerprint).  A dashboard re-issuing the same
JSON line answers from one dictionary lookup, skipping planning,
rasterization, and refinement entirely.

Keying rules:

- :func:`spec_digest` canonicalizes through the spec layer itself:
  dict inputs round-trip through :func:`~repro.api.specs.spec_from_dict`
  first, then the ``to_dict()`` form is serialized with sorted keys —
  so the digest is a fixpoint under ``from_dict(to_dict(spec))`` and
  insensitive to JSON key order, while any semantic difference
  (k, radius, window, constraints, dataset reference, resolution …)
  changes the canonical dict and therefore the digest.
- The session adds the registry's ``generation`` counter to the key:
  ``register()`` bumps it, so results computed against superseded data
  can never be served again (they age out of the LRU).
- Specs naming ``file:`` datasets are never cached — a file's content
  can change without the registry noticing.

Entries are the result objects themselves, shared and frozen (their
array payloads become read-only on insert), byte-bounded with LRU
eviction exactly like the canvas cache.  Thread-safe: a threaded serve
front consults one cache from every worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.specs import (
    DIGEST_POLICY_EXCLUDED,
    GeometryData,
    PointData,
    QuerySpec,
    TripData,
    spec_from_dict,
)

#: Default byte budget — results (id lists, group tables) are small
#: next to canvases, so 64 MiB holds thousands of warm queries.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def canonical_spec_dict(spec: QuerySpec | Mapping[str, Any]) -> dict[str, Any]:
    """The canonical dict form of *spec* (validated, key-complete).

    Dict inputs are validated and normalized through
    :func:`~repro.api.specs.spec_from_dict` so two dicts spelling the
    same query (key order, equivalent scalar types) canonicalize
    identically; spec objects just serialize.
    """
    if not isinstance(spec, QuerySpec):
        spec = spec_from_dict(spec)
    return spec.to_dict()


def _update_optional(h, arr) -> None:
    """Hash an optional array with a presence marker (``ids=None`` and
    ``ids=[]`` must not collide)."""
    if arr is None:
        h.update(b"|absent|")
    else:
        h.update(b"|present|")
        h.update(np.ascontiguousarray(arr).tobytes())


def _inline_payload_token(payload) -> str:
    """A ref-string stand-in for an inline dataset: its array digest.

    Digesting a large inline payload through ``to_dict`` would build
    million-element Python lists and a multi-MB JSON string on *every*
    lookup — including warm hits.  Hashing the raw array bytes instead
    keeps the digest O(bytes) with no Python-object blowup, and is
    stable across the JSON round trip (``tolist`` → ``from_dict`` is
    exact for float64).
    """
    h = hashlib.blake2b(digest_size=16)
    if isinstance(payload, PointData):
        h.update(b"points")
        h.update(np.ascontiguousarray(payload.xs).tobytes())
        h.update(np.ascontiguousarray(payload.ys).tobytes())
        _update_optional(h, payload.ids)
        _update_optional(h, payload.values)
    elif isinstance(payload, TripData):
        h.update(b"trips")
        for arr in (payload.origin_xs, payload.origin_ys,
                    payload.dest_xs, payload.dest_ys):
            h.update(np.ascontiguousarray(arr).tobytes())
        _update_optional(h, payload.ids)
    else:
        assert isinstance(payload, GeometryData)
        from repro.engine.cache import geometries_digest

        h.update(b"geometries")
        h.update(geometries_digest(payload.geometries).encode())
        _update_optional(
            h,
            np.asarray(payload.ids, dtype=np.int64)
            if payload.ids is not None else None,
        )
    return "inline-digest:" + h.hexdigest()


def _with_inline_tokens(spec: QuerySpec) -> QuerySpec:
    """Replace inline dataset payloads with their digest tokens.

    The token is a plain (non-resolvable) reference string, so the
    rebuilt spec serializes in O(1) regardless of payload size while
    staying a valid spec of the same family.
    """
    changed: dict[str, str] = {}
    for attr in ("dataset", "left", "right", "polygons"):
        value = getattr(spec, attr, None)
        if isinstance(value, (PointData, GeometryData, TripData)):
            changed[attr] = _inline_payload_token(value)
    return dataclasses.replace(spec, **changed) if changed else spec


def spec_digest(spec: QuerySpec | Mapping[str, Any]) -> str:
    """Canonical content digest of a query spec.

    A fixpoint under ``from_dict(to_dict(spec))`` and insensitive to
    dict key order; distinct for specs differing in any semantic field.
    Inline dataset payloads are hashed from their raw array bytes (see
    :func:`_inline_payload_token`), so the digest never materializes a
    large payload as Python lists.

    Fields in :data:`repro.api.specs.DIGEST_POLICY_EXCLUDED` (today:
    ``deadline_ms``) are *excluded*: a deadline bounds how long a query
    may run, not what it computes, so the same query with different
    budgets must hit the same cached result.
    """
    if not isinstance(spec, QuerySpec):
        spec = spec_from_dict(spec)
    payload = _with_inline_tokens(spec).to_dict()
    for field in DIGEST_POLICY_EXCLUDED:
        payload.pop(field, None)
    canonical = json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        # NaN coordinates are tolerated by the legacy query contract;
        # allow them in the digest serialization too (this JSON never
        # goes on the wire).
        allow_nan=True,
    )
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _array_bytes(*arrays) -> int:
    return sum(getattr(arr, "nbytes", 0) for arr in arrays if arr is not None)


def estimate_result_bytes(result: Any) -> int:
    """Approximate array payload of one query result.

    Covers the four result shapes the session produces: selection
    results (ids + sample set), aggregate tables, Voronoi canvases,
    and join pair lists.  Unknown shapes count 0 bytes — they still
    occupy an entry slot.
    """
    from repro.core.canvas import Canvas
    from repro.queries.common import AggregateResult, SelectionResult

    if isinstance(result, SelectionResult):
        total = _array_bytes(result.ids)
        samples = result.samples
        if samples is not None:
            total += _array_bytes(
                samples.xs, samples.ys, samples.keys, samples.data,
                samples.valid, samples.boundary,
            )
        return total
    if isinstance(result, AggregateResult):
        return _array_bytes(result.groups, result.values)
    if isinstance(result, Canvas):
        return _array_bytes(
            result.texture.data, result.texture.valid,
            getattr(result, "boundary", None),
        )
    if isinstance(result, list):  # join pair lists
        return 16 * len(result)
    return 0


def _freeze_array(arr) -> None:
    if hasattr(arr, "setflags"):
        arr.setflags(write=False)


def freeze_result(result: Any) -> None:
    """Make a cached result's array payload read-only, in place.

    Cache entries are shared across every future hit; a consumer
    writing into one would corrupt them all.  Like the canvas cache,
    flipping numpy's writeable flag turns the latent hazard into an
    immediate ``ValueError`` at the offending write.  Join pair lists
    (plain Python) cannot be frozen — the cache returns a shallow copy
    of those per hit instead.
    """
    from repro.core.canvas import Canvas
    from repro.queries.common import AggregateResult, SelectionResult

    if isinstance(result, SelectionResult):
        _freeze_array(result.ids)
        samples = result.samples
        if samples is not None:
            for arr in (samples.xs, samples.ys, samples.keys,
                        samples.data, samples.valid, samples.boundary):
                _freeze_array(arr)
    elif isinstance(result, AggregateResult):
        _freeze_array(result.groups)
        _freeze_array(result.values)
    elif isinstance(result, Canvas):
        _freeze_array(result.texture.data)
        _freeze_array(result.texture.valid)
        _freeze_array(getattr(result, "boundary", None))


@dataclass(frozen=True)
class ResultCacheStats:
    """Snapshot of result-cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    bytes_used: int
    max_bytes: int
    #: Results returned to the caller but not parked in the store
    #: because the MemoryGovernor refused admission under pressure.
    admission_skips: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "admission_skips": self.admission_skips,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Byte-bounded, thread-safe LRU of finished query results.

    Keys are whatever hashable tuple the caller builds (the session
    uses ``(spec digest, registry generation, session defaults)``).
    Values freeze on insert and are shared on every hit — except list
    results (join pairs), which are shallow-copied per hit because
    Python lists cannot be frozen.
    """

    def __init__(
        self,
        capacity: int = 1024,
        max_bytes: int = DEFAULT_MAX_BYTES,
        sizer: Callable[[Any], int] = estimate_result_bytes,
    ) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be at least 1")
        if max_bytes < 1:
            raise ValueError("result cache byte budget must be positive")
        self.capacity = capacity
        self.max_bytes = max_bytes
        #: Optional MemoryGovernor (set via ``governor.attach``).
        #: Always consulted OUTSIDE ``self._lock`` — its usage scan
        #: takes each component's lock.
        self.governor = None
        self._sizer = sizer
        self._store: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._admission_skips = 0

    @property
    def bytes_used(self) -> int:
        """Current byte footprint of the store (governor's usage hook)."""
        with self._lock:
            return self._bytes

    def evict_lru(self) -> int:
        """Evict the least-recently-used result; bytes freed (0 if empty).

        The MemoryGovernor's shrink hook — may empty the cache
        entirely (results are cheap to recompute next to rasters,
        which is why the governor shrinks this cache first).
        """
        with self._lock:
            if not self._store:
                return 0
            _, (_, nbytes) = self._store.popitem(last=False)
            self._bytes -= nbytes
            self._evictions += 1
            return nbytes

    def get(self, key: tuple):
        """``(hit, value)`` — the flag disambiguates a cached ``None``."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self._misses += 1
                return False, None
            self._hits += 1
            self._store.move_to_end(key)
            value = entry[0]
        if isinstance(value, list):
            value = list(value)
        return True, value

    def put(self, key: tuple, value: Any) -> None:
        if isinstance(value, list):
            # Lists cannot be frozen, so the cache must own a private
            # copy: storing the caller's list would let the miss-path
            # caller mutate their result and silently corrupt every
            # later hit (hits are copied on the way out for the same
            # reason).
            value = list(value)
        freeze_result(value)
        nbytes = self._sizer(value)
        # Governor admission is decided outside self._lock: its usage
        # scan takes every attached component's lock.
        governor = self.governor
        if governor is not None and not governor.admit(nbytes):
            with self._lock:
                self._admission_skips += 1
            return
        with self._lock:
            if key in self._store:
                self._bytes -= self._store[key][1]
            self._store[key] = (value, nbytes)
            self._store.move_to_end(key)
            self._bytes += nbytes
            while len(self._store) > 1 and (
                len(self._store) > self.capacity
                or self._bytes > self.max_bytes
            ):
                _, (_, evicted) = self._store.popitem(last=False)
                self._bytes -= evicted
                self._evictions += 1
        if governor is not None:
            governor.rebalance()

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._store),
                capacity=self.capacity,
                bytes_used=self._bytes,
                max_bytes=self.max_bytes,
                admission_skips=self._admission_skips,
            )

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._admission_skips = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._store
