"""``python -m repro serve`` — the JSON-lines query service loop.

The first traffic-facing entry point of the engine: specs come in one
JSON object per line on stdin, result summaries plus execution reports
go out one JSON object per line on stdout.  The protocol:

- ``{"spec": "<family>", ...}`` — one query spec
  (:func:`repro.api.specs.spec_from_dict` form) → ``{"ok": true,
  "result": {...}, "report": {...}}``;
- ``{"batch": [<spec>, ...]}`` — a spec list planned together through
  :meth:`~repro.api.session.Session.run_batch` → ``{"ok": true,
  "results": [...], "report": {...}}``;
- malformed lines / failing specs → ``{"ok": false, "code": "...",
  "error": "..."}`` (the loop never dies on a bad request); ``code``
  is one of :data:`repro.resilience.ERROR_CODES` — a stable,
  machine-readable taxonomy (``bad_request``, ``deadline``,
  ``cancelled``, ``shed``, ``too_costly``, ``memory``, ``internal``)
  so clients can branch without parsing message text;
- blank lines are ignored; EOF ends the loop.

With an :class:`~repro.resilience.AdmissionController` the loop sheds
load instead of queueing without bound: a request arriving while the
in-flight backlog is at ``max_pending`` (or while the memory governor
reports shed-level pressure) is answered in-band with ``{"ok": false,
"code": "shed", "retry_after_ms": ...}`` — still in request order —
and absurdly priced requests are rejected (``code: "too_costly"``)
straight from the cost model's pre-estimate, before any planning.

With ``workers > 1`` (``python -m repro serve --workers N``) requests
execute concurrently on a thread pool against one shared session —
the engine's canvas cache single-flights concurrent misses, report
attribution is per-thread, and an optional spec-digest result cache
(``--result-cache-mb``) answers repeated specs without planning.
**Ordering guarantee:** responses are written in request order, one
per non-blank input line, whatever order the workers finish in — line
*k* of the output always answers non-blank line *k* of the input.  A
bounded in-flight window (a few times the worker count) provides
backpressure so an arbitrarily long input stream never piles up in
memory.

Everything here is plain data: :func:`result_summary` is the single
place a query result becomes JSON, shared by ``serve``, the ``query``
CLI subcommand, and the benchmark harness.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from queue import Empty, Queue
from typing import Any, IO, Iterable

import numpy as np

from repro.api.session import BatchRun, Session
from repro.api.specs import SpecError
from repro.engine.process_pool import WorkerLost
from repro.resilience import AdmissionController, DeadlineExceeded, MemoryGovernor
from repro.testing.faults import maybe_fire

#: Largest id/pair list a summary inlines before truncating.
MAX_INLINE_RESULTS = 10_000

#: Largest spec list one ``{"batch": [...]}`` request may carry — the
#: same boundary rationale as the resolution/generator caps: one line
#: must not pin the single-threaded loop indefinitely.
MAX_BATCH_REQUEST = 256


def result_summary(result: Any) -> dict[str, Any]:
    """One query result as a JSON-ready summary dict.

    Dispatches on result shape: selection results carry ids and
    filtering counters, aggregations their group table, Voronoi runs a
    canvas digest, joins their pair list.  Large id/pair lists truncate
    at :data:`MAX_INLINE_RESULTS` (``truncated: true`` marks it).
    """
    from repro.core.canvas import Canvas
    from repro.queries.common import AggregateResult, SelectionResult

    if isinstance(result, SelectionResult):
        return {
            "type": "selection",
            "matched": len(result.ids),
            # Slice before tolist: a million-row match must not build a
            # million Python ints just to keep the first page.
            "ids": result.ids[:MAX_INLINE_RESULTS].tolist(),
            "truncated": len(result.ids) > MAX_INLINE_RESULTS,
            "n_candidates": int(result.n_candidates),
            "n_exact_tests": int(result.n_exact_tests),
            "plan": result.plan,
        }
    if isinstance(result, AggregateResult):
        return {
            "type": "aggregate",
            "aggregate": result.aggregate,
            "groups": result.groups.tolist(),
            # min/max over an empty group is ±inf, which is not JSON —
            # strict clients (JSON.parse, jq) must still parse the line.
            "values": [
                value if np.isfinite(value) else None
                for value in result.values.tolist()
            ],
        }
    if isinstance(result, Canvas):
        return {
            "type": "canvas",
            "height": result.height,
            "width": result.width,
            "nonnull_pixels": int(result.texture.nonnull_count()),
        }
    if isinstance(result, list):  # join pair lists
        truncated = len(result) > MAX_INLINE_RESULTS
        return {
            "type": "pairs",
            "matched": len(result),
            "pairs": [list(pair) for pair in result[:MAX_INLINE_RESULTS]],
            "truncated": truncated,
        }
    raise TypeError(f"no summary for result type {type(result).__name__}")


def report_summary(report: Any) -> dict[str, Any]:
    """An :class:`ExecutionReport` (or batch report) as a JSON dict."""
    if hasattr(report, "plans"):  # BatchReport
        return {
            "n_queries": report.n_queries,
            "plans": [list(pair) for pair in report.plans],
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "shared_constraint_sets": report.shared_constraint_sets,
            "planning_ms": report.planning_s * 1e3,
            "execution_ms": report.execution_s * 1e3,
        }
    out = {
        "plan": report.plan,
        "estimated_cost": report.estimated_cost,
        "forced": report.forced,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "planning_ms": report.planning_s * 1e3,
        "execution_ms": report.execution_s * 1e3,
        "buffers": {
            "full_copies": report.copies,
            "allocations": report.allocations,
            "pool_reuses": report.pool_reuses,
            "inplace_ops": report.inplace_ops,
        },
    }
    # getattr-safe: summaries also render synthetic reports (result
    # cache hits, empty inputs) that predate the tiled fields.
    if getattr(report, "tiles", 0) > 0:
        out["tiles"] = {
            "lattice": report.tiles,
            "hits": report.tile_hits,
            "misses": report.tile_misses,
        }
    return out


def handle_request(
    request: Any, session: Session, max_batch: int | None = None
) -> dict[str, Any]:
    """Answer one decoded request object (spec or batch).

    *max_batch* bounds ``{"batch": [...]}`` lengths; the serve loop
    passes :data:`MAX_BATCH_REQUEST`, while trusted callers (the
    ``query`` CLI) leave it unbounded.
    """
    if not isinstance(request, dict):
        return {"ok": False, "code": "bad_request",
                "error": f"request must be an object, got "
                         f"{type(request).__name__}"}
    try:
        if "batch" in request:
            extra = set(request) - {"batch"}
            if extra:
                raise SpecError(
                    f"batch request: unknown keys {sorted(extra)}"
                )
            if not isinstance(request["batch"], list):
                raise SpecError("batch request: 'batch' must be a list")
            if max_batch is not None and len(request["batch"]) > max_batch:
                raise SpecError(
                    f"batch request: {len(request['batch'])} specs exceed "
                    f"the {max_batch}-member cap per request"
                )
            run: BatchRun = session.run_batch(request["batch"])
            return {
                "ok": True,
                "results": [result_summary(r) for r in run.results],
                "report": report_summary(run.report),
            }
        session.take_reports()  # drop anything older than this request
        result = session.run(request)
        reports, produced = session.take_reports()
        payload: dict[str, Any] = {
            "ok": True,
            "result": result_summary(result),
        }
        if reports:
            payload["report"] = report_summary(reports[-1])
            if produced > 1:
                # True engine-execution count, not the bounded history's
                # length (a 40-member join on a 32-entry deque).
                payload["report"]["sub_reports"] = produced
        else:
            # The protocol promises a report on every success; a spec
            # that resolved empty without planning gets the zero form —
            # built through report_summary so the schema cannot drift
            # from normal responses.
            from repro.engine import ExecutionReport

            payload["report"] = report_summary(ExecutionReport(
                query="empty", plan="empty-input", estimated_cost=0.0,
                candidates=(), forced="resolved without planning",
                cache_hits=0, cache_misses=0, planning_s=0.0,
                execution_s=0.0, plan_tree=None,
            ))
        return payload
    except DeadlineExceeded as exc:
        # exc.code distinguishes a blown budget ("deadline") from an
        # explicit cancel ("cancelled"); both aborted cooperatively at
        # a checkpoint, so the session's caches hold only whole frozen
        # entries and the loop answers in-band.
        return {"ok": False, "code": exc.code, "error": str(exc)}
    except WorkerLost as exc:
        # A process-backend worker died mid-request and its respawned
        # replacement died too.  The request never executed (dispatch
        # is all-or-nothing), so the client may simply retry.
        return {"ok": False, "code": exc.code, "error": str(exc)}
    except (SpecError, ValueError, TypeError) as exc:
        return {"ok": False, "code": "bad_request", "error": str(exc)}
    except MemoryError as exc:
        return {"ok": False, "code": "memory",
                "error": f"MemoryError: {exc}"}
    except Exception as exc:  # noqa: BLE001 — the loop must never die
        # Anything else a request provokes (an OSError from a file:
        # dataset, a latent engine bug) is that request's problem, not
        # the service's: answer in-band.
        return {
            "ok": False,
            "code": "internal",
            "error": f"{type(exc).__name__}: {exc}",
        }


def default_serve_session(
    result_cache_max_bytes: int | None = None,
    *,
    deadline_ms: float | None = None,
    memory_budget_bytes: int | None = None,
    process_workers: int | None = None,
) -> Session:
    """A session hardened for the traffic boundary: requests name their
    data via registered names or generator schemes, never ``file:``
    paths on the server, and join fan-out is capped so one request
    cannot pin the loop with millions of sequential selections.
    *result_cache_max_bytes* opts the session into the spec-digest
    result cache (see :mod:`repro.api.result_cache`); *deadline_ms*
    sets the default per-request execution budget; a
    *memory_budget_bytes* places the session's caches and buffer pool
    under one :class:`~repro.resilience.MemoryGovernor` budget;
    *process_workers* routes execution to a worker-process fleet over
    a shared-memory dataset plane (``Session(process_workers=…)``) —
    close the session when the serve loop ends."""
    from repro.api.registry import DatasetRegistry

    governor = (
        MemoryGovernor(memory_budget_bytes)
        if memory_budget_bytes is not None
        else None
    )
    return Session(DatasetRegistry(allow_files=False),
                   max_join_members=1_000,
                   result_cache_max_bytes=result_cache_max_bytes,
                   deadline_ms=deadline_ms,
                   memory_governor=governor,
                   process_workers=process_workers)


def _answer_line(
    line: str,
    session: Session,
    admission: AdmissionController | None = None,
) -> dict[str, Any]:
    """Decode and answer one non-blank request line, errors in-band."""
    try:
        request = json.loads(line)
    except Exception as exc:  # noqa: BLE001 — the loop must never die
        # Not just JSONDecodeError: a hostile line can provoke
        # RecursionError ('['*3000) or MemoryError from the parser.
        return {"ok": False, "code": "bad_request",
                "error": f"bad JSON: {exc}"}
    try:
        maybe_fire("serve.request")
    except MemoryError as exc:
        return {"ok": False, "code": "memory",
                "error": f"MemoryError: {exc}"}
    except Exception as exc:  # noqa: BLE001 — injected faults answer in-band
        return {"ok": False, "code": "internal",
                "error": f"{type(exc).__name__}: {exc}"}
    if admission is not None:
        rejection = admission.cost_precheck(request)
        if rejection is not None:
            return rejection
    return handle_request(request, session, max_batch=MAX_BATCH_REQUEST)


def _render_response(response: dict[str, Any]) -> str:
    try:
        # allow_nan=False: emitting RFC-invalid Infinity/NaN would
        # break strict JSON-lines clients mid-stream; degrade to an
        # in-band error instead.
        return json.dumps(response, allow_nan=False)
    except ValueError:
        # Degraded responses are still errors a client must classify:
        # carry the stable taxonomy code like every other error line.
        return json.dumps(
            {"ok": False, "code": "internal",
             "error": "response contained non-finite numbers"}
        )


class _Ready:
    """A pre-completed future stand-in: a shed response enters the
    pending deque exactly like a submitted request, so the in-order
    emission loop needs no special case."""

    __slots__ = ("_value",)

    def __init__(self, value: dict[str, Any]) -> None:
        self._value = value

    def result(self) -> dict[str, Any]:
        return self._value


def _validated_window(window: int | None, workers: int) -> int:
    if window is None:
        return 4 * workers
    if isinstance(window, bool) or not isinstance(window, int):
        raise ValueError(f"window must be an integer, got {window!r}")
    if window < workers:
        # A window smaller than the pool guarantees idle workers: the
        # in-flight cap would starve the very threads it feeds.
        raise ValueError(
            f"window must be at least workers ({workers}), got {window}"
        )
    return window


def serve_lines(
    lines: Iterable[str],
    session: Session | None = None,
    workers: int = 1,
    *,
    window: int | None = None,
    admission: AdmissionController | None = None,
) -> Iterable[str]:
    """The pure core of the serve loop: JSON lines in, JSON lines out.

    Without an explicit *session*, a file-scheme-disabled one is built
    (see :func:`default_serve_session`) — pass your own session to
    trade that hardening for local convenience.

    With *workers* > 1, requests are answered concurrently on a thread
    pool sharing that one session.  Responses still come back in
    request order (completed-out-of-order answers wait for their
    turn), each one is emitted as soon as it reaches the head of the
    line — an interactive client that sends one request and waits for
    its answer before the next is never deadlocked on more input — and
    a bounded in-flight *window* (default ``4 * workers``; must be at
    least *workers*) keeps memory flat on endless streams.

    An *admission* controller turns overload into in-band ``shed``
    responses instead of unbounded queueing: a line arriving while
    ``admission.max_pending`` requests are already in flight (or while
    the memory governor says shed) is answered immediately with
    ``code: "shed"`` — in request order, like every other response —
    and its cost pre-estimate can reject ``too_costly`` requests
    before planning.  Closing the generator early (client gone) shuts
    the worker pool down without waiting, cancelling requests nobody
    will read.
    """
    session = session if session is not None else default_serve_session()
    if workers < 1:
        raise ValueError("workers must be at least 1")
    window = _validated_window(window, workers)
    if workers == 1:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if admission is not None and admission.overloaded(0):
                # Sequential serve never has a backlog; this is the
                # memory governor's shed tier speaking.
                yield _render_response(admission.shed_response())
                continue
            yield _render_response(_answer_line(line, session, admission))
        return

    # Reading input and draining responses must not block each other:
    # a request/response client sends line k+1 only after reading
    # answer k, so blocking on `next(lines)` while answer k sits
    # completed in the queue would deadlock both sides.  A reader
    # thread feeds a bounded queue (its maxsize is the backpressure)
    # and the generator blocks only on the head-of-line *future*,
    # which is exactly the response it must emit next.
    feed: Queue = Queue(maxsize=window)
    _EOF = object()

    def reader() -> None:
        try:
            for line in lines:
                line = line.strip()
                if line:
                    feed.put(line)
        finally:
            feed.put(_EOF)

    def admit(item: str) -> Any:
        if admission is not None and admission.overloaded(
            sum(1 for f in pending if not isinstance(f, _Ready))
        ):
            return _Ready(admission.shed_response())
        return pool.submit(_answer_line, item, session, admission)

    pending: deque = deque()
    pool = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-serve"
    )
    graceful = False
    try:
        # Daemon: an abandoned generator must not pin the process on a
        # blocked stdin read.
        threading.Thread(target=reader, daemon=True,
                         name="repro-serve-reader").start()
        eof = False
        while not eof or pending:
            # Admit every line already waiting (up to the window)
            # without blocking, so the pool stays busy...
            while not eof and len(pending) < window:
                try:
                    item = feed.get_nowait()
                except Empty:
                    break
                if item is _EOF:
                    eof = True
                else:
                    pending.append(admit(item))
            if pending:
                # ...then block on the head-of-line answer only: it is
                # emitted the moment it completes, input or no input.
                yield _render_response(pending.popleft().result())
            elif not eof:
                item = feed.get()
                if item is _EOF:
                    eof = True
                else:
                    pending.append(admit(item))
        graceful = True
    finally:
        if graceful:
            pool.shutdown(wait=True)
        else:
            # The consumer abandoned the generator mid-stream
            # (GeneratorExit lands here from the yield): nobody will
            # read the in-flight answers, so don't compute them — and
            # never leak the pool's threads.
            pool.shutdown(wait=False, cancel_futures=True)


def serve(
    stream_in: IO[str],
    stream_out: IO[str],
    session: Session | None = None,
    workers: int = 1,
    *,
    window: int | None = None,
    admission: AdmissionController | None = None,
    process_workers: int | None = None,
) -> int:
    """Run the loop over text streams (flushing per line, for pipes).

    With *process_workers*, a session-private process backend executes
    requests in worker processes (see :class:`Session`); the backend —
    and its shared-memory segments — are torn down when the loop ends,
    even if the input stream is abandoned mid-serve.
    """
    owned = None
    if session is None:
        session = default_serve_session(process_workers=process_workers)
        owned = session
    elif process_workers is not None:
        raise ValueError(
            "process_workers configures the default session; pass a "
            "Session built with process_workers=... instead"
        )
    count = 0
    try:
        for response in serve_lines(stream_in, session, workers=workers,
                                    window=window, admission=admission):
            stream_out.write(response + "\n")
            stream_out.flush()
            count += 1
    finally:
        if owned is not None:
            owned.close()
    return count
