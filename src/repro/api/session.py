"""The Session facade: specs in, engine-executed results out.

A :class:`Session` owns (or borrows) a :class:`~repro.engine.executor.
QueryEngine`, a :class:`~repro.api.registry.DatasetRegistry`, and the
defaults every spec inherits (resolution, device).  It is the single
entry point the service layer talks through:

- :meth:`Session.run` — execute one spec (or its dict form) and return
  the same result object the legacy frontend for that family returns
  (``SelectionResult``, ``AggregateResult``, ``Canvas``, pair lists);
- :meth:`Session.run_batch` — plan a list of specs together through
  :meth:`~repro.engine.executor.QueryEngine.execute_batch` (shared
  constraint canvases rasterize once across the batch);
- :meth:`Session.explain` — run a spec and return the engine's
  plan/cost/cache report for it.

The legacy functions in :mod:`repro.queries` are thin sugar over this
layer: each one builds the equivalent spec and hands it to the
process-default session (:func:`default_session`), which routes through
the process-default engine — so ``use_engine()`` contexts keep
steering them, and spec-driven and direct calls are bit-identical by
construction.

The *normalization* rules each family applied before PR 4 (window
inference, id defaulting, the half-space clip) live here now, keyed by
family — a spec with ``window=None`` resolves its window exactly the
way the legacy frontend did.
"""

from __future__ import annotations

import threading
import time

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import (
    GeometryCollection,
    LineSegment,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas
from repro.engine import BatchQuery, BatchReport, ExecutionReport, QueryEngine, get_engine
from repro.engine.executor import BATCH_KINDS
from repro.api.registry import DatasetRegistry
from repro.api.result_cache import ResultCache, spec_digest
from repro.resilience import Deadline, MemoryGovernor, check_deadline
from repro.api.specs import (
    AggregateSpec,
    GeometrySpec,
    JoinSpec,
    KnnSpec,
    OdSpec,
    QuerySpec,
    SelectSpec,
    SpecError,
    VoronoiSpec,
    spec_from_dict,
)


def _common():
    """The query-layer result containers (imported lazily: the query
    frontends import this module at load time)."""
    from repro.queries import common

    return common


def _wrap_selection(outcome):
    common = _common()
    return common.SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )


def _wrap_aggregate(outcome):
    common = _common()
    return common.AggregateResult(
        groups=outcome.groups, values=outcome.values,
        aggregate=outcome.aggregate,
    )


def _empty_selection_result():
    common = _common()
    return common.SelectionResult(
        ids=np.empty(0, dtype=np.int64), n_candidates=0, n_exact_tests=0
    )


@dataclass
class _Described:
    """One spec resolved to a concrete engine call (or a known-empty
    result that needs no engine at all)."""

    kind: str = ""
    kwargs: dict[str, Any] = field(default_factory=dict)
    wrap: Callable[[Any], Any] = lambda outcome: outcome
    empty_result: Any = None


@dataclass
class BatchRun:
    """What :meth:`Session.run_batch` returns: per-spec results (in
    submission order) plus the engine's batch-sharing report."""

    results: list[Any]
    report: BatchReport




class Session:
    """Engine + registry + defaults behind the declarative query API.

    Parameters
    ----------
    registry:
        Resolves string dataset references inside specs.  A fresh
        registry (generator/file schemes only) when omitted.
    resolution:
        Default canvas resolution for specs that leave theirs unset
        (family defaults apply when this is also ``None``).
    device:
        Default execution device.
    tiling:
        Default K×K tile-lattice execution for specs that leave their
        ``tiling`` unset.  ``None`` (the default) keeps whole-frame
        execution; a spec's own ``tiling`` always wins over this.
    engine:
        An explicit engine to run on.  When omitted *and* no engine
        knobs are given, the session routes through the process-default
        engine (so it shares its cache with the legacy functions and
        honours ``use_engine()``); passing ``cost_model`` /
        ``cache_capacity`` / ``cache_max_bytes`` / ``max_workers``
        builds a private one.
    process_workers:
        Worker-*process* count for the process-parallel backend.
        ``None`` (the default) executes in-process.  With N ≥ 1 the
        session lazily publishes its registry's datasets into shared
        memory, spawns N persistent workers that attach zero-copy, and
        ships spec/batch execution to them — planning, result caching,
        and report bookkeeping stay on the coordinator, so outcomes,
        plan choices, and cache hit/miss splits are bit-identical to
        an in-process session.  Runtime-knob runs (``force_plan``,
        ``constraint_canvas``) always execute in-process.  Call
        :meth:`close` (or use the session as a context manager) to
        release the workers and shared segments deterministically.
    result_cache_max_bytes:
        Byte budget for the spec-level result cache.  ``None`` (the
        default) disables it: every ``run`` executes.  With a budget,
        a repeated spec (canonical ``to_dict`` digest + registry
        generation) answers from the cache without planning — the hit
        is recorded as a ``result-cache-hit`` report, visible in
        ``explain``.  Cached results are shared and frozen; ``file:``
        dataset references and runtime-knob runs (``force_plan``,
        ``constraint_canvas``) always bypass the cache.
    deadline_ms:
        Default per-request execution budget in milliseconds.  A spec's
        own ``deadline_ms`` always wins; ``None`` (the default) means
        unbounded.  A run that exhausts its budget aborts at the next
        engine checkpoint with :class:`~repro.resilience.
        DeadlineExceeded` — cooperative, so the abort lands within one
        checkpoint (one tile, one polygon sweep, one probe) of the
        budget, never mid-kernel.
    memory_governor:
        A :class:`~repro.resilience.MemoryGovernor` to place this
        session's caches and buffer pool under one shared byte budget.
        The governor is attached to the session's engine at
        construction time (canvas cache + buffer pool) and to the
        result cache when one is enabled; under pressure it shrinks
        cache admission, forces tiled plans (see :meth:`_tiling`), and
        tells the serve layer to shed.
    """

    def __init__(
        self,
        registry: DatasetRegistry | None = None,
        *,
        resolution: int | None = None,
        device: Device = DEFAULT_DEVICE,
        tiling: int | None = None,
        engine: QueryEngine | None = None,
        cost_model=None,
        cache_capacity: int | None = None,
        cache_max_bytes: int | None = None,
        max_join_members: int | None = None,
        max_workers: int | None = None,
        process_workers: int | None = None,
        result_cache_max_bytes: int | None = None,
        result_cache_capacity: int = 1024,
        deadline_ms: float | None = None,
        memory_governor: MemoryGovernor | None = None,
    ) -> None:
        self.registry = registry if registry is not None else DatasetRegistry()
        self.resolution = resolution
        self.device = device
        from repro.api.specs import _deadline_field, _tiling_field

        self.tiling = _tiling_field(tiling, "session")
        self.deadline_ms = _deadline_field(deadline_ms, "session")
        self.memory_governor = memory_governor
        #: Largest join fan-out (right-side member count) this session
        #: will execute.  None = unbounded, matching the legacy join
        #: functions; the serve boundary sets a cap so one request
        #: cannot pin the loop with millions of sequential selections.
        self.max_join_members = max_join_members
        if process_workers is not None:
            if process_workers < 1:
                raise ValueError("process_workers must be at least 1")
            if engine is not None:
                raise ValueError(
                    "process_workers builds a session-private engine "
                    "and attaches a process backend to it; an explicit "
                    "engine cannot be combined with it"
                )
        #: Worker-process count for the process-parallel backend
        #: (None = in-process execution, the default).  The backend
        #: itself is built lazily on first execution — publishing the
        #: registry's datasets into shared memory and spawning the
        #: fleet — and rebuilt when the registry generation moves.
        self.process_workers = process_workers
        self._process_backend = None
        engine_knobs = (
            cost_model is not None
            or cache_capacity is not None
            or cache_max_bytes is not None
            or max_workers is not None
        )
        if engine is not None and engine_knobs:
            raise ValueError(
                "pass either an explicit engine or engine knobs "
                "(cost_model/cache_capacity/cache_max_bytes/max_workers), "
                "not both — the knobs would be silently ignored"
            )
        if engine is None and engine_knobs:
            kwargs: dict[str, Any] = {}
            if cost_model is not None:
                kwargs["cost_model"] = cost_model
            if cache_capacity is not None:
                kwargs["cache_capacity"] = cache_capacity
            if cache_max_bytes is not None:
                kwargs["cache_max_bytes"] = cache_max_bytes
            if max_workers is not None:
                kwargs["max_workers"] = max_workers
            engine = QueryEngine(**kwargs)
        if process_workers is not None and engine is None:
            # The backend attaches to the session's engine; sharing the
            # process-default engine would leak the attachment to
            # unrelated callers, so process sessions always own one.
            engine = QueryEngine()
        self._engine = engine
        #: Spec-digest result cache (None = disabled, the default).
        self.result_cache: ResultCache | None = (
            ResultCache(
                capacity=result_cache_capacity,
                max_bytes=result_cache_max_bytes,
            )
            if result_cache_max_bytes is not None
            else None
        )
        if memory_governor is not None:
            # Place every byte-holding component this session routes
            # through under the one shared budget.  Attached once, at
            # construction: a later use_engine() switch deliberately
            # does not re-home the governor.
            engine_now = self.engine
            memory_governor.attach(
                canvas_cache=engine_now.cache,
                buffer_pool=engine_now.buffer_pool,
                result_cache=self.result_cache,
            )
        #: The registry the result cache's entries were computed
        #: against.  Holding the reference (not an id(), which a
        #: garbage collector could recycle) lets run() detect a
        #: swapped-in replacement registry and drop every entry —
        #: same-generation, different-data registries must never
        #: serve each other's results.
        self._result_cache_registry = self.registry
        #: Per-thread (engine, monotonic count) marker into the
        #: engine's *thread-local* report stream (see take_reports).
        #: Unset until a thread first touches the engine, so reports
        #: predating the session are never attributed to it; keyed on
        #: the engine so a use_engine() switch re-anchors instead of
        #: mixing tallies.  Thread-local because a threaded serve front
        #: shares one session across workers — each thread's requests
        #: must see their own reports only.
        self._report_markers = threading.local()

    @property
    def engine(self) -> QueryEngine:
        """The engine specs execute on (process default unless owned)."""
        return self._engine if self._engine is not None else get_engine()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        spec: QuerySpec | Mapping[str, Any],
        *,
        device: Device | None = None,
        constraint_canvas: Canvas | None = None,
        force_plan: str | None = None,
    ) -> Any:
        """Execute one spec and return its family's result object.

        *constraint_canvas* (polygon selections only) and *force_plan*
        are runtime execution knobs, not part of the serializable spec
        — runs carrying either always bypass the result cache.
        """
        spec = self._coerce_spec(spec)
        self._anchor_reports()
        device = device if device is not None else self.device
        if constraint_canvas is not None and not isinstance(spec, SelectSpec):
            raise SpecError("constraint_canvas applies to select specs only")
        cache_key = None
        if (
            self.result_cache is not None
            and constraint_canvas is None
            and force_plan is None
            and self._spec_cacheable(spec)
        ):
            if self._result_cache_registry is not self.registry:
                # The registry was swapped wholesale: every cached
                # result was computed against data this session can no
                # longer resolve the same way.
                self.result_cache.clear()
                self._result_cache_registry = self.registry
            cache_key = (
                spec_digest(spec), self.registry.generation,
                self.resolution, device,
            )
            t_lookup = time.perf_counter()
            hit, value = self.result_cache.get(cache_key)
            if hit:
                self._record_result_cache_hit(
                    spec, time.perf_counter() - t_lookup
                )
                return value
        result = self._execute(spec, device, constraint_canvas, force_plan)
        if cache_key is not None:
            self.result_cache.put(cache_key, result)
        return result

    def _execute(
        self,
        spec: QuerySpec,
        device: Device,
        constraint_canvas: Canvas | None,
        force_plan: str | None,
    ) -> Any:
        """Run one coerced spec through the engine (no result cache)."""
        backend = (
            self._ensure_backend()
            if constraint_canvas is None and force_plan is None
            else None
        )
        if isinstance(spec, GeometrySpec):
            if backend is not None:
                return self._run_spec_process(spec, device, backend)
            return self._run_geometry(spec, device, force_plan)
        if isinstance(spec, JoinSpec):
            if force_plan is not None:
                raise SpecError(
                    "join specs take no force_plan (each member is "
                    "planned individually)"
                )
            if backend is not None:
                return self._run_spec_process(spec, device, backend)
            return self._run_join(spec, device)
        desc = self._describe(
            spec, device, constraint_canvas=constraint_canvas,
            force_plan=force_plan,
        )
        if desc.empty_result is not None:
            return desc.empty_result
        if backend is not None:
            # Description (dataset resolution, window/resolution
            # defaults, validation) happened here on the coordinator;
            # only the execution ships.  Arrays the shared plane
            # exported cross as zero-copy references.
            outcome = self.engine.run_member_process(
                desc.kind, desc.kwargs, backend
            )
            return desc.wrap(outcome)
        # BATCH_KINDS is the executor's own kind→method table, so this
        # dispatch and execute_batch can never drift apart.
        outcome = getattr(self.engine, BATCH_KINDS[desc.kind])(
            **desc.kwargs
        )
        return desc.wrap(outcome)

    # ------------------------------------------------------------------
    # Process backend lifecycle
    # ------------------------------------------------------------------
    def _ensure_backend(self):
        """The live process backend, (re)built lazily.

        ``None`` for in-process sessions.  A registry generation that
        moved since the last publish obsoletes the plane — the old
        backend closes (segments unlink once workers detach) and a
        fresh publish + fleet spawn replaces it, so workers never
        answer from stale data.
        """
        if self.process_workers is None:
            return None
        backend = self._process_backend
        if (
            backend is not None
            and not backend.closed
            and backend.generation == self.registry.generation
        ):
            return backend
        from repro.engine.process_pool import ProcessBackend

        self._teardown_backend()
        plane = self.registry.publish()
        engine = self.engine
        settings = {
            "resolution": self.resolution,
            "device": self.device,
            "tiling": self.tiling,
            "deadline_ms": self.deadline_ms,
            "max_join_members": self.max_join_members,
            "allow_files": self.registry.allow_files,
            "cost_model": engine.cost_model,
            "cache_capacity": engine.cache.capacity,
            "cache_max_bytes": engine.cache.max_bytes,
        }
        try:
            backend = ProcessBackend(
                self.process_workers,
                manifest=plane.manifest(),
                settings=settings,
                plane=plane,
            )
        except Exception:
            plane.release()
            raise
        engine.attach_process_backend(backend)
        self._process_backend = backend
        return backend

    def _teardown_backend(self) -> None:
        backend = self._process_backend
        self._process_backend = None
        if backend is not None:
            if self._engine is not None:
                self._engine.detach_process_backend()
            backend.close()

    def close(self) -> None:
        """Release process-backend resources (workers + shared plane).

        Idempotent, and a no-op for in-process sessions.  The session
        remains usable afterwards — the next execution simply rebuilds
        the backend — but closing before discarding the session is
        what guarantees no segment or worker process outlives it
        (atexit only covers forgotten ones).
        """
        self._teardown_backend()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_spec_process(self, spec: QuerySpec, device: Device, backend):
        """Ship one whole spec to a worker's Session (geometry/join).

        These families expand to several engine calls, so they cross
        as serialized specs and run on the worker's mirrored session.
        The worker returns the family result plus the reports the run
        produced (re-recorded here for ``take_reports``/``explain``)
        and any constraint canvases it newly cached (folded into the
        backend's warm-key map for later batch predictions).
        """
        import hashlib

        from repro.engine.process_worker import run_spec_task

        # The spec object itself crosses (specs are picklable
        # dataclasses); its dataset *references* resolve worker-side
        # against the attached plane, so only inline payloads cost a
        # real copy.
        payload = {
            "generation": backend.generation,
            "spec": spec,
            "device": device,
        }
        digest = hashlib.blake2b(
            spec_digest(spec).encode(), digest_size=8
        ).digest()
        call = backend.dispatch(
            int.from_bytes(digest, "big"), run_spec_task, payload
        )
        out = call.result()
        for report in out["reports"]:
            self.engine.record_report(report)
        for key in out["warm_keys"]:
            backend.note_warm(key, call.worker)
        return out["result"]

    @staticmethod
    def _spec_cacheable(spec: QuerySpec) -> bool:
        """Whether a result computed for *spec* stays valid.

        ``file:`` dataset references are the one escape hatch from the
        registry's generation fingerprint — a file's content can change
        under a stable reference string — so specs naming one are
        never result-cached.
        """
        refs = [
            getattr(spec, attr, None)
            for attr in ("dataset", "left", "right", "polygons")
        ]
        return not any(
            isinstance(ref, str) and ref.startswith("file:") for ref in refs
        )

    def _record_result_cache_hit(self, spec: QuerySpec, lookup_s: float) -> None:
        """Surface a result-cache hit in the engine's report stream.

        A hit skips planning and execution entirely, but silence would
        make ``explain`` (and take_reports consumers) misattribute the
        previous query's report — record a zero-cost report naming the
        cache instead.
        """
        stats = self.result_cache.stats() if self.result_cache else None
        self.engine.record_report(ExecutionReport(
            query=f"{spec.FAMILY} [result cache]",
            plan="result-cache-hit",
            estimated_cost=0.0,
            candidates=(),
            forced=(
                "spec-digest result cache"
                + (f" ({stats.hits} hits / {stats.misses} misses)"
                   if stats else "")
            ),
            cache_hits=0, cache_misses=0,
            planning_s=0.0, execution_s=lookup_s, plan_tree=None,
        ))

    def run_batch(
        self,
        specs: Sequence[QuerySpec | Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> BatchRun:
        """Plan and run a list of specs as one engine batch.

        Members map onto :meth:`QueryEngine.execute_batch`, so shared
        constraint sets rasterize once and later members are priced
        cache-aware.  With *max_workers* > 1 (or an engine built with
        ``max_workers=…``), independent members execute concurrently on
        a thread pool with bit-identical per-member outcomes.  Geometry
        and join specs are not batchable (they expand to per-member
        engine calls); submit them via :meth:`run`.
        """
        self._anchor_reports()
        described = []
        for i, spec in enumerate(specs):
            try:
                described.append(
                    self._describe(self._coerce_spec(spec), self.device)
                )
            except (SpecError, ValueError, TypeError) as exc:
                # Name the offending member: a 20-spec batch error
                # without an index is not actionable.
                raise SpecError(f"batch[{i}]: {exc}") from exc
        live = [
            (i, desc) for i, desc in enumerate(described)
            if desc.empty_result is None
        ]
        # Process sessions publish/refresh the backend before the
        # engine dispatches — execute_batch then routes members to the
        # attached fleet instead of threads.
        self._ensure_backend()
        outcome = self.engine.execute_batch(
            [BatchQuery(desc.kind, desc.kwargs) for _, desc in live],
            max_workers=max_workers,
        )
        results: list[Any] = [None] * len(described)
        for (i, desc), result in zip(live, outcome.results):
            results[i] = desc.wrap(result)
        for i, desc in enumerate(described):
            if desc.empty_result is not None:
                results[i] = desc.empty_result
        report = outcome.report
        if len(live) != len(described):
            # Members that resolved empty without an engine call still
            # occupy a submission slot: keep report.plans (and member
            # indices) aligned with results so clients can pair
            # plans[i] with results[i].
            plans: list[tuple[str, str]] = []
            members = []
            live_plans = iter(report.plans)
            live_members = iter(report.members)
            for i, desc in enumerate(described):
                if desc.empty_result is not None:
                    plans.append(("selection", "empty-input"))
                else:
                    plans.append(next(live_plans))
                    member = next(live_members, None)
                    if member is not None:
                        members.append(type(member)(
                            index=i, kind=member.kind, plan=member.plan,
                            execution_s=member.execution_s,
                            worker=member.worker,
                        ))
            report = BatchReport(
                n_queries=len(described),
                plans=tuple(plans),
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
                shared_constraint_sets=report.shared_constraint_sets,
                counters=report.counters,
                planning_s=report.planning_s,
                execution_s=report.execution_s,
                members=tuple(members),
                max_workers=report.max_workers,
            )
        return BatchRun(results=results, report=report)

    def explain(
        self,
        spec: QuerySpec | Mapping[str, Any],
        **runtime: Any,
    ) -> str:
        """Run *spec* and return the engine's report(s) for that run."""
        self.take_reports()  # drop anything older than this run
        self.run(spec, **runtime)
        produced, _ = self.take_reports()
        if not produced:
            # e.g. a half-space that clips to nothing, or a join over an
            # empty member list — showing the previous query's report
            # here would misattribute it.
            return (
                "no engine execution: the spec resolved to an empty "
                "result without planning"
            )
        # Render exactly the reports this run produced (the calling
        # thread's own stream) — reading the global tail instead could
        # show a concurrent request's report.
        return self.engine.format_reports(produced)

    def _anchor_reports(self) -> None:
        """Pin the calling thread's report marker to the engine's
        current per-thread tally the first time this thread touches it
        — anything recorded earlier (other callers on the shared
        default engine) is not ours.  A changed engine
        (``use_engine()`` around a default session) re-anchors:
        tallies never mix across engines."""
        engine = self.engine
        marker = getattr(self._report_markers, "marker", None)
        if marker is None or marker[0] is not engine:
            self._report_markers.marker = (
                engine, engine.thread_report_count()
            )

    def take_reports(self) -> tuple[list, int]:
        """Reports produced *by the calling thread* since its last call
        (or this thread's first query on the session).

        Returns ``(reports, produced)`` where *produced* is the true
        count from the engine's monotonic per-thread tally — the
        bounded report deque can hold fewer than were produced (e.g. a
        40-member join on a 32-entry history), in which case
        ``len(reports) < produced``.

        Attribution is per-thread by construction: a threaded serve
        front sharing one session never sees a neighbour request's
        reports here.  (Members of a ``run_batch`` with ``max_workers
        > 1`` execute on pool threads — their per-member reports live
        in the :class:`~repro.engine.BatchReport`, not this stream.)
        """
        self._anchor_reports()
        engine, marker_count = self._report_markers.marker
        count_now = engine.thread_report_count()
        produced_count = max(0, count_now - marker_count)
        reports = list(engine.thread_reports())
        produced = reports[len(reports) - min(produced_count, len(reports)):]
        self._report_markers.marker = (engine, count_now)
        return produced, produced_count

    # ------------------------------------------------------------------
    # Spec resolution helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_spec(spec: QuerySpec | Mapping[str, Any]) -> QuerySpec:
        if isinstance(spec, QuerySpec):
            return spec
        if isinstance(spec, Mapping):
            return spec_from_dict(spec)
        raise SpecError(
            f"expected a query spec or spec dict, got {type(spec).__name__}"
        )

    def _resolution(self, spec: QuerySpec, default: int = 1024):
        if getattr(spec, "resolution", None) is not None:
            return spec.resolution
        if self.resolution is not None:
            return self.resolution
        return default

    @staticmethod
    def _window(spec: QuerySpec) -> BoundingBox | None:
        return spec.window.to_box() if spec.window is not None else None

    def _tiling(self, spec: QuerySpec) -> int | None:
        """Effective tile-lattice K for *spec*: its own knob, else the
        session default (kNN has no knob — its radius probes never
        repeat a constraint, so tiling it would only add overhead).
        When neither is set and a memory governor reports critical
        pressure, the governor's fallback lattice is used — tiled
        execution bounds peak working-set to one tile instead of one
        full frame, which is exactly what a memory-pressed process
        needs."""
        tiling = getattr(spec, "tiling", None)
        if tiling is not None:
            return tiling
        if self.tiling is not None:
            return self.tiling
        governor = self.memory_governor
        if governor is not None:
            return governor.force_tiling()
        return None

    def _deadline_for(self, spec: QuerySpec) -> Deadline | None:
        """A fresh countdown for one run of *spec* (or ``None``).

        The spec's own ``deadline_ms`` wins over the session default;
        the clock starts *here* — at describe time — so the budget is
        wall-clock from admission, including registry resolution and
        planning, not just kernel time.
        """
        deadline_ms = getattr(spec, "deadline_ms", None)
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        return Deadline.after_ms(deadline_ms) if deadline_ms is not None else None

    @staticmethod
    def _check_records(data, ref, want: type, family: str, what: str):
        """Record-type contract for *reference-resolved* geometry data.

        Inline payloads were checked at spec construction (and are
        skipped here — no redundant per-query sweep), but a string
        reference resolves only now: without this, a mistyped ref
        would crash deep in a kernel instead of raising a SpecError.
        """
        if isinstance(ref, str):
            for i, geom in enumerate(data.geometries):
                if not isinstance(geom, want):
                    raise SpecError(
                        f"{family} spec: {what} record {i} must be "
                        f"{want.__name__}, got {type(geom).__name__}"
                    )
        return data

    # ------------------------------------------------------------------
    # Family execution: single-engine-call families describe themselves
    # ------------------------------------------------------------------
    def _describe(
        self,
        spec: QuerySpec,
        device: Device,
        constraint_canvas: Canvas | None = None,
        force_plan: str | None = None,
    ) -> _Described:
        if isinstance(spec, SelectSpec):
            return self._describe_select(
                spec, device, constraint_canvas, force_plan
            )
        if isinstance(spec, AggregateSpec):
            return self._describe_aggregate(spec, device, force_plan)
        if isinstance(spec, KnnSpec):
            return self._describe_knn(spec, device, force_plan)
        if isinstance(spec, VoronoiSpec):
            return self._describe_voronoi(spec, device, force_plan)
        if isinstance(spec, OdSpec):
            return self._describe_od(spec, device, force_plan)
        raise SpecError(
            f"family {spec.FAMILY!r} is not batchable — run geometry and "
            "join specs individually via Session.run"
        )

    def _describe_select(
        self,
        spec: SelectSpec,
        device: Device,
        constraint_canvas: Canvas | None,
        force_plan: str | None,
    ) -> _Described:
        common = _common()
        data = self.registry.resolve_points(spec.dataset, spec.FAMILY)
        xs, ys, ids = data.xs, data.ys, data.ids
        resolution = self._resolution(spec)
        window = self._window(spec)
        kinds = {c.kind for c in spec.constraints}

        if kinds == {"circle"}:
            if constraint_canvas is not None:
                raise SpecError(
                    "select spec: constraint_canvas applies to polygon "
                    "constraints only"
                )
            constraint = spec.constraints[0]
            center, radius = constraint.center, constraint.radius
            assert center is not None and radius is not None
            if window is None:
                cx, cy = center
                window = common.default_window(xs, ys).union(
                    BoundingBox(cx - radius, cy - radius,
                                cx + radius, cy + radius)
                ).expand(0.01 * radius)
            return _Described(
                kind="distance",
                kwargs=dict(
                    xs=xs, ys=ys, center=center, radius=radius, ids=ids,
                    window=window, resolution=resolution, device=device,
                    exact=spec.exact, force_plan=force_plan,
                    tiling=self._tiling(spec),
                    deadline=self._deadline_for(spec),
                ),
                wrap=_wrap_selection,
            )

        if kinds == {"halfspace"}:
            assert spec.constraints[0].coefficients is not None
            a, b, c = spec.constraints[0].coefficients
            if window is None:
                window = common.default_window(xs, ys)
            from repro.geometry.clipping import clip_polygon_halfplane

            clipped = clip_polygon_halfplane(window.corners, a, b, c)
            if len(clipped) < 3:
                return _Described(empty_result=_empty_selection_result())
            polys = [Polygon(clipped)]
        else:
            polys = [c.as_polygon() for c in spec.constraints]
            if window is None:
                window = common.default_window(xs, ys, polys)

        return _Described(
            kind="selection",
            kwargs=dict(
                xs=xs, ys=ys, polygons=polys, ids=ids, window=window,
                resolution=resolution, device=device, mode=spec.mode,
                exact=spec.exact, constraint_canvas=constraint_canvas,
                force_plan=force_plan, tiling=self._tiling(spec),
                deadline=self._deadline_for(spec),
            ),
            wrap=_wrap_selection,
        )

    def _describe_aggregate(
        self, spec: AggregateSpec, device: Device, force_plan: str | None
    ) -> _Described:
        common = _common()
        data = self.registry.resolve_points(spec.dataset, spec.FAMILY)
        groups = self._check_records(
            self.registry.resolve_geometries(spec.polygons, spec.FAMILY),
            spec.polygons, Polygon, spec.FAMILY, "group",
        )
        if isinstance(spec.polygons, str):
            from repro.api.specs import _check_unique_group_ids

            _check_unique_group_ids(groups.ids, spec.FAMILY)
        if spec.aggregate != "count" and data.values is None:
            # Without a values column, sum/avg/min/max would confidently
            # return zeros — reject instead of answering wrong.
            raise SpecError(
                f"aggregate spec: {spec.aggregate!r} needs a dataset "
                "with values (inline values=, taxi:pickups fares, or "
                "file:…?value=<column>)"
            )
        polys = list(groups.geometries)
        ids = (
            list(groups.ids) if groups.ids is not None
            else list(range(len(polys)))
        )
        window = self._window(spec)
        if window is None:
            window = common.default_window(data.xs, data.ys, polys)
        return _Described(
            kind="aggregation",
            kwargs=dict(
                xs=data.xs, ys=data.ys, polygons=polys, values=data.values,
                aggregate=spec.aggregate, polygon_ids=ids, window=window,
                resolution=self._resolution(spec), device=device,
                exact=spec.exact, force_plan=force_plan,
                tiling=self._tiling(spec),
                deadline=self._deadline_for(spec),
            ),
            wrap=_wrap_aggregate,
        )

    def _describe_knn(
        self, spec: KnnSpec, device: Device, force_plan: str | None
    ) -> _Described:
        common = _common()
        data = self.registry.resolve_points(spec.dataset, spec.FAMILY)
        xs, ys = data.xs, data.ys
        if spec.k < 1 or spec.k > len(xs):
            raise ValueError("k must be between 1 and the number of points")
        window = self._window(spec)
        if window is None:
            base = common.default_window(xs, ys)
            qx, qy = spec.query_point
            window = base.union(BoundingBox(qx, qy, qx, qy)).expand(
                0.01 * max(base.width, base.height)
            )
        return _Described(
            kind="knn",
            kwargs=dict(
                xs=xs, ys=ys, query_point=spec.query_point, k=spec.k,
                ids=data.ids, window=window,
                resolution=self._resolution(spec), device=device,
                max_iterations=spec.max_iterations, force_plan=force_plan,
                deadline=self._deadline_for(spec),
            ),
            wrap=_wrap_selection,
        )

    def _describe_voronoi(
        self, spec: VoronoiSpec, device: Device, force_plan: str | None
    ) -> _Described:
        data = self.registry.resolve_points(spec.dataset, spec.FAMILY)
        assert spec.window is not None
        return _Described(
            kind="voronoi",
            kwargs=dict(
                points=np.stack([data.xs, data.ys], axis=1),
                window=spec.window.to_box(),
                resolution=self._resolution(spec, default=512),
                device=device, force_plan=force_plan,
                tiling=self._tiling(spec),
                deadline=self._deadline_for(spec),
            ),
            wrap=lambda outcome: outcome.canvas,
        )

    def _describe_od(
        self, spec: OdSpec, device: Device, force_plan: str | None
    ) -> _Described:
        common = _common()
        trips = self.registry.resolve_trips(spec.dataset, spec.FAMILY)
        assert isinstance(spec.q1, Polygon) and isinstance(spec.q2, Polygon)
        window = self._window(spec)
        if window is None:
            all_x = np.concatenate([trips.origin_xs, trips.dest_xs])
            all_y = np.concatenate([trips.origin_ys, trips.dest_ys])
            window = common.default_window(all_x, all_y, [spec.q1, spec.q2])
        return _Described(
            kind="od",
            kwargs=dict(
                origin_xs=trips.origin_xs, origin_ys=trips.origin_ys,
                dest_xs=trips.dest_xs, dest_ys=trips.dest_ys,
                q1=spec.q1, q2=spec.q2, ids=trips.ids, window=window,
                resolution=self._resolution(spec), device=device,
                exact=spec.exact, force_plan=force_plan,
                tiling=self._tiling(spec),
                deadline=self._deadline_for(spec),
            ),
            wrap=_wrap_selection,
        )

    # ------------------------------------------------------------------
    # Geometry-record selections (single call or per-dimension expansion)
    # ------------------------------------------------------------------
    def _run_geometry(
        self, spec: GeometrySpec, device: Device, force_plan: str | None
    ):
        common = _common()
        data = self.registry.resolve_geometries(spec.dataset, spec.FAMILY)
        query = spec.query
        assert isinstance(query, Polygon)
        resolution = self._resolution(spec)
        window = self._window(spec)
        deadline = self._deadline_for(spec)

        if spec.kind == "objects":
            if force_plan is not None:
                raise SpecError(
                    "geometry spec: force_plan is undefined for kind "
                    "'objects' (per-dimension sub-queries use different "
                    "plan families)"
                )
            return self._run_geometry_objects(
                data.geometries, data.ids, query, window, resolution, device,
                spec.exact, self._tiling(spec), deadline,
            )

        self._check_records(
            data, spec.dataset,
            Polygon if spec.kind == "polygons" else LineString,
            spec.FAMILY, spec.kind,
        )
        geom_list = list(data.geometries)
        ids = list(data.ids) if data.ids is not None else None
        if window is None:
            if spec.kind == "polygons":
                corner_x = np.array([query.bounds.xmin, query.bounds.xmax])
                corner_y = np.array([query.bounds.ymin, query.bounds.ymax])
                window = common.default_window(
                    corner_x, corner_y, geom_list + [query]
                )
            else:
                corner_x = [query.bounds.xmin, query.bounds.xmax]
                corner_y = [query.bounds.ymin, query.bounds.ymax]
                for line in geom_list:
                    corner_x.extend([line.bounds.xmin, line.bounds.xmax])
                    corner_y.extend([line.bounds.ymin, line.bounds.ymax])
                window = common.default_window(
                    np.asarray(corner_x), np.asarray(corner_y)
                )
        outcome = self.engine.select_geometry_records(
            spec.kind, geom_list, query, ids=ids, window=window,
            resolution=resolution, device=device, exact=spec.exact,
            force_plan=force_plan, tiling=self._tiling(spec),
            deadline=deadline,
        )
        return _wrap_selection(outcome)

    def _run_geometry_objects(
        self,
        geometries: Sequence,
        ids: Sequence[int] | None,
        query: Polygon,
        window: BoundingBox | None,
        resolution,
        device: Device,
        exact: bool,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ):
        """Heterogeneous-object selection (Figures 1 & 3): decompose
        every record into primitives and run the same blend+mask
        expression per dimension."""
        common = _common()
        geom_list = list(geometries)
        record_ids = list(ids) if ids is not None else list(range(len(geom_list)))
        if len(record_ids) != len(geom_list):
            raise ValueError("ids must match geometry count")

        point_xs: list[float] = []
        point_ys: list[float] = []
        point_records: list[int] = []
        lines: list[LineString] = []
        line_records: list[int] = []
        polygons: list[Polygon] = []
        polygon_records: list[int] = []

        def decompose(geom, rid: int) -> None:
            if isinstance(geom, Point):
                point_xs.append(geom.x)
                point_ys.append(geom.y)
                point_records.append(rid)
            elif isinstance(geom, MultiPoint):
                for x, y in geom.coords:
                    point_xs.append(x)
                    point_ys.append(y)
                    point_records.append(rid)
            elif isinstance(geom, LineString):
                lines.append(geom)
                line_records.append(rid)
            elif isinstance(geom, LineSegment):
                lines.append(
                    LineString([(geom.ax, geom.ay), (geom.bx, geom.by)])
                )
                line_records.append(rid)
            elif isinstance(geom, MultiLineString):
                for line in geom.lines:
                    lines.append(line)
                    line_records.append(rid)
            elif isinstance(geom, Polygon):
                polygons.append(geom)
                polygon_records.append(rid)
            elif isinstance(geom, MultiPolygon):
                for poly in geom.polygons:
                    polygons.append(poly)
                    polygon_records.append(rid)
            elif isinstance(geom, GeometryCollection):
                for part in geom.geometries:
                    decompose(part, rid)
            else:
                raise TypeError(
                    f"unsupported geometry type: {type(geom).__name__}"
                )

        for geom, rid in zip(geom_list, record_ids):
            decompose(geom, rid)

        if window is None:
            all_x = [query.bounds.xmin, query.bounds.xmax] + point_xs
            all_y = [query.bounds.ymin, query.bounds.ymax] + point_ys
            shapes: list[Polygon | LineString] = list(polygons) + list(lines)
            for shape in shapes:
                all_x.extend([shape.bounds.xmin, shape.bounds.xmax])
                all_y.extend([shape.bounds.ymin, shape.bounds.ymax])
            window = common.default_window(np.asarray(all_x), np.asarray(all_y))

        selected: set[int] = set()
        n_candidates = 0
        n_tests = 0

        if point_xs:
            outcome = self.engine.select_points(
                np.asarray(point_xs, dtype=np.float64),
                np.asarray(point_ys, dtype=np.float64),
                [query], ids=np.arange(len(point_xs)), window=window,
                resolution=resolution, device=device, exact=exact,
                tiling=tiling, deadline=deadline,
            )
            selected.update(point_records[i] for i in outcome.ids)
            n_candidates += outcome.n_candidates
            n_tests += outcome.n_exact_tests
        if lines:
            outcome = self.engine.select_geometry_records(
                "lines", lines, query, ids=list(range(len(lines))),
                window=window, resolution=resolution, device=device,
                exact=exact, tiling=tiling, deadline=deadline,
            )
            selected.update(line_records[i] for i in outcome.ids)
            n_candidates += outcome.n_candidates
            n_tests += outcome.n_exact_tests
        if polygons:
            outcome = self.engine.select_geometry_records(
                "polygons", polygons, query, ids=list(range(len(polygons))),
                window=window, resolution=resolution, device=device,
                exact=exact, tiling=tiling, deadline=deadline,
            )
            selected.update(polygon_records[i] for i in outcome.ids)
            n_candidates += outcome.n_candidates
            n_tests += outcome.n_exact_tests

        return common.SelectionResult(
            ids=np.asarray(sorted(selected), dtype=np.int64),
            n_candidates=n_candidates,
            n_exact_tests=n_tests,
        )

    # ------------------------------------------------------------------
    # Joins (one engine-planned selection per member)
    # ------------------------------------------------------------------
    def _check_join_fanout(self, count: int, family: str) -> None:
        if (self.max_join_members is not None
                and count > self.max_join_members):
            raise SpecError(
                f"{family} spec: join fan-out of {count} members exceeds "
                f"this session's cap of {self.max_join_members}"
            )

    def _run_join(self, spec: JoinSpec, device: Device) -> list[tuple[int, int]]:
        common = _common()
        resolution = self._resolution(spec)
        window = self._window(spec)
        deadline = self._deadline_for(spec)

        if spec.kind == "points-polygons":
            left = self.registry.resolve_points(spec.left, spec.FAMILY)
            right = self._check_records(
                self.registry.resolve_geometries(spec.right, spec.FAMILY),
                spec.right, Polygon, spec.FAMILY, "right",
            )
            polys = list(right.geometries)
            self._check_join_fanout(len(polys), spec.FAMILY)
            poly_ids = (
                list(right.ids) if right.ids is not None
                else list(range(len(polys)))
            )
            if window is None:
                window = common.default_window(left.xs, left.ys, polys)
            pairs: list[tuple[int, int]] = []
            # deadline-seam: join-member
            for poly, pid in zip(polys, poly_ids):
                check_deadline(deadline, "join-member")
                outcome = self.engine.select_points(
                    left.xs, left.ys, [poly], ids=left.ids, window=window,
                    resolution=resolution, device=device, exact=spec.exact,
                    tiling=self._tiling(spec), deadline=deadline,
                )
                pairs.extend(
                    (int(point_id), int(pid)) for point_id in outcome.ids
                )
            pairs.sort()
            return pairs

        if spec.kind == "polygons-polygons":
            left = self._check_records(
                self.registry.resolve_geometries(spec.left, spec.FAMILY),
                spec.left, Polygon, spec.FAMILY, "left",
            )
            right = self._check_records(
                self.registry.resolve_geometries(spec.right, spec.FAMILY),
                spec.right, Polygon, spec.FAMILY, "right",
            )
            self._check_join_fanout(len(right.geometries), spec.FAMILY)
            lids = (
                list(left.ids) if left.ids is not None
                else list(range(len(left.geometries)))
            )
            rids = (
                list(right.ids) if right.ids is not None
                else list(range(len(right.geometries)))
            )
            if window is None:
                corners_x: list[float] = []
                corners_y: list[float] = []
                for p in list(left.geometries) + list(right.geometries):
                    corners_x.extend([p.bounds.xmin, p.bounds.xmax])
                    corners_y.extend([p.bounds.ymin, p.bounds.ymax])
                window = common.default_window(
                    np.asarray(corners_x), np.asarray(corners_y)
                )
            pairs = []
            # deadline-seam: join-member
            for poly, rid in zip(right.geometries, rids):
                check_deadline(deadline, "join-member")
                outcome = self.engine.select_geometry_records(
                    "polygons", list(left.geometries), poly, ids=lids,
                    window=window, resolution=resolution, device=device,
                    exact=spec.exact, tiling=self._tiling(spec),
                    deadline=deadline,
                )
                pairs.extend((int(lid), int(rid)) for lid in outcome.ids)
            pairs.sort()
            return pairs

        # distance join: each RHS point becomes a circle constraint.
        left = self.registry.resolve_points(spec.left, spec.FAMILY)
        right = self.registry.resolve_points(spec.right, spec.FAMILY)
        assert spec.distance is not None
        self._check_join_fanout(len(right.xs), spec.FAMILY)
        rids_arr = (
            right.ids if right.ids is not None
            else np.arange(len(right.xs), dtype=np.int64)
        )
        if window is None:
            all_x = np.concatenate([left.xs, right.xs])
            all_y = np.concatenate([left.ys, right.ys])
            window = common.default_window(all_x, all_y).expand(
                spec.distance * 1.05
            )
        pairs = []
        # deadline-seam: join-member
        for i in range(len(right.xs)):
            check_deadline(deadline, "join-member")
            outcome = self.engine.select_distance(
                left.xs, left.ys,
                (float(right.xs[i]), float(right.ys[i])), spec.distance,
                ids=left.ids, window=window, resolution=resolution,
                device=device, exact=spec.exact, tiling=self._tiling(spec),
                deadline=deadline,
            )
            pairs.extend(
                (int(point_id), int(rids_arr[i])) for point_id in outcome.ids
            )
        pairs.sort()
        return pairs


# ----------------------------------------------------------------------
# The process-default session (what the legacy functions are sugar over)
# ----------------------------------------------------------------------
_default_session: Session | None = None


def default_session() -> Session:
    """The shared session behind the legacy query functions.

    It holds no private engine: it always routes through the
    process-default engine, so ``use_engine()`` contexts steer the
    legacy API exactly as before PR 4.
    """
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session
