"""Shared-memory dataset plane: zero-copy data for process workers.

The process backend (PR 8) ships *specs* to worker processes, never
data: :meth:`DatasetRegistry.publish` exports every registered
dataset's resolved arrays into ``multiprocessing.shared_memory``
segments, and workers attach the segments read-only at spawn.  A
dispatched spec (or batch member / tile build) then references its
arrays by segment name — a few bytes on the pickle path regardless of
dataset size — in the spirit of keeping the data plane off the
serialization path entirely.

Three cooperating pieces:

- :class:`SharedDatasetPlane` — the coordinator-side owner of the
  segments.  Reference-counted (`acquire`/`release`) so several
  sessions can share one plane; the last release unlinks every
  segment, and an ``atexit`` hook sweeps anything still alive at
  interpreter shutdown so an abandoned session cannot leak ``/dev/shm``
  entries.
- :class:`AttachedPlane` — the worker-side view.  Attaches each
  segment zero-copy (``np.ndarray`` over ``shm.buf``) and immediately
  unregisters it from the worker's ``resource_tracker``: the
  coordinator's unlink is the single authoritative cleanup, so workers
  must neither warn about "leaked" segments at exit nor race the
  coordinator to destroy them.
- :func:`encode_payload` / :func:`decode_payload` — substitute
  published arrays with tiny segment references inside arbitrary
  kwargs structures (and restore them worker-side), so engine-level
  batch members and tile builds cross the boundary without re-pickling
  their data.

The manifest is a plain dict (name, dtype, shape, generation) — JSON-
and pickle-friendly by construction.  Every manifest and every
dispatched task carries the registry ``generation`` it was published
at; a worker asked to execute against a different generation answers
with a typed :class:`StaleGeneration` marker instead of silently
reading replaced data.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import threading
from multiprocessing import shared_memory
from typing import Any, Mapping

import numpy as np

from repro.api.specs import GeometryData, PointData, TripData

__all__ = [
    "AttachedPlane",
    "SharedDatasetPlane",
    "StaleGeneration",
    "decode_payload",
    "encode_payload",
    "live_plane_count",
]

#: Segment-name prefix — lifecycle tests scan ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro_shm"

#: Marker key of an encoded array reference inside a payload.
_REF_KEY = "__repro_shm_ref__"


class StaleGeneration(RuntimeError):
    """A worker was asked to execute against a superseded manifest.

    Raised (coordinator-side, from the worker's typed answer) when a
    task's expected registry generation does not match the generation
    the worker's plane was published at.  The session layer reacts by
    republishing and respawning — never by silently executing against
    replaced data.
    """


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(6)}"


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
_live_planes: "set[SharedDatasetPlane]" = set()
_live_lock = threading.Lock()


def _atexit_sweep() -> None:
    # Interpreter shutdown: unlink whatever a crashed/abandoned caller
    # left behind.  Copy under the lock — close() mutates the set.
    with _live_lock:
        planes = list(_live_planes)
    for plane in planes:
        plane.close()


atexit.register(_atexit_sweep)


def live_plane_count() -> int:
    """How many planes still own segments (lifecycle-test hook)."""
    with _live_lock:
        return len(_live_planes)


class SharedDatasetPlane:
    """Owns the shared-memory segments of one published registry state.

    Built by :meth:`DatasetRegistry.publish`; do not construct
    directly.  The plane is reference-counted: every consumer that
    holds it calls :meth:`acquire` and pairs it with :meth:`release`;
    the last release (or an explicit :meth:`close`, or interpreter
    exit) unlinks every segment.
    """

    def __init__(self, generation: int) -> None:
        self.generation = generation
        self._segments: list[shared_memory.SharedMemory] = []
        #: id(array) -> encoded reference, for payload substitution.
        #: Keyed on object identity: the registry hands out the same
        #: resolved array objects on every resolve, so identity is the
        #: cheap, exact "is this array published?" test.
        self._exports: dict[int, dict[str, Any]] = {}
        #: Keep the exported arrays alive — id() keys are only unique
        #: while the object is; letting the source array die would let
        #: an unrelated new array alias its export entry.
        self._export_anchors: list[np.ndarray] = []
        self._datasets: dict[str, dict[str, Any]] = {}
        self._refs = 1
        self._closed = False
        self._lock = threading.Lock()
        with _live_lock:
            _live_planes.add(self)

    # -- publication (registry-side) -----------------------------------
    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=_segment_name()
        )
        # Under the lock: publication racing a close() must either see
        # the segment swapped out (and unlinked) or append-after-close
        # — appending to the list close() already swapped would leak
        # the segment past the sweep.
        with self._lock:
            if self._closed:
                seg.close()
                seg.unlink()
                raise RuntimeError("plane is closed")
            self._segments.append(seg)
        return seg

    def _publish_array(self, arr: np.ndarray) -> dict[str, Any]:
        ref = self._exports.get(id(arr))
        if ref is not None:
            return ref
        arr = np.ascontiguousarray(arr)
        if arr.nbytes == 0:
            ref = {
                "kind": "empty",
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        else:
            seg = self._new_segment(arr.nbytes)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
            ref = {
                "kind": "array",
                "segment": seg.name,
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        self._exports[id(arr)] = ref
        self._export_anchors.append(arr)
        return ref

    def _publish_pickle(self, obj: Any) -> dict[str, Any]:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        seg = self._new_segment(len(blob))
        seg.buf[: len(blob)] = blob
        return {"kind": "pickle", "segment": seg.name, "nbytes": len(blob)}

    def publish_dataset(self, name: str, payload: Any) -> None:
        """Export one resolved dataset payload into segments."""
        if isinstance(payload, PointData):
            roles = {
                "xs": self._publish_array(payload.xs),
                "ys": self._publish_array(payload.ys),
            }
            if payload.ids is not None:
                roles["ids"] = self._publish_array(payload.ids)
            if payload.values is not None:
                roles["values"] = self._publish_array(payload.values)
            self._datasets[name] = {"type": "points", "roles": roles}
        elif isinstance(payload, TripData):
            roles = {
                "origin_xs": self._publish_array(payload.origin_xs),
                "origin_ys": self._publish_array(payload.origin_ys),
                "dest_xs": self._publish_array(payload.dest_xs),
                "dest_ys": self._publish_array(payload.dest_ys),
            }
            if payload.ids is not None:
                roles["ids"] = self._publish_array(payload.ids)
            self._datasets[name] = {"type": "trips", "roles": roles}
        elif isinstance(payload, GeometryData):
            # Geometries are object graphs, not flat buffers: one
            # pickled segment, one unpickle per worker at attach time
            # (documented cost — geometry datasets are orders of
            # magnitude smaller than point datasets).
            self._datasets[name] = {
                "type": "geometries",
                "blob": self._publish_pickle(
                    (payload.geometries, payload.ids)
                ),
            }
        else:  # pragma: no cover — registry coercion precludes this
            raise TypeError(
                f"cannot publish dataset {name!r}: unsupported payload "
                f"type {type(payload).__name__}"
            )

    # -- payload substitution ------------------------------------------
    def export_ref(self, arr: np.ndarray) -> dict[str, Any] | None:
        """The encoded reference of *arr* if it was published."""
        return self._exports.get(id(arr))

    def manifest(self) -> dict[str, Any]:
        """The plain-dict description workers attach from."""
        return {
            "generation": self.generation,
            "datasets": self._datasets,
        }

    @property
    def segment_names(self) -> list[str]:
        with self._lock:
            return [seg.name for seg in self._segments]

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(seg.size for seg in self._segments)

    # -- lifecycle ------------------------------------------------------
    def acquire(self) -> "SharedDatasetPlane":
        with self._lock:
            if self._closed:
                raise RuntimeError("plane is closed")
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
        self.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Unlink every segment (idempotent; also the atexit path)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
            self._exports.clear()
            self._export_anchors.clear()
        for seg in segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover — exported views live
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass
        with _live_lock:
            _live_planes.discard(self)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _owns_fresh_tracker() -> bool:
    """Whether this process would start its *own* resource tracker.

    A ``spawn``/``forkserver`` worker starts a fresh tracker on first
    use; a ``fork`` worker inherits the coordinator's already-running
    tracker (shared pipe).  The distinction decides the untrack policy
    below — must be sampled *before* the first attach, which is what
    starts a fresh tracker.
    """
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._pid is None
    except Exception:  # pragma: no cover — tracker impl detail shifted
        return False


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Drop *seg* from this process's own resource tracker.

    Attaching registers the segment with the attaching process's
    ``resource_tracker`` (CPython < 3.13 offers no opt-out), which
    would (a) warn about "leaked" segments at worker exit and (b) let
    a dying worker's tracker unlink segments the coordinator still
    serves.  The coordinator's close/atexit is the one authoritative
    cleanup, so a worker with its own tracker unregisters immediately
    after attach.  (A ``fork`` worker shares the coordinator's tracker
    — registration is set-semantics there, so the attach was a no-op
    and unregistering would instead erase the *coordinator's* entry;
    the caller skips untracking in that case.)
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover — tracker impl detail shifted
        pass


class AttachedPlane:
    """A worker process's zero-copy view of a published plane."""

    def __init__(self, manifest: Mapping[str, Any]) -> None:
        self.generation = int(manifest["generation"])
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._payloads: dict[str, Any] = {}
        self._untrack = _owns_fresh_tracker()
        for name, entry in manifest["datasets"].items():
            self._payloads[name] = self._build_payload(entry)

    # -- attachment -----------------------------------------------------
    def _segment(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segments.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            if self._untrack:
                _untrack(seg)
            self._segments[name] = seg
        return seg

    def attach_array(self, ref: Mapping[str, Any]) -> np.ndarray:
        """One encoded reference → a read-only zero-copy array."""
        if ref["kind"] == "empty":
            return np.empty(tuple(ref["shape"]), dtype=np.dtype(ref["dtype"]))
        cached = self._arrays.get(ref["segment"])
        if cached is not None:
            return cached
        seg = self._segment(ref["segment"])
        arr = np.ndarray(
            tuple(ref["shape"]), dtype=np.dtype(ref["dtype"]), buffer=seg.buf
        )
        # The segments are shared with the coordinator and every other
        # worker: any in-place write would corrupt all of them at once.
        arr.flags.writeable = False
        self._arrays[ref["segment"]] = arr
        return arr

    def _attach_pickle(self, ref: Mapping[str, Any]) -> Any:
        seg = self._segment(ref["segment"])
        return pickle.loads(bytes(seg.buf[: ref["nbytes"]]))

    def _build_payload(self, entry: Mapping[str, Any]) -> Any:
        kind = entry["type"]
        if kind == "geometries":
            geometries, ids = self._attach_pickle(entry["blob"])
            return GeometryData(geometries, ids=ids)
        roles = {
            role: self.attach_array(ref)
            for role, ref in entry["roles"].items()
        }
        if kind == "points":
            return PointData(
                roles["xs"], roles["ys"],
                ids=roles.get("ids"), values=roles.get("values"),
            )
        if kind == "trips":
            return TripData(
                roles["origin_xs"], roles["origin_ys"],
                roles["dest_xs"], roles["dest_ys"],
                ids=roles.get("ids"),
            )
        raise ValueError(f"unknown dataset type {kind!r} in manifest")

    # -- access ---------------------------------------------------------
    def dataset_names(self) -> list[str]:
        return sorted(self._payloads)

    def payloads(self) -> dict[str, Any]:
        return dict(self._payloads)

    def check_generation(self, expected: int) -> None:
        if expected != self.generation:
            raise StaleGeneration(
                f"task expects registry generation {expected}, worker "
                f"plane was published at generation {self.generation}"
            )

    def detach(self) -> None:
        """Close (never unlink) every attached segment."""
        self._payloads.clear()
        self._arrays.clear()
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except BufferError:
                # A decoded view is still alive somewhere; the mapping
                # dies with the process, and the coordinator owns the
                # unlink either way.
                pass


# ----------------------------------------------------------------------
# Payload substitution
# ----------------------------------------------------------------------
def encode_payload(obj: Any, plane: SharedDatasetPlane | None) -> Any:
    """Replace published arrays inside *obj* with segment references.

    Walks dicts / lists / tuples; any ndarray the plane exported
    becomes a few-byte reference, everything else passes through to be
    pickled normally (small inline payloads, geometry objects,
    scalars).  With no plane, *obj* is returned unchanged.
    """
    if plane is None:
        return obj
    return _encode(obj, plane)


def _rebuild(obj: Any, items: list) -> Any:
    """Reassemble a walked list/tuple, preserving the original object
    (and its exact type — ``BoundingBox`` and friends subclass tuple)
    whenever no element was substituted."""
    if len(items) == len(obj) and all(
        new is old for new, old in zip(items, obj)
    ):
        return obj
    if isinstance(obj, tuple):
        cls = type(obj)
        try:
            return cls(items)
        except TypeError:
            # NamedTuple-style constructors take positional fields.
            return cls(*items)
    return items


def _encode(obj: Any, plane: SharedDatasetPlane) -> Any:
    if isinstance(obj, np.ndarray):
        ref = plane.export_ref(obj)
        return {_REF_KEY: ref} if ref is not None else obj
    if isinstance(obj, dict):
        return {key: _encode(value, plane) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return _rebuild(obj, [_encode(item, plane) for item in obj])
    return obj


def decode_payload(obj: Any, plane: AttachedPlane | None) -> Any:
    """Restore segment references inside *obj* to zero-copy arrays."""
    if isinstance(obj, dict):
        if _REF_KEY in obj:
            if plane is None:
                raise RuntimeError(
                    "payload references a shared-memory segment but no "
                    "plane is attached in this process"
                )
            return plane.attach_array(obj[_REF_KEY])
        return {key: decode_payload(value, plane) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return _rebuild(obj, [decode_payload(item, plane) for item in obj])
    return obj
