"""Typed, versioned, JSON-round-trippable query specifications.

Every query family the engine executes has a spec dataclass here: a
*declarative* description of one query that can leave the process —
``to_dict()`` produces a plain-JSON mapping, ``from_dict()`` restores
it, and the round trip is a fixpoint (``to_dict ∘ from_dict ∘ to_dict``
is the identity on the dict form).  Specs validate eagerly: a bad
``k``, a negative radius, an empty constraint list or a malformed
geometry raises :class:`SpecError` (a ``ValueError``) at construction
time, with a family-specific message, *before* any planning or data
loading happens.

The dict form is versioned per family::

    {"spec": "select", "version": 1, "dataset": ..., ...}

``spec_from_dict`` dispatches on the ``spec`` key and rejects unknown
families, missing/mismatched versions, unknown keys, and type errors —
the strictness a service boundary needs.

Datasets inside a spec are either **references** (strings resolved by
:class:`repro.api.registry.DatasetRegistry` — named registrations,
``synthetic:``/``taxi:``/``file:`` schemes) or **inline payloads**
(:class:`PointData`, :class:`GeometryData`, :class:`TripData`), so a
serialized spec is self-contained off-process when it uses references
or small inline data.

This module deliberately imports no engine code: specs are pure
descriptions.  :class:`repro.api.session.Session` turns them into work.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.geojson import GeoJSONError, from_geojson, to_geojson
from repro.geometry.primitives import Geometry, LineString, Polygon


class SpecError(ValueError):
    """A query spec failed eager validation (or could not be parsed)."""


def _fail(family: str, message: str) -> "SpecError":
    return SpecError(f"{family} spec: {message}")


def _require(condition: bool, family: str, message: str) -> None:
    if not condition:
        raise _fail(family, message)


def _finite_float(value: Any, family: str, name: str) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise _fail(family, f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(out):
        raise _fail(family, f"{name} must be finite, got {out!r}")
    return out


def _point2(value: Any, family: str, name: str) -> tuple[float, float]:
    if isinstance(value, str):
        # A string IS a two-char sequence — "12" must not silently
        # parse as the point (1, 2).
        raise _fail(family, f"{name} must be an (x, y) pair, not a string")
    try:
        x, y = value
    except (TypeError, ValueError) as exc:
        raise _fail(family, f"{name} must be an (x, y) pair") from exc
    return (_finite_float(x, family, f"{name}.x"),
            _finite_float(y, family, f"{name}.y"))


# ----------------------------------------------------------------------
# Shared sub-specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowSpec:
    """A query window (world-space bounding box) inside a spec."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        for name in ("xmin", "ymin", "xmax", "ymax"):
            object.__setattr__(
                self, name, _finite_float(getattr(self, name), "window", name)
            )
        _require(self.xmax > self.xmin, "window", "xmax must exceed xmin")
        _require(self.ymax > self.ymin, "window", "ymax must exceed ymin")

    @classmethod
    def from_box(cls, box: BoundingBox) -> "WindowSpec":
        return cls(box.xmin, box.ymin, box.xmax, box.ymax)

    def to_box(self) -> BoundingBox:
        return BoundingBox(self.xmin, self.ymin, self.xmax, self.ymax)

    def to_dict(self) -> dict[str, float]:
        return {"xmin": self.xmin, "ymin": self.ymin,
                "xmax": self.xmax, "ymax": self.ymax}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WindowSpec":
        if not isinstance(data, Mapping):
            raise _fail("window", f"expected a mapping, got {type(data).__name__}")
        extra = set(data) - {"xmin", "ymin", "xmax", "ymax"}
        _require(not extra, "window", f"unknown keys {sorted(extra)}")
        missing = {"xmin", "ymin", "xmax", "ymax"} - set(data)
        _require(not missing, "window", f"missing keys {sorted(missing)}")
        return cls(data["xmin"], data["ymin"], data["xmax"], data["ymax"])


#: Constraint kinds and the utility operators they correspond to.
CONSTRAINT_KINDS = ("polygon", "rect", "halfspace", "circle")


@dataclass(frozen=True)
class ConstraintSpec:
    """One selection constraint: a query region in utility-operator form.

    ``polygon`` wraps an arbitrary polygon (``CQ``); ``rect`` is
    ``Rect[l1, l2]()``; ``halfspace`` is ``HS[a, b, c]()`` (the region
    ``ax + by + c < 0``, clipped to the query window at execution
    time); ``circle`` is ``Circ[center, radius]()``.
    """

    kind: str
    geometry: Polygon | None = None
    l1: tuple[float, float] | None = None
    l2: tuple[float, float] | None = None
    coefficients: tuple[float, float, float] | None = None
    center: tuple[float, float] | None = None
    radius: float | None = None

    def __post_init__(self) -> None:
        fam = "constraint"
        _require(
            self.kind in CONSTRAINT_KINDS, fam,
            f"unknown kind {self.kind!r} (use one of {', '.join(CONSTRAINT_KINDS)})",
        )
        if self.kind == "polygon":
            _require(
                isinstance(self.geometry, Polygon), fam,
                "polygon constraint requires a Polygon geometry",
            )
        elif self.kind == "rect":
            object.__setattr__(self, "l1", _point2(self.l1, fam, "l1"))
            object.__setattr__(self, "l2", _point2(self.l2, fam, "l2"))
            _require(
                self.l1[0] != self.l2[0] and self.l1[1] != self.l2[1], fam,
                "rect constraint must have positive area",
            )
        elif self.kind == "halfspace":
            coeffs = self.coefficients
            if isinstance(coeffs, str):
                raise _fail(fam, "halfspace requires (a, b, c), not a string")
            try:
                a, b, c = coeffs  # type: ignore[misc]
            except (TypeError, ValueError) as exc:
                raise _fail(fam, "halfspace requires (a, b, c)") from exc
            a = _finite_float(a, fam, "a")
            b = _finite_float(b, fam, "b")
            c = _finite_float(c, fam, "c")
            _require(a != 0 or b != 0, fam, "halfspace requires a or b nonzero")
            object.__setattr__(self, "coefficients", (a, b, c))
        else:  # circle
            object.__setattr__(
                self, "center", _point2(self.center, fam, "center")
            )
            radius = _finite_float(self.radius, fam, "radius")
            _require(radius > 0, fam, "circle radius must be positive")
            object.__setattr__(self, "radius", radius)

    # -- constructors ----------------------------------------------------
    @classmethod
    def polygon(cls, polygon: Polygon) -> "ConstraintSpec":
        return cls(kind="polygon", geometry=polygon)

    @classmethod
    def rect(cls, l1: Sequence[float], l2: Sequence[float]) -> "ConstraintSpec":
        # No tuple() here: _point2 must see a raw string to reject it
        # ("12" would otherwise silently become the point (1, 2)).
        return cls(kind="rect", l1=l1, l2=l2)  # type: ignore[arg-type]

    @classmethod
    def halfspace(cls, a: float, b: float, c: float) -> "ConstraintSpec":
        return cls(kind="halfspace", coefficients=(a, b, c))

    @classmethod
    def circle(
        cls, center: Sequence[float], radius: float
    ) -> "ConstraintSpec":
        return cls(kind="circle", center=center,  # type: ignore[arg-type]
                   radius=radius)

    # -- execution-side conversion --------------------------------------
    def as_polygon(self) -> Polygon:
        """The constraint as a polygon (polygon and rect kinds only)."""
        if self.kind == "polygon":
            assert self.geometry is not None
            return self.geometry
        if self.kind == "rect":
            assert self.l1 is not None and self.l2 is not None
            box = BoundingBox(
                min(self.l1[0], self.l2[0]), min(self.l1[1], self.l2[1]),
                max(self.l1[0], self.l2[0]), max(self.l1[1], self.l2[1]),
            )
            return Polygon(box.corners)
        raise _fail(
            "constraint", f"{self.kind} constraint has no direct polygon form"
        )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        if self.kind == "polygon":
            assert self.geometry is not None
            return {"kind": "polygon", "geometry": to_geojson(self.geometry)}
        if self.kind == "rect":
            assert self.l1 is not None and self.l2 is not None
            return {"kind": "rect", "l1": list(self.l1), "l2": list(self.l2)}
        if self.kind == "halfspace":
            assert self.coefficients is not None
            return {"kind": "halfspace",
                    "coefficients": list(self.coefficients)}
        assert self.center is not None and self.radius is not None
        return {"kind": "circle", "center": list(self.center),
                "radius": self.radius}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConstraintSpec":
        fam = "constraint"
        if not isinstance(data, Mapping):
            raise _fail(fam, f"expected a mapping, got {type(data).__name__}")
        kind = data.get("kind")
        _require(kind in CONSTRAINT_KINDS, fam, f"unknown kind {kind!r}")
        allowed = {
            "polygon": {"kind", "geometry"},
            "rect": {"kind", "l1", "l2"},
            "halfspace": {"kind", "coefficients"},
            "circle": {"kind", "center", "radius"},
        }[kind]
        extra = set(data) - allowed
        _require(not extra, fam, f"unknown keys {sorted(extra)} for {kind!r}")
        missing = allowed - set(data)
        _require(not missing, fam, f"missing keys {sorted(missing)}")
        if kind == "polygon":
            geom = _geometry_from_dict(data["geometry"], fam)
            _require(
                isinstance(geom, Polygon), fam,
                "polygon constraint geometry must be a GeoJSON Polygon",
            )
            return cls.polygon(geom)  # type: ignore[arg-type]
        if kind == "rect":
            return cls.rect(data["l1"], data["l2"])
        if kind == "halfspace":
            coeffs = data["coefficients"]
            _require(
                isinstance(coeffs, Sequence) and not isinstance(coeffs, str)
                and len(coeffs) == 3,
                fam, "coefficients must be [a, b, c]",
            )
            return cls.halfspace(*coeffs)
        return cls.circle(data["center"], data["radius"])


def _geometry_from_dict(data: Any, family: str) -> Geometry:
    try:
        return from_geojson(data)
    except (GeoJSONError, ValueError, TypeError, KeyError) as exc:
        raise _fail(family, f"malformed geometry: {exc}") from exc


# ----------------------------------------------------------------------
# Inline dataset payloads
# ----------------------------------------------------------------------
def _as_float_column(values: Any, family: str, name: str) -> np.ndarray:
    # Non-finite entries are allowed: legacy frontends always accepted
    # NaN/Inf coordinates (they fall outside every query window and
    # simply never match), and a per-call isfinite sweep would tax the
    # hot path.  Scalar spec parameters stay strict via _finite_float.
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise _fail(family, f"{name} must be numeric") from exc
    if arr.ndim != 1:
        raise _fail(family, f"{name} must be one-dimensional")
    return arr


@dataclass
class PointData:
    """An inline point dataset: coordinate columns plus optional
    per-record ids and values."""

    xs: np.ndarray
    ys: np.ndarray
    ids: np.ndarray | None = None
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        fam = "points dataset"
        self.xs = _as_float_column(self.xs, fam, "xs")
        self.ys = _as_float_column(self.ys, fam, "ys")
        _require(len(self.xs) == len(self.ys), fam,
                 "xs and ys must have equal length")
        if self.ids is not None:
            try:
                self.ids = np.asarray(self.ids, dtype=np.int64)
            except (TypeError, ValueError, OverflowError) as exc:
                raise _fail(fam, "ids must be integers") from exc
            _require(self.ids.ndim == 1 and len(self.ids) == len(self.xs),
                     fam, "ids must pair one id per point")
        if self.values is not None:
            self.values = _as_float_column(self.values, fam, "values")
            _require(len(self.values) == len(self.xs), fam,
                     "values must pair one value per point")

    def __len__(self) -> int:
        return len(self.xs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "points",
            "xs": self.xs.tolist(),
            "ys": self.ys.tolist(),
        }
        if self.ids is not None:
            out["ids"] = self.ids.tolist()
        if self.values is not None:
            out["values"] = self.values.tolist()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointData":
        fam = "points dataset"
        extra = set(data) - {"kind", "xs", "ys", "ids", "values"}
        _require(not extra, fam, f"unknown keys {sorted(extra)}")
        missing = {"xs", "ys"} - set(data)
        _require(not missing, fam, f"missing keys {sorted(missing)}")
        return cls(data["xs"], data["ys"], ids=data.get("ids"),
                   values=data.get("values"))


@dataclass
class GeometryData:
    """An inline geometry dataset: records of arbitrary geometry type."""

    geometries: list[Geometry]
    ids: list[int] | None = None

    def __post_init__(self) -> None:
        fam = "geometry dataset"
        self.geometries = list(self.geometries)
        for geom in self.geometries:
            if not isinstance(geom, Geometry):
                # TypeError, not SpecError: a non-geometry record is a
                # Python typing mistake, matching the legacy contract.
                raise TypeError(
                    f"unsupported geometry type: {type(geom).__name__}"
                )
        if self.ids is not None:
            try:
                self.ids = [int(i) for i in self.ids]
            except (TypeError, ValueError) as exc:
                raise _fail(fam, "ids must be integers") from exc
            _require(len(self.ids) == len(self.geometries), fam,
                     "ids must pair one id per geometry")

    def __len__(self) -> int:
        return len(self.geometries)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "geometries",
            "geometries": [to_geojson(g) for g in self.geometries],
        }
        if self.ids is not None:
            out["ids"] = list(self.ids)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeometryData":
        fam = "geometry dataset"
        extra = set(data) - {"kind", "geometries", "ids"}
        _require(not extra, fam, f"unknown keys {sorted(extra)}")
        _require("geometries" in data, fam, "missing key 'geometries'")
        geoms = [
            _geometry_from_dict(g, fam) for g in data["geometries"]
        ]
        return cls(geoms, ids=data.get("ids"))


@dataclass
class TripData:
    """An inline origin-destination dataset (the OD query's input)."""

    origin_xs: np.ndarray
    origin_ys: np.ndarray
    dest_xs: np.ndarray
    dest_ys: np.ndarray
    ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        fam = "trips dataset"
        self.origin_xs = _as_float_column(self.origin_xs, fam, "origin_xs")
        self.origin_ys = _as_float_column(self.origin_ys, fam, "origin_ys")
        self.dest_xs = _as_float_column(self.dest_xs, fam, "dest_xs")
        self.dest_ys = _as_float_column(self.dest_ys, fam, "dest_ys")
        n = len(self.origin_xs)
        _require(
            len(self.origin_ys) == n and len(self.dest_xs) == n
            and len(self.dest_ys) == n,
            fam, "origin and destination columns must have equal length",
        )
        if self.ids is not None:
            try:
                self.ids = np.asarray(self.ids, dtype=np.int64)
            except (TypeError, ValueError, OverflowError) as exc:
                raise _fail(fam, "ids must be integers") from exc
            _require(self.ids.ndim == 1 and len(self.ids) == n, fam,
                     "ids must pair one id per trip")

    def __len__(self) -> int:
        return len(self.origin_xs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "trips",
            "origin_xs": self.origin_xs.tolist(),
            "origin_ys": self.origin_ys.tolist(),
            "dest_xs": self.dest_xs.tolist(),
            "dest_ys": self.dest_ys.tolist(),
        }
        if self.ids is not None:
            out["ids"] = self.ids.tolist()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TripData":
        fam = "trips dataset"
        keys = {"origin_xs", "origin_ys", "dest_xs", "dest_ys"}
        extra = set(data) - keys - {"kind", "ids"}
        _require(not extra, fam, f"unknown keys {sorted(extra)}")
        missing = keys - set(data)
        _require(not missing, fam, f"missing keys {sorted(missing)}")
        return cls(data["origin_xs"], data["origin_ys"],
                   data["dest_xs"], data["dest_ys"], ids=data.get("ids"))


#: A dataset inside a spec: a registry reference or an inline payload.
DatasetRef = Any  # str | PointData | GeometryData | TripData

_DATASET_KINDS = {
    "points": PointData,
    "geometries": GeometryData,
    "trips": TripData,
}


def _dataset_to_dict(dataset: DatasetRef) -> Any:
    if isinstance(dataset, str):
        return dataset
    return dataset.to_dict()


def _dataset_from_dict(value: Any, family: str) -> DatasetRef:
    if isinstance(value, str):
        _require(bool(value), family, "dataset reference must be non-empty")
        return value
    if isinstance(value, (PointData, GeometryData, TripData)):
        return value
    if isinstance(value, Mapping):
        kind = value.get("kind")
        _require(
            kind in _DATASET_KINDS, family,
            f"unknown dataset kind {kind!r} "
            f"(use one of {', '.join(sorted(_DATASET_KINDS))})",
        )
        return _DATASET_KINDS[kind].from_dict(value)
    raise _fail(
        family,
        f"dataset must be a reference string or inline payload, "
        f"got {type(value).__name__}",
    )


def _validate_dataset(
    dataset: DatasetRef, family: str, *allowed: type
) -> DatasetRef:
    resolved = _dataset_from_dict(dataset, family)
    if not isinstance(resolved, str) and not isinstance(resolved, allowed):
        names = " or ".join(t.__name__ for t in allowed)
        raise _fail(
            family,
            f"dataset must resolve to {names}, "
            f"got {type(resolved).__name__}",
        )
    return resolved


# ----------------------------------------------------------------------
# Spec base plumbing
# ----------------------------------------------------------------------
def _window_field(value: Any, family: str) -> WindowSpec | None:
    if value is None or isinstance(value, WindowSpec):
        return value
    if isinstance(value, BoundingBox):
        return WindowSpec.from_box(value)
    if isinstance(value, Mapping):
        return WindowSpec.from_dict(value)
    if (isinstance(value, Sequence) and not isinstance(value, str)
            and len(value) == 4):
        return WindowSpec(*value)
    raise _fail(family, f"window must be a WindowSpec/mapping/4-tuple, "
                        f"got {type(value).__name__}")


def _int_field(value: Any, family: str, name: str) -> int | None:
    """Coerce an integer-like value (int, numpy integer) to int."""
    if isinstance(value, bool):
        raise _fail(family, f"{name} must be an integer, got {value!r}")
    try:
        return operator.index(value)
    except TypeError:
        raise _fail(family, f"{name} must be an integer, got {value!r}") \
            from None


#: Largest canvas side a *parsed* spec may request.  Spec dicts arrive
#: from untrusted serve requests, where one request must not be able to
#: allocate a canvas that OOM-kills the loop before MemoryError can be
#: answered in-band (a 4096² texture is ~1.2 GB; 8192² would already be
#: ~5 GB).  Specs constructed directly in Python are trusted and
#: uncapped — the legacy frontends never rejected large resolutions.
MAX_RESOLUTION = 4096

#: Largest kNN bisection budget a *parsed* spec may request — the same
#: boundary rationale as MAX_RESOLUTION: one untrusted request must not
#: pin the loop for an unbounded number of full-frame probes.
MAX_PARSED_ITERATIONS = 10_000


def _resolution_field(value: Any, family: str) -> Any:
    if value is None:
        return None
    if isinstance(value, Sequence) and len(value) == 2:
        h = _int_field(value[0], family, "resolution height")
        w = _int_field(value[1], family, "resolution width")
        _require(h > 0 and w > 0, family,
                 "resolution pair must be positive integers")
        return (h, w)
    size = _int_field(value, family, "resolution")
    _require(size > 0, family, "resolution must be positive")
    return size


def _resolution_to_dict(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


def _resolution_from_dict(value: Any, family: str) -> Any:
    """Parse + cap a resolution arriving in dict form (the untrusted
    boundary — see MAX_RESOLUTION)."""
    if isinstance(value, list):
        _require(len(value) == 2, family, "resolution list must be [h, w]")
        value = (value[0], value[1])
    if value is None:
        return None
    sides = value if isinstance(value, tuple) else (value,)
    for side in sides:
        if isinstance(side, int) and side > MAX_RESOLUTION:
            raise _fail(
                family,
                f"resolution {side} exceeds the {MAX_RESOLUTION} cap for "
                f"specs parsed from dicts",
            )
    return value


def _bool_field(value: Any, family: str, name: str) -> bool:
    _require(isinstance(value, bool), family, f"{name} must be a boolean")
    return value


#: Largest tile lattice a spec may request per axis.  A 64x64 lattice
#: over the 4096-cap resolution already means 64-pixel tiles; finer
#: shards would drown the per-tile bookkeeping in overhead.
MAX_TILING = 64


def _tiling_field(value: Any, family: str) -> int | None:
    """Validate the tiled-execution knob: ``None`` (whole-frame, the
    default) or the K of a K×K tile lattice."""
    if value is None:
        return None
    tiling = _int_field(value, family, "tiling")
    _require(2 <= tiling <= MAX_TILING, family,
             f"tiling must be between 2 and {MAX_TILING}, got {tiling}")
    return tiling


def _deadline_field(value: Any, family: str) -> float | None:
    """Validate the per-request deadline budget: ``None`` (no budget,
    the default) or a positive finite millisecond count.

    The budget starts counting when the engine call begins (the spec
    itself carries no clock); execution aborts within one cooperative
    checkpoint of it with a typed ``deadline`` error answered in-band.
    """
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        family, "deadline_ms must be a number",
    )
    deadline_ms = float(value)
    _require(math.isfinite(deadline_ms) and deadline_ms > 0, family,
             f"deadline_ms must be positive and finite, got {value!r}")
    return deadline_ms


#: Spec fields excluded from the result-cache digest *by policy*: they
#: bound how a query runs, not what it computes, so two specs differing
#: only here must hit the same cached result.  ``spec_digest`` in
#: :mod:`repro.api.result_cache` pops exactly this set, and the
#: ``spec-digest`` lint treats membership here as the documented way to
#: keep a field out of the digest.
DIGEST_POLICY_EXCLUDED: frozenset[str] = frozenset({"deadline_ms"})


class QuerySpec:
    """Base class for the seven query-family specs."""

    FAMILY: str = ""
    VERSION: int = 1

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        raise NotImplementedError

    @classmethod
    def _check_envelope(
        cls, data: Mapping[str, Any], allowed: set[str]
    ) -> None:
        fam = cls.FAMILY
        if not isinstance(data, Mapping):
            raise _fail(fam, f"expected a mapping, got {type(data).__name__}")
        _require(data.get("spec") == fam, fam,
                 f"'spec' key must be {fam!r}, got {data.get('spec')!r}")
        version = data.get("version")
        if version != cls.VERSION:
            raise _fail(
                fam,
                f"version {version!r} not supported "
                f"(this build speaks version {cls.VERSION})",
            )
        extra = set(data) - allowed - {"spec", "version"}
        _require(not extra, fam, f"unknown keys {sorted(extra)}")

    def _envelope(self) -> dict[str, Any]:
        return {"spec": self.FAMILY, "version": self.VERSION}


# ----------------------------------------------------------------------
# The seven families
# ----------------------------------------------------------------------
@dataclass
class SelectSpec(QuerySpec):
    """Point selection (Section 4.1): points under region constraints.

    Multiple ``polygon``/``rect`` constraints combine under *mode*
    (``"any"`` disjunctive / ``"all"`` conjunctive).  ``circle`` and
    ``halfspace`` constraints must stand alone (they are their own
    utility-operator queries).
    """

    FAMILY = "select"

    dataset: DatasetRef = None
    constraints: tuple[ConstraintSpec, ...] = ()
    mode: str = "any"
    exact: bool = True
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, PointData)
        self.constraints = tuple(
            c if isinstance(c, ConstraintSpec) else ConstraintSpec.from_dict(c)
            for c in self.constraints
        )
        _require(len(self.constraints) > 0, fam,
                 "at least one constraint polygon is required")
        _require(self.mode in ("any", "all"), fam,
                 f"mode must be 'any' or 'all', got {self.mode!r}")
        self.exact = _bool_field(self.exact, fam, "exact")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)
        solo = [c for c in self.constraints if c.kind in ("circle", "halfspace")]
        if solo and len(self.constraints) > 1:
            raise _fail(
                fam,
                f"a {solo[0].kind} constraint must be the only constraint",
            )

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            constraints=[c.to_dict() for c in self.constraints],
            mode=self.mode,
            exact=self.exact,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SelectSpec":
        cls._check_envelope(data, {"dataset", "constraints", "mode", "exact",
                                   "window", "resolution", "tiling",
                                   "deadline_ms"})
        _require("dataset" in data and "constraints" in data, cls.FAMILY,
                 "missing keys among ['constraints', 'dataset']")
        constraints = data["constraints"]
        _require(isinstance(constraints, Sequence), cls.FAMILY,
                 "constraints must be a list")
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            constraints=tuple(
                ConstraintSpec.from_dict(c) for c in constraints
            ),
            mode=data.get("mode", "any"),
            exact=data.get("exact", True),
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


#: Geometry-record selection sub-kinds (each matches one legacy frontend).
GEOMETRY_SELECT_KINDS = ("polygons", "lines", "objects")


@dataclass
class GeometrySpec(QuerySpec):
    """Geometry-record selection (Figure 6): records INTERSECTS a query
    polygon.  *kind* pins the record type contract: ``polygons`` and
    ``lines`` are homogeneous; ``objects`` accepts any geometry mix and
    decomposes per record (Figure 3)."""

    FAMILY = "geometry"

    dataset: DatasetRef = None
    query: Polygon | None = None
    kind: str = "objects"
    exact: bool = True
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, GeometryData)
        _require(
            self.kind in GEOMETRY_SELECT_KINDS, fam,
            f"unknown kind {self.kind!r} "
            f"(use one of {', '.join(GEOMETRY_SELECT_KINDS)})",
        )
        if isinstance(self.query, Mapping):
            self.query = _geometry_from_dict(self.query, fam)  # type: ignore[assignment]
        _require(isinstance(self.query, Polygon), fam,
                 "query must be a Polygon")
        if isinstance(self.dataset, GeometryData):
            want = {"polygons": Polygon, "lines": LineString}.get(self.kind)
            if want is not None:
                for i, geom in enumerate(self.dataset.geometries):
                    _require(
                        isinstance(geom, want), fam,
                        f"kind {self.kind!r} requires {want.__name__} "
                        f"records; record {i} is {type(geom).__name__}",
                    )
        self.exact = _bool_field(self.exact, fam, "exact")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        assert isinstance(self.query, Polygon)
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            query=to_geojson(self.query),
            kind=self.kind,
            exact=self.exact,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeometrySpec":
        cls._check_envelope(data, {"dataset", "query", "kind", "exact",
                                   "window", "resolution", "tiling",
                                   "deadline_ms"})
        missing = {"dataset", "query"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            query=_geometry_from_dict(data["query"], cls.FAMILY),  # type: ignore[arg-type]
            kind=data.get("kind", "objects"),
            exact=data.get("exact", True),
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


#: Join kinds (the paper's three join types, Section 4.2).
JOIN_KINDS = ("points-polygons", "polygons-polygons", "distance")


@dataclass
class JoinSpec(QuerySpec):
    """Spatial join (Section 4.2): Type I (points x polygons), Type II
    (polygons x polygons), or Type III (distance join, RHS points
    become circles)."""

    FAMILY = "join"

    kind: str = "points-polygons"
    left: DatasetRef = None
    right: DatasetRef = None
    distance: float | None = None
    exact: bool = True
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        _require(self.kind in JOIN_KINDS, fam,
                 f"unknown kind {self.kind!r} "
                 f"(use one of {', '.join(JOIN_KINDS)})")
        if self.kind == "points-polygons":
            self.left = _validate_dataset(self.left, fam, PointData)
            self.right = _validate_dataset(self.right, fam, GeometryData)
        elif self.kind == "polygons-polygons":
            self.left = _validate_dataset(self.left, fam, GeometryData)
            self.right = _validate_dataset(self.right, fam, GeometryData)
        else:
            self.left = _validate_dataset(self.left, fam, PointData)
            self.right = _validate_dataset(self.right, fam, PointData)
        if self.kind == "distance":
            _require(self.distance is not None, fam,
                     "distance join requires a distance")
            dist = _finite_float(self.distance, fam, "distance")
            _require(dist > 0, fam, "join distance must be positive")
            self.distance = dist
        else:
            _require(self.distance is None, fam,
                     f"{self.kind} join takes no distance")
        for side, name in ((self.left, "left"), (self.right, "right")):
            if isinstance(side, GeometryData):
                for i, geom in enumerate(side.geometries):
                    _require(isinstance(geom, Polygon), fam,
                             f"{name} record {i} must be a Polygon, "
                             f"got {type(geom).__name__}")
        self.exact = _bool_field(self.exact, fam, "exact")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        out.update(
            kind=self.kind,
            left=_dataset_to_dict(self.left),
            right=_dataset_to_dict(self.right),
            distance=self.distance,
            exact=self.exact,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JoinSpec":
        cls._check_envelope(data, {"kind", "left", "right", "distance",
                                   "exact", "window", "resolution", "tiling",
                                   "deadline_ms"})
        missing = {"left", "right"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        return cls(
            kind=data.get("kind", "points-polygons"),
            left=_dataset_from_dict(data["left"], cls.FAMILY),
            right=_dataset_from_dict(data["right"], cls.FAMILY),
            distance=data.get("distance"),
            exact=data.get("exact", True),
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


#: Aggregates the engine computes (Section 4.3).
AGGREGATES = ("count", "sum", "avg", "min", "max")


def _check_unique_group_ids(ids, family: str) -> None:
    """Duplicate group ids would silently merge aggregation groups (or
    fail deep in the rasterjoin kernel) — reject them eagerly so batch
    errors can still name the offending member."""
    if ids is None:
        return
    seen: set[int] = set()
    dupes: set[int] = set()
    for i in ids:
        (dupes if i in seen else seen).add(int(i))
    _require(not dupes, family,
             f"duplicate polygon ids {sorted(dupes)}")


@dataclass
class AggregateSpec(QuerySpec):
    """Group-by-over-join aggregation (Section 4.3): aggregate point
    values per containing polygon."""

    FAMILY = "aggregate"

    dataset: DatasetRef = None
    polygons: DatasetRef = None
    aggregate: str = "count"
    exact: bool = True
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, PointData)
        self.polygons = _validate_dataset(self.polygons, fam, GeometryData)
        _require(self.aggregate in AGGREGATES, fam,
                 f"unsupported aggregate {self.aggregate!r} "
                 f"(use one of {', '.join(AGGREGATES)})")
        if isinstance(self.polygons, GeometryData):
            for i, geom in enumerate(self.polygons.geometries):
                _require(isinstance(geom, Polygon), fam,
                         f"group record {i} must be a Polygon, "
                         f"got {type(geom).__name__}")
            _check_unique_group_ids(self.polygons.ids, fam)
        self.exact = _bool_field(self.exact, fam, "exact")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            polygons=_dataset_to_dict(self.polygons),
            aggregate=self.aggregate,
            exact=self.exact,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AggregateSpec":
        cls._check_envelope(data, {"dataset", "polygons", "aggregate",
                                   "exact", "window", "resolution", "tiling",
                                   "deadline_ms"})
        missing = {"dataset", "polygons"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            polygons=_dataset_from_dict(data["polygons"], cls.FAMILY),
            aggregate=data.get("aggregate", "count"),
            exact=data.get("exact", True),
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


@dataclass
class KnnSpec(QuerySpec):
    """k-nearest-neighbor query (Section 4.4)."""

    FAMILY = "knn"

    dataset: DatasetRef = None
    query_point: tuple[float, float] = (0.0, 0.0)
    k: int = 1
    window: WindowSpec | None = None
    resolution: Any = None
    max_iterations: int = 64
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, PointData)
        self.query_point = _point2(self.query_point, fam, "query_point")
        self.k = _int_field(self.k, fam, "k")
        _require(self.k >= 1, fam,
                 f"k must be a positive integer, got {self.k}")
        self.max_iterations = _int_field(
            self.max_iterations, fam, "max_iterations"
        )
        _require(self.max_iterations >= 1, fam,
                 "max_iterations must be a positive integer")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            query_point=list(self.query_point),
            k=self.k,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
            max_iterations=self.max_iterations,
        )
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KnnSpec":
        cls._check_envelope(data, {"dataset", "query_point", "k", "window",
                                   "resolution", "max_iterations",
                                   "deadline_ms"})
        missing = {"dataset", "query_point", "k"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        iterations = data.get("max_iterations", 64)
        if isinstance(iterations, int) and iterations > MAX_PARSED_ITERATIONS:
            raise _fail(
                cls.FAMILY,
                f"max_iterations {iterations} exceeds the "
                f"{MAX_PARSED_ITERATIONS} cap for specs parsed from dicts",
            )
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            query_point=data["query_point"],
            k=data["k"],
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            max_iterations=data.get("max_iterations", 64),
            deadline_ms=data.get("deadline_ms"),
        )


@dataclass
class VoronoiSpec(QuerySpec):
    """The ``ComputeVoronoi`` stored procedure (Section 4.5).

    Unlike the selection families, the window is part of the query
    definition (the diagram is computed over it), so it is required.
    """

    FAMILY = "voronoi"

    dataset: DatasetRef = None
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, PointData)
        self.window = _window_field(self.window, fam)
        _require(self.window is not None, fam,
                 "a window is required (the diagram is computed over it)")
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        assert self.window is not None
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            window=self.window.to_dict(),
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VoronoiSpec":
        cls._check_envelope(data, {"dataset", "window", "resolution",
                                   "tiling", "deadline_ms"})
        missing = {"dataset", "window"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            window=_window_field(data["window"], cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


@dataclass
class OdSpec(QuerySpec):
    """Origin-destination double selection (Section 4.6, Figure 8(a))."""

    FAMILY = "od"

    dataset: DatasetRef = None
    q1: Polygon | None = None
    q2: Polygon | None = None
    exact: bool = True
    window: WindowSpec | None = None
    resolution: Any = None
    tiling: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        fam = self.FAMILY
        self.dataset = _validate_dataset(self.dataset, fam, TripData)
        for name in ("q1", "q2"):
            value = getattr(self, name)
            if isinstance(value, Mapping):
                value = _geometry_from_dict(value, fam)
                setattr(self, name, value)
            _require(isinstance(value, Polygon), fam,
                     f"{name} must be a Polygon")
        self.exact = _bool_field(self.exact, fam, "exact")
        self.window = _window_field(self.window, fam)
        self.resolution = _resolution_field(self.resolution, fam)
        self.tiling = _tiling_field(self.tiling, fam)
        self.deadline_ms = _deadline_field(self.deadline_ms, fam)

    def to_dict(self) -> dict[str, Any]:
        out = self._envelope()
        assert isinstance(self.q1, Polygon) and isinstance(self.q2, Polygon)
        out.update(
            dataset=_dataset_to_dict(self.dataset),
            q1=to_geojson(self.q1),
            q2=to_geojson(self.q2),
            exact=self.exact,
            window=self.window.to_dict() if self.window else None,
            resolution=_resolution_to_dict(self.resolution),
        )
        if self.tiling is not None:
            out["tiling"] = self.tiling
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OdSpec":
        cls._check_envelope(data, {"dataset", "q1", "q2", "exact", "window",
                                   "resolution", "tiling", "deadline_ms"})
        missing = {"dataset", "q1", "q2"} - set(data)
        _require(not missing, cls.FAMILY, f"missing keys {sorted(missing)}")
        return cls(
            dataset=_dataset_from_dict(data["dataset"], cls.FAMILY),
            q1=_geometry_from_dict(data["q1"], cls.FAMILY),  # type: ignore[arg-type]
            q2=_geometry_from_dict(data["q2"], cls.FAMILY),  # type: ignore[arg-type]
            exact=data.get("exact", True),
            window=_window_field(data.get("window"), cls.FAMILY),
            resolution=_resolution_from_dict(
                data.get("resolution"), cls.FAMILY
            ),
            tiling=data.get("tiling"),
            deadline_ms=data.get("deadline_ms"),
        )


#: family name -> spec class, the service boundary's dispatch table.
SPEC_FAMILIES: dict[str, type[QuerySpec]] = {
    cls.FAMILY: cls
    for cls in (SelectSpec, GeometrySpec, JoinSpec, AggregateSpec,
                KnnSpec, VoronoiSpec, OdSpec)
}


def spec_from_dict(data: Mapping[str, Any]) -> QuerySpec:
    """Parse any family's spec dict (the inverse of ``spec.to_dict()``).

    Dispatches on the ``"spec"`` key; unknown families, bad versions,
    unknown keys and malformed payloads raise :class:`SpecError`.
    """
    if not isinstance(data, Mapping):
        raise SpecError(
            f"spec must be a mapping, got {type(data).__name__}"
        )
    family = data.get("spec")
    if family not in SPEC_FAMILIES:
        known = ", ".join(sorted(SPEC_FAMILIES))
        raise SpecError(
            f"unknown spec family {family!r} (known families: {known})"
        )
    return SPEC_FAMILIES[family].from_dict(data)
