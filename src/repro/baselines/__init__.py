"""Baselines the paper's evaluation compares against (Section 6).

- :mod:`repro.baselines.cpu_pip` — the single-threaded CPU baseline:
  a scalar ray-casting PIP test per (point, polygon) pair;
- :mod:`repro.baselines.cpu_parallel` — the parallel-CPU (OpenMP-role)
  baseline: the same tests chunked across workers;
- :mod:`repro.baselines.gpu_baseline` — the traditional GPU approach:
  all points x all edges tested in one data-parallel pass (the
  vectorized port of the custom GPU solutions the paper cites);
- :mod:`repro.baselines.join_baselines` — nested-loop and
  index-filtered join / join-then-aggregate baselines.

Per the paper's experimental setup, all baselines implement only the
*refinement* step (PIP tests); the filtering stage is assumed upstream.
"""

from repro.baselines.cpu_pip import cpu_select, cpu_select_multi
from repro.baselines.cpu_parallel import parallel_cpu_select
from repro.baselines.gpu_baseline import gpu_baseline_select, gpu_baseline_select_multi
from repro.baselines.join_baselines import (
    indexed_join_aggregate,
    nested_loop_join,
    nested_loop_join_aggregate,
)

__all__ = [
    "cpu_select",
    "cpu_select_multi",
    "gpu_baseline_select",
    "gpu_baseline_select_multi",
    "indexed_join_aggregate",
    "nested_loop_join",
    "nested_loop_join_aggregate",
    "parallel_cpu_select",
]
