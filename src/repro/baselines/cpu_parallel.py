"""Parallel CPU baseline (the paper's OpenMP comparator).

Chunks the scalar PIP loop of :mod:`repro.baselines.cpu_pip` across a
``multiprocessing`` pool.  Fork start-up and pickling overhead make
tiny inputs slower than single-threaded — exactly the regime where the
paper's OpenMP baseline also pays its coordination tax — while large
inputs approach ``n_workers`` speedup over one thread.

For deterministic environments without fork (or when *processes* = 1)
an in-process chunked fallback runs the identical code path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

import numpy as np

from repro.geometry.primitives import Polygon
from repro.baselines.cpu_pip import cpu_select_multi

# Module-level state for pool workers (set by the initializer; fork
# semantics give each worker a copy).
_WORKER_STATE: dict = {}


def _init_worker(ring_data: list, mode: str) -> None:
    _WORKER_STATE["rings"] = ring_data
    _WORKER_STATE["mode"] = mode


def _worker_chunk(args: tuple) -> list[int]:
    offset, xs, ys = args
    polygons = [
        Polygon(shell, holes) for shell, holes in _WORKER_STATE["rings"]
    ]
    hits = cpu_select_multi(xs, ys, polygons, mode=_WORKER_STATE["mode"])
    return (hits + offset).tolist()


def parallel_cpu_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Polygon | Sequence[Polygon],
    mode: str = "any",
    processes: int | None = None,
) -> np.ndarray:
    """Indices of selected points using a pool of worker processes.

    Parameters
    ----------
    processes:
        Worker count; defaults to the CPU count.  ``1`` forces the
        in-process chunked fallback (no pool, deterministic).
    """
    polys = [polygons] if isinstance(polygons, Polygon) else list(polygons)
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if processes is None:
        processes = os.cpu_count() or 1
    n = len(xs)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    chunk = max((n + processes - 1) // processes, 1)
    pieces = [
        (start, xs[start : start + chunk], ys[start : start + chunk])
        for start in range(0, n, chunk)
    ]

    if processes <= 1 or len(pieces) <= 1:
        out: list[int] = []
        for offset, cxs, cys in pieces:
            hits = cpu_select_multi(cxs, cys, polys, mode=mode)
            out.extend((hits + offset).tolist())
        return np.asarray(sorted(out), dtype=np.int64)

    ring_data = [
        (p.shell.coords, [h.coords for h in p.holes]) for p in polys
    ]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(ring_data, mode),
    ) as pool:
        results = pool.map(_worker_chunk, pieces)
    out = [i for part in results for i in part]
    return np.asarray(sorted(out), dtype=np.int64)
