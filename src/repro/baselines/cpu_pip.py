"""Single-threaded CPU baseline: scalar PIP refinement.

This plays the role of the paper's C++ CPU implementation: one
ray-casting point-in-polygon test per point, executed as a plain scalar
loop with no vectorization.  Against it, every data-parallel approach
shows the two-plus orders of magnitude of Figure 9 — the interpreted
scalar loop stands in for the clock-for-clock gap between one CPU
thread and thousands of GPU lanes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.primitives import Polygon


def _point_in_ring_scalar(
    px: float, py: float, coords: list[tuple[float, float]]
) -> bool:
    """Branchy scalar ray cast (the classic CPU inner loop)."""
    inside = False
    n = len(coords)
    j = n - 1
    for i in range(n):
        xi, yi = coords[i]
        xj, yj = coords[j]
        if (yi > py) != (yj > py):
            x_cross = (xj - xi) * (py - yi) / (yj - yi) + xi
            if px < x_cross:
                inside = not inside
        j = i
    return inside


def point_in_polygon_scalar(px: float, py: float, polygon: Polygon) -> bool:
    """Scalar containment honouring holes (no boundary special-casing:
    the baseline mirrors the typical epsilon-free production test)."""
    if not _point_in_ring_scalar(px, py, polygon.shell.coords):
        return False
    for hole in polygon.holes:
        if _point_in_ring_scalar(px, py, hole.coords):
            return False
    return True


def cpu_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
) -> np.ndarray:
    """Indices of points inside *polygon* — one scalar test per point."""
    shell = polygon.shell.coords
    holes = [h.coords for h in polygon.holes]
    out: list[int] = []
    for i in range(len(xs)):
        px = float(xs[i])
        py = float(ys[i])
        if not _point_in_ring_scalar(px, py, shell):
            continue
        in_hole = False
        for hole in holes:
            if _point_in_ring_scalar(px, py, hole):
                in_hole = True
                break
        if not in_hole:
            out.append(i)
    return np.asarray(out, dtype=np.int64)


def cpu_select_multi(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    mode: str = "any",
) -> np.ndarray:
    """Disjunctive/conjunctive multi-polygon selection, scalar tests.

    The traditional strategy the paper contrasts with blending: each
    point is tested against *each* constraint polygon, so work grows
    linearly with the number (and complexity) of constraints.
    """
    rings = [
        (p.shell.coords, [h.coords for h in p.holes]) for p in polygons
    ]
    need_all = mode == "all"
    out: list[int] = []
    for i in range(len(xs)):
        px = float(xs[i])
        py = float(ys[i])
        hits = 0
        for shell, holes in rings:
            inside = _point_in_ring_scalar(px, py, shell)
            if inside:
                for hole in holes:
                    if _point_in_ring_scalar(px, py, hole):
                        inside = False
                        break
            if inside:
                hits += 1
                if not need_all:
                    break
        if (hits > 0) if not need_all else (hits == len(rings)):
            out.append(i)
    return np.asarray(out, dtype=np.int64)
