"""Traditional GPU baseline: data-parallel per-point PIP tests.

The custom GPU approaches the paper compares against ([11] and the
GPU ports of the classic algorithms) parallelize the *same* algorithm
the CPU runs: every point tests against every polygon edge, one thread
per point.  The NumPy port below has the identical work shape — an
``O(n_points x n_edges)`` fully-vectorized crossing count — so its
scaling with polygon count and complexity matches the baseline curves
of Figures 9 and 10: work grows with every extra constraint polygon
and with every extra vertex, unlike the canvas algebra whose per-point
cost is one texture gather.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon


def gpu_baseline_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
    batch: int = 262_144,
) -> np.ndarray:
    """Indices of points inside *polygon*, all tested in parallel.

    Points are processed in bounded batches — the analogue of GPU
    thread-block dispatch, and a guard against materializing a
    ``points x edges`` matrix that outgrows memory.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    hits: list[np.ndarray] = []
    for start in range(0, len(xs), batch):
        sl = slice(start, start + batch)
        inside = points_in_polygon(xs[sl], ys[sl], polygon)
        hits.append(np.nonzero(inside)[0] + start)
    if not hits:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(hits)


def gpu_baseline_select_multi(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    mode: str = "any",
    batch: int = 262_144,
) -> np.ndarray:
    """Multi-constraint selection, one full PIP pass per polygon.

    This is the "more PIP tests" cost the paper calls out: each
    additional constraint polygon re-tests every point, so runtime
    scales with the constraint count — the divergence from the canvas
    approach that Figure 9(c)/(d) measures.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    if not polys:
        return np.empty(0, dtype=np.int64)
    hits: list[np.ndarray] = []
    for start in range(0, len(xs), batch):
        sl = slice(start, start + batch)
        counts = np.zeros(len(xs[sl]), dtype=np.int64)
        for poly in polys:
            counts += points_in_polygon(xs[sl], ys[sl], poly)
        keep = counts >= 1 if mode == "any" else counts == len(polys)
        hits.append(np.nonzero(keep)[0] + start)
    return np.concatenate(hits)
