"""Join and join-aggregation baselines.

The traditional plan for spatial aggregation — "a spatial join of the
points and polygons followed by the aggregation of the join results"
(Section 1) — in two flavours: a nested loop over (polygon, point)
pairs and an R-tree-filtered variant.  Both produce exact results and
serve as ground truth and cost comparators for the RasterJoin-plan
ablation (DESIGN.md experiment E15/A3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.geometry.bbox import BoundingBox


def nested_loop_join(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    polygon_ids: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """Exact Type I join pairs via vectorized nested loops."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    ids = (
        list(polygon_ids)
        if polygon_ids is not None
        else list(range(len(polygons)))
    )
    pairs: list[tuple[int, int]] = []
    for poly, pid in zip(polygons, ids):
        inside = points_in_polygon(xs, ys, poly)
        pairs.extend((int(i), int(pid)) for i in np.nonzero(inside)[0])
    pairs.sort()
    return pairs


def nested_loop_join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
) -> dict[int, float]:
    """Join-then-aggregate: materialize pairs, then group-by reduce."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    vals = (
        np.asarray(values, dtype=np.float64)
        if values is not None
        else np.zeros(len(xs), dtype=np.float64)
    )
    ids = (
        list(polygon_ids)
        if polygon_ids is not None
        else list(range(len(polygons)))
    )
    out: dict[int, float] = {}
    for poly, pid in zip(polygons, ids):
        inside = points_in_polygon(xs, ys, poly)
        n = int(inside.sum())
        if aggregate == "count":
            out[int(pid)] = float(n)
        elif aggregate == "sum":
            out[int(pid)] = float(vals[inside].sum())
        elif aggregate == "avg":
            out[int(pid)] = float(vals[inside].mean()) if n else 0.0
        elif aggregate == "min":
            out[int(pid)] = float(vals[inside].min()) if n else float("inf")
        elif aggregate == "max":
            out[int(pid)] = float(vals[inside].max()) if n else float("-inf")
        else:
            raise ValueError(f"unsupported aggregate {aggregate!r}")
    return out


def indexed_join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    grid: int = 64,
) -> dict[int, float]:
    """Index-filtered join-then-aggregate.

    Points are bulk-loaded into a grid index; each polygon only tests
    the points its MBR admits — the classic filter/refine pipeline the
    paper describes as the state of the art.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    vals = (
        np.asarray(values, dtype=np.float64)
        if values is not None
        else np.zeros(len(xs), dtype=np.float64)
    )
    ids = (
        list(polygon_ids)
        if polygon_ids is not None
        else list(range(len(polygons)))
    )
    if len(xs) == 0:
        return {int(pid): 0.0 for pid in ids}
    window = BoundingBox(
        float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())
    ).expand(1e-9)
    index = GridIndex(window, grid, grid)
    index.bulk_load_points(xs, ys)

    out: dict[int, float] = {}
    for poly, pid in zip(polygons, ids):
        candidates = np.asarray(index.query(poly.bounds), dtype=np.int64)
        if len(candidates) == 0:
            out[int(pid)] = 0.0 if aggregate in ("count", "sum", "avg") else (
                float("inf") if aggregate == "min" else float("-inf")
            )
            continue
        inside = points_in_polygon(xs[candidates], ys[candidates], poly)
        sel = candidates[inside]
        n = len(sel)
        if aggregate == "count":
            out[int(pid)] = float(n)
        elif aggregate == "sum":
            out[int(pid)] = float(vals[sel].sum())
        elif aggregate == "avg":
            out[int(pid)] = float(vals[sel].mean()) if n else 0.0
        elif aggregate == "min":
            out[int(pid)] = float(vals[sel].min()) if n else float("inf")
        elif aggregate == "max":
            out[int(pid)] = float(vals[sel].max()) if n else float("-inf")
        else:
            raise ValueError(f"unsupported aggregate {aggregate!r}")
    return out


def rtree_filter_candidates(
    xs: np.ndarray,
    ys: np.ndarray,
    box: BoundingBox,
    leaf_capacity: int = 32,
) -> np.ndarray:
    """The upstream filtering stage the paper's evaluation assumes.

    Bulk-loads point MBRs into an STR R-tree and returns the indices of
    points inside *box* — used by benchmarks to restrict inputs to the
    query MBR, mirroring the paper's setup ("use as input only taxi
    trips that have their pickup location within this MBR").
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    items = [
        (i, BoundingBox(float(xs[i]), float(ys[i]), float(xs[i]), float(ys[i])))
        for i in range(len(xs))
    ]
    tree = RTree(items, leaf_capacity=leaf_capacity)
    return np.asarray(sorted(tree.query(box)), dtype=np.int64)
