"""Command-line interface: run spatial queries over data files.

A thin adoption layer over the library: load point/geometry data from
CSV (WKT geometry column) or GeoJSON, run a canvas-algebra query, and
print or save the result.

Usage::

    python -m repro select   --data points.csv --query region.geojson
    python -m repro count    --data points.csv --query region.geojson
    python -m repro nearest  --data points.csv --at 40.7,-74.0 -k 5
    python -m repro info     --data points.csv
    python -m repro explain  --data points.csv --query region.geojson
    python -m repro explain  --spec query.json --repeat 3
    python -m repro query    --spec query.json
    python -m repro serve    < specs.jsonl > answers.jsonl
    python -m repro serve    --workers 4 --result-cache-mb 64

``query`` and ``serve`` speak the declarative spec layer
(:mod:`repro.api`): a spec file is the JSON form of one query family's
:class:`~repro.api.specs.QuerySpec` (``{"spec": "select", "version":
1, "dataset": "taxi:pickups?n=50000", ...}``), self-contained
off-process through the dataset registry's reference schemes.
``query`` answers one spec (or a ``{"batch": [...]}`` document);
``serve`` is the JSON-lines loop — one spec per stdin line, one
result-summary + report object per stdout line, errors reported
in-band (``{"ok": false, ...}``) without killing the loop.  ``serve
--workers N`` answers requests concurrently on one shared session
while writing responses in request order (output line k answers
non-blank input line k), and ``--result-cache-mb`` enables the
spec-digest result cache (repeated specs answer without planning;
hits show as plan ``result-cache-hit`` — the library-side knob is
``Session(result_cache_max_bytes=…)``).  ``explain --spec`` runs any
spec file through a fresh engine and prints the plan/cost/cache
report.

``explain`` runs a query through the plan-driven engine and reports
the chosen physical plan, its estimated cost against the alternatives,
the canvas-cache statistics, and the run's buffer-traffic counters
(full-texture copies / allocations / pool reuses / in-place ops from
the ownership-aware expression evaluator).  Every query family routes
through the engine, so ``--mode`` covers them all: ``select``,
``join-aggregate``, ``distance``, ``knn``, ``voronoi`` and ``od``,
each with (at least) two priced physical plans.  Plans that rasterize
constraints (``blended-canvas``, ``join-then-aggregate``,
``rasterjoin``, ``two-stage-canvas``, the geometry blends) serve
repeated runs from the cache; kernel plans (``per-polygon-pip``,
``direct-distance``, ``kdtree-refine``, ``per-pair-pip``) rasterize
nothing, so they legitimately report zero cache traffic (force the
canvas plan to see the cache work).  Plan costs are bbox-aware:
rasterization is clipped to each constraint's pixel bounding box, the
``join-then-aggregate`` gather is prefiltered to each polygon's
clipped bbox, and the ``rasterjoin`` plan runs as a scatter-gather
pass whose constraint coverage the engine memoizes (``--repeat 2``
shows the warm-run cache hits).  Library callers get the matching
knobs directly: ``QueryEngine.execute_batch`` plans a query list
together (shared constraint canvases rasterize once), ``out=`` on the
dense algebra operators elides per-operator texture copies, and
cached canvases are frozen — mutating one raises instead of
corrupting later hits.

Geometry files may be ``.csv`` (with a ``geometry`` WKT column) or
``.geojson`` / ``.json`` FeatureCollections.  The query file's first
polygon is the constraint.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.api import Session, SpecError, handle_request, serve, spec_from_dict
from repro.data.datasets import read_csv, read_geojson
from repro.engine import QueryEngine
from repro.geometry.primitives import Geometry, Point, Polygon
from repro.core.queries import (
    aggregate_over_select,
    default_window,
    knn,
    polygonal_select_objects,
    polygonal_select_points,
)


def _load_file(path: str) -> tuple[list[Geometry], list[dict[str, Any]]]:
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return read_csv(path)
    if suffix in (".geojson", ".json"):
        return read_geojson(path)
    raise SystemExit(f"unsupported file type: {path} (use .csv or .geojson)")


def _load_points(path: str) -> tuple[np.ndarray, np.ndarray, list[dict]]:
    geometries, properties = _load_file(path)
    xs = np.empty(len(geometries))
    ys = np.empty(len(geometries))
    for i, geom in enumerate(geometries):
        if not isinstance(geom, Point):
            raise SystemExit(
                f"{path}: record {i} is {type(geom).__name__}, expected Point"
            )
        xs[i] = geom.x
        ys[i] = geom.y
    return xs, ys, properties


def _load_query_polygon(path: str) -> Polygon:
    geometries, _ = _load_file(path)
    for geom in geometries:
        if isinstance(geom, Polygon):
            return geom
    raise SystemExit(f"{path}: no polygon found to use as the constraint")


def _cmd_select(args: argparse.Namespace) -> int:
    query = _load_query_polygon(args.query)
    geometries, _ = _load_file(args.data)
    if all(isinstance(g, Point) for g in geometries):
        xs = np.array([g.x for g in geometries])  # type: ignore[union-attr]
        ys = np.array([g.y for g in geometries])  # type: ignore[union-attr]
        result = polygonal_select_points(
            xs, ys, query, resolution=args.resolution
        )
    else:
        result = polygonal_select_objects(
            geometries, query, resolution=args.resolution
        )
    payload = {
        "matched": int(len(result.ids)),
        "total": len(geometries),
        "exact_boundary_tests": int(result.n_exact_tests),
        "ids": result.ids.tolist() if args.ids else None,
    }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    query = _load_query_polygon(args.query)
    xs, ys, properties = _load_points(args.data)
    values = None
    aggregate = "count"
    if args.sum_column:
        aggregate = "sum"
        try:
            values = np.array(
                [float(p[args.sum_column]) for p in properties]
            )
        except (KeyError, ValueError) as exc:
            raise SystemExit(
                f"cannot read numeric column {args.sum_column!r}: {exc}"
            ) from exc
    value = aggregate_over_select(
        xs, ys, query, values=values, aggregate=aggregate,
        resolution=args.resolution,
    )
    print(json.dumps({"aggregate": aggregate, "value": value}))
    return 0


def _cmd_nearest(args: argparse.Namespace) -> int:
    xs, ys, _ = _load_points(args.data)
    try:
        qx, qy = (float(v) for v in args.at.split(","))
    except ValueError as exc:
        raise SystemExit("--at expects 'x,y'") from exc
    result = knn(xs, ys, (qx, qy), args.k, resolution=args.resolution)
    d = np.hypot(xs[result.ids] - qx, ys[result.ids] - qy)
    order = np.argsort(d)
    payload = [
        {"id": int(result.ids[i]), "distance": float(d[i])}
        for i in order
    ]
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def _load_query_polygons(path: str) -> list[Polygon]:
    geometries, _ = _load_file(path)
    polygons = [g for g in geometries if isinstance(g, Polygon)]
    if not polygons:
        raise SystemExit(f"{path}: no polygons found to use as constraints")
    return polygons


#: ``explain`` modes that read constraint polygons from ``--query``.
_EXPLAIN_POLYGON_MODES = ("select", "join-aggregate", "od")


def _parse_at(args: argparse.Namespace, xs, ys) -> tuple[float, float]:
    if args.at is None:
        return float(np.mean(xs)), float(np.mean(ys))
    try:
        qx, qy = (float(v) for v in args.at.split(","))
    except ValueError as exc:
        raise SystemExit("--at expects 'x,y'") from exc
    return qx, qy


def _load_spec_document(path: str) -> dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read spec file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SystemExit(f"{path}: spec document must be a JSON object")
    return document


def _cmd_query(args: argparse.Namespace) -> int:
    document = _load_spec_document(args.spec)
    response = handle_request(document, Session())
    if not response.get("ok"):
        raise SystemExit(f"query: {response.get('error')}")
    json.dump(response, sys.stdout, indent=2)
    print()
    return 0


def _validate_serve_workers(
    workers: int, process_workers: int | None
) -> None:
    """One validation path for both serve worker axes.

    Thread workers and process workers share the same machine, so the
    oversubscription check counts them *together*: ``--workers 4
    --process-workers 4`` on a 4-CPU box is 8 execution lanes.  Bad
    counts are errors; oversubscription is legal (threads block on I/O
    too) but flagged before the loop goes quiet reading stdin.
    """
    if workers < 1:
        raise SystemExit("serve: --workers must be at least 1")
    if process_workers is not None and process_workers < 1:
        raise SystemExit("serve: --process-workers must be at least 1")
    import os

    cpus = os.cpu_count() or 1
    total = workers + (process_workers or 0)
    if total > cpus:
        lanes = f"--workers {workers}"
        if process_workers:
            lanes += f" plus --process-workers {process_workers}"
        print(
            f"serve: {lanes} exceeds the "
            f"{cpus} CPU(s) available; extra workers will mostly "
            f"contend rather than add throughput",
            file=sys.stderr,
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    # The traffic boundary: build the hardened default session (file:
    # dataset references disabled), optionally with the spec-digest
    # result cache, and fan requests over a worker pool.
    from repro.api import default_serve_session

    _validate_serve_workers(args.workers, args.process_workers)
    if args.result_cache_mb is not None and args.result_cache_mb <= 0:
        raise SystemExit("serve: --result-cache-mb must be positive")
    if args.window is not None and args.window < args.workers:
        raise SystemExit(
            f"serve: --window must be at least --workers "
            f"({args.workers}), got {args.window}"
        )
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise SystemExit("serve: --deadline-ms must be positive")
    if args.memory_budget_mb is not None and args.memory_budget_mb <= 0:
        raise SystemExit("serve: --memory-budget-mb must be positive")
    if args.max_pending < 1:
        raise SystemExit("serve: --max-pending must be at least 1")
    if args.max_cost is not None and args.max_cost <= 0:
        raise SystemExit("serve: --max-cost must be positive")
    session = default_serve_session(
        result_cache_max_bytes=(
            args.result_cache_mb * 1024 * 1024
            if args.result_cache_mb is not None else None
        ),
        deadline_ms=args.deadline_ms,
        memory_budget_bytes=(
            args.memory_budget_mb * 1024 * 1024
            if args.memory_budget_mb is not None else None
        ),
        process_workers=args.process_workers,
    )
    from repro.resilience import AdmissionController

    admission = AdmissionController(
        max_pending=args.max_pending,
        max_cost=args.max_cost,
        governor=session.memory_governor,
    )
    try:
        serve(sys.stdin, sys.stdout, session, workers=args.workers,
              window=args.window, admission=admission)
    finally:
        # The process backend (if any) holds shared-memory segments
        # and worker processes; tear them down even on a broken pipe.
        session.close()
    return 0


def _cmd_explain_spec(args: argparse.Namespace) -> int:
    # The spec file fully describes the query; silently ignoring
    # query-shaping flags would print a report that contradicts them.
    conflicting = [
        flag for flag, value in (
            ("--data", args.data is not None),
            ("--mode", args.mode != "select"),
            ("--at", args.at is not None),
            ("-k", args.k is not None),
            ("--radius", args.radius is not None),
            ("--resolution", args.resolution is not None),
            ("--dest-data", args.dest_data is not None),
            ("--approx", args.approx),
            ("--query", args.query is not None),
            ("--tiling", args.tiling is not None),
        ) if value
    ]
    if conflicting:
        raise SystemExit(
            f"explain --spec describes the query itself; drop "
            f"{', '.join(conflicting)} (only --plan and --repeat apply)"
        )
    document = _load_spec_document(args.spec)
    force = None if args.plan == "auto" else args.plan
    # A fresh engine so the report and cache statistics cover exactly
    # the runs below.
    engine = QueryEngine()
    session = Session(engine=engine)
    try:
        spec = spec_from_dict(document)
        for _ in range(max(1, args.repeat)):
            session.run(spec, force_plan=force)
    except (SpecError, ValueError) as exc:
        raise SystemExit(f"explain: {exc}") from exc
    print(
        f"# {spec.FAMILY} spec from {args.spec}, "
        f"{max(1, args.repeat)} run(s)"
    )
    print(engine.explain())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.spec is not None:
        return _cmd_explain_spec(args)
    if args.data is None:
        raise SystemExit("explain requires --data (or --spec file.json)")
    # Fill the None-sentinel defaults (see build_parser) for the
    # classic path.
    if args.resolution is None:
        args.resolution = 1024
    if args.k is None:
        args.k = 5
    polygons: list[Polygon] = []
    if args.mode in _EXPLAIN_POLYGON_MODES:
        if args.query is None:
            raise SystemExit(
                f"explain --mode {args.mode} requires --query"
            )
        polygons = _load_query_polygons(args.query)
        if args.mode == "od" and len(polygons) < 2:
            raise SystemExit(
                "explain --mode od needs two polygons in --query "
                "(origin constraint Q1, destination constraint Q2)"
            )
    if args.tiling is not None and args.mode == "knn":
        raise SystemExit(
            "explain --mode knn has no canvas plan to tile; drop --tiling"
        )
    xs, ys, _ = _load_points(args.data)
    force = None if args.plan == "auto" else args.plan
    # A fresh engine so the report and cache statistics cover exactly
    # the runs below.
    engine = QueryEngine()
    try:
        _run_explain_queries(engine, args, xs, ys, polygons, force)
    except ValueError as exc:
        # e.g. a plan name from the wrong query family for --mode.
        raise SystemExit(f"explain: {exc}") from exc
    constraint = (
        f"{len(polygons)} constraint polygon(s)"
        if polygons
        else "no polygon constraints"
    )
    print(
        f"# {args.mode} query over {len(xs)} points, "
        f"{constraint}, "
        f"{max(1, args.repeat)} run(s)"
    )
    print(engine.explain())
    return 0


def _run_explain_queries(engine, args, xs, ys, polygons, force) -> None:
    from repro.geometry.bbox import BoundingBox

    window = default_window(xs, ys, polygons)
    # RasterJoin is approximate by design, so forcing it implies the
    # approximate contract even without --approx.
    exact = not args.approx and force != "rasterjoin"
    if args.mode == "distance":
        cx, cy = _parse_at(args, xs, ys)
        radius = args.radius
        if radius is None:
            radius = 0.25 * max(window.width, window.height)
        window = window.union(
            BoundingBox(cx - radius, cy - radius, cx + radius, cy + radius)
        ).expand(0.01 * radius)
    if args.mode == "od":
        if args.dest_data is None:
            raise SystemExit("explain --mode od requires --dest-data")
        dest_xs, dest_ys, _ = _load_points(args.dest_data)
        if len(dest_xs) != len(xs):
            raise SystemExit(
                "--dest-data must pair one destination per --data point"
            )
        window = default_window(
            np.concatenate([xs, dest_xs]), np.concatenate([ys, dest_ys]),
            polygons,
        )

    for _ in range(max(1, args.repeat)):
        if args.mode == "select":
            engine.select_points(
                xs, ys, polygons, window=window,
                resolution=args.resolution, exact=exact, force_plan=force,
                tiling=args.tiling,
            )
        elif args.mode == "join-aggregate":
            engine.aggregate_points(
                xs, ys, polygons, window=window,
                resolution=args.resolution, exact=exact, force_plan=force,
                tiling=args.tiling,
            )
        elif args.mode == "distance":
            engine.select_distance(
                xs, ys, (cx, cy), radius, window=window,
                resolution=args.resolution, exact=exact, force_plan=force,
                tiling=args.tiling,
            )
        elif args.mode == "knn":
            if not 1 <= args.k <= len(xs):
                raise SystemExit(
                    f"-k must be between 1 and the {len(xs)} data points"
                )
            engine.knn(
                xs, ys, _parse_at(args, xs, ys), args.k,
                window=window, resolution=args.resolution, force_plan=force,
            )
        elif args.mode == "voronoi":
            engine.voronoi(
                np.stack([xs, ys], axis=1), window,
                resolution=args.resolution, force_plan=force,
                tiling=args.tiling,
            )
        else:  # od
            engine.od_select(
                xs, ys, dest_xs, dest_ys, polygons[0], polygons[1],
                window=window, resolution=args.resolution, exact=exact,
                force_plan=force, tiling=args.tiling,
            )


def _cmd_info(args: argparse.Namespace) -> int:
    geometries, properties = _load_file(args.data)
    kinds: dict[str, int] = {}
    for geom in geometries:
        kinds[type(geom).__name__] = kinds.get(type(geom).__name__, 0) + 1
    from repro.geometry.bbox import BoundingBox

    bounds = BoundingBox.union_all([g.bounds for g in geometries])
    payload = {
        "records": len(geometries),
        "geometry_types": kinds,
        "bounds": list(bounds),
        "property_keys": sorted({k for p in properties for k in p}),
    }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial queries via the canvas algebra (SIGMOD'20).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--data", required=True, help="data file (.csv/.geojson)")
        p.add_argument("--resolution", type=int, default=1024,
                       help="canvas resolution (default 1024)")

    p_select = sub.add_parser("select", help="polygonal selection")
    add_common(p_select)
    p_select.add_argument("--query", required=True,
                          help="constraint polygon file")
    p_select.add_argument("--ids", action="store_true",
                          help="include matched record ids in the output")
    p_select.set_defaults(func=_cmd_select)

    p_count = sub.add_parser("count", help="aggregate over a selection")
    add_common(p_count)
    p_count.add_argument("--query", required=True)
    p_count.add_argument("--sum-column", default=None,
                         help="numeric property to SUM instead of COUNT(*)")
    p_count.set_defaults(func=_cmd_count)

    p_nearest = sub.add_parser("nearest", help="k nearest neighbors")
    add_common(p_nearest)
    p_nearest.add_argument("--at", required=True, help="query point 'x,y'")
    p_nearest.add_argument("-k", type=int, default=5)
    p_nearest.set_defaults(func=_cmd_nearest)

    p_query = sub.add_parser(
        "query",
        help="run a declarative query spec (JSON file) through a session",
    )
    p_query.add_argument(
        "--spec", required=True,
        help="spec file: one query family's JSON spec, or a "
             "'{\"batch\": [...]}' document planned as one engine batch",
    )
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="JSON-lines query service: specs on stdin, result "
             "summaries + reports on stdout",
        description=(
            "JSON-lines query service: one spec (or {\"batch\": [...]}) "
            "per stdin line, one result summary + report per stdout "
            "line, errors in-band ({\"ok\": false}). With --workers N "
            "requests execute concurrently on one shared session; "
            "responses are still written in request order (output line "
            "k answers non-blank input line k), with a bounded "
            "in-flight window for backpressure. --result-cache-mb "
            "enables the spec-digest result cache (the library knob is "
            "Session(result_cache_max_bytes=...)): repeated specs "
            "answer from cache, reported as plan 'result-cache-hit'."
        ),
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker threads answering requests concurrently "
             "(default 1 = serial; responses stay in request order)",
    )
    p_serve.add_argument(
        "--process-workers", type=int, default=None,
        help="execute requests in this many worker *processes* "
             "(shared-memory dataset plane; results bit-identical to "
             "serial). Composes with --workers: threads dispatch, "
             "processes execute (default: in-process execution)",
    )
    p_serve.add_argument(
        "--result-cache-mb", type=int, default=None,
        help="enable the spec-digest result cache with this byte "
             "budget in MiB (default: disabled); repeated specs "
             "answer without re-planning",
    )
    p_serve.add_argument(
        "--window", type=int, default=None,
        help="bounded in-flight request window for --workers > 1 "
             "(default: 4x workers; must be at least --workers)",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request execution budget in milliseconds; "
             "a request past its budget aborts at the next engine "
             "checkpoint and answers in-band with code 'deadline' "
             "(a spec's own deadline_ms wins; default: unbounded)",
    )
    p_serve.add_argument(
        "--memory-budget-mb", type=int, default=None,
        help="process byte budget (MiB) shared by the canvas cache, "
             "result cache and buffer pool; under pressure the memory "
             "governor shrinks cache admission, forces tiled plans, "
             "then sheds (default: ungoverned)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=64,
        help="in-flight backlog past which new requests are shed "
             "in-band with code 'shed' (default 64)",
    )
    p_serve.add_argument(
        "--max-cost", type=float, default=None,
        help="admission ceiling on a request's pre-estimated cost "
             "(CostModel units: ~resolution^2 x members); pricier "
             "requests are rejected in-band with code 'too_costly' "
             "before planning (default: no ceiling)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_explain = sub.add_parser(
        "explain",
        help="report the engine's physical plan choice and cache stats",
    )
    p_explain.add_argument(
        "--data", default=None,
        help="data file (.csv/.geojson); required unless --spec is given",
    )
    # None-sentinel defaults so --spec can detect (and reject) flags
    # the spec file already pins; the classic path fills them in below.
    p_explain.add_argument(
        "--resolution", type=int, default=None,
        help="canvas resolution (default 1024)",
    )
    p_explain.add_argument(
        "--spec", default=None,
        help="explain a declarative spec file instead of --data/--query "
             "(any family; --plan and --repeat still apply)",
    )
    p_explain.add_argument(
        "--query", default=None,
        help="constraint polygon file (required for select, "
             "join-aggregate and od; od takes Q1 and Q2 from its first "
             "two polygons)",
    )
    p_explain.add_argument(
        "--mode",
        choices=["select", "join-aggregate", "distance", "knn", "voronoi",
                 "od"],
        default="select",
        help="query family to explain (default: select)",
    )
    p_explain.add_argument(
        "--plan",
        choices=["auto", "blended-canvas", "per-polygon-pip",
                 "rasterjoin", "join-then-aggregate",
                 "circle-canvas", "direct-distance",
                 "canvas-distance-probes", "kdtree-refine",
                 "iterated-value-transform", "blocked-argmin",
                 "two-stage-canvas", "per-pair-pip",
                 "blended-canvas-tiled", "join-then-aggregate-tiled",
                 "circle-canvas-tiled", "blocked-argmin-tiled",
                 "two-stage-canvas-tiled"],
        default="auto",
        help="override the cost-based plan choice (EXPLAIN-style); "
             "'rasterjoin' implies approximate results; the plan must "
             "belong to the --mode family; '*-tiled' plans also need "
             "--tiling",
    )
    p_explain.add_argument(
        "--tiling", type=int, default=None,
        help="shard canvas plans into KxK tiles with a tile-granular "
             "cache (default: whole-frame; repeats show warm tiles)",
    )
    p_explain.add_argument(
        "--at", default=None,
        help="query point 'x,y' for distance/knn modes "
             "(default: the data centroid)",
    )
    p_explain.add_argument(
        "-k", type=int, default=None,
        help="neighbor count for knn mode (default 5)",
    )
    p_explain.add_argument(
        "--radius", type=float, default=None,
        help="radius for distance mode (default: a quarter of the "
             "window's longer side)",
    )
    p_explain.add_argument(
        "--dest-data", default=None,
        help="destination point file for od mode (pairs with --data "
             "by record order)",
    )
    p_explain.add_argument(
        "--repeat", type=int, default=2,
        help="run the query N times (default 2); canvas-building plans "
             "show cache hits on repeats, the PIP plan has none to show",
    )
    p_explain.add_argument(
        "--approx", action="store_true",
        help="run with exact=False; for join-aggregate this makes the "
             "plan choice cost-based (exact results always need the "
             "sample-level plan, so rasterjoin is otherwise inadmissible)",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_info = sub.add_parser("info", help="describe a data file")
    p_info.add_argument("--data", required=True)
    p_info.set_defaults(func=_cmd_info)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
