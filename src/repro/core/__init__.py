"""The paper's contribution: canvas data model + GPU-friendly algebra.

Layering (bottom to top):

- :mod:`repro.core.objectinfo` — the S^3 object-information layout;
- :mod:`repro.core.canvas` / :mod:`repro.core.canvas_set` — dense and
  sparse canvas realizations;
- :mod:`repro.core.blendfuncs` / :mod:`repro.core.masks` — the blend
  functions and mask sets the paper's queries parameterize operators
  with;
- :mod:`repro.core.algebra` — the five fundamental operators plus
  derived and utility operators;
- :mod:`repro.core.expressions` — composable expression trees and
  ASCII plan diagrams;
- :mod:`repro.core.rasterjoin` — Figure 8(c)'s RasterJoin plan;
- :mod:`repro.core.optimizer` — operator-level cost models and plan
  pricing (Section 7).

The standard queries of Section 4 live in :mod:`repro.queries` (this
package re-exports them, and :mod:`repro.core.queries` remains as a
compatibility shim); they execute through the cost-based engine in
:mod:`repro.engine`, which picks a physical plan per query and caches
constraint rasterizations.
"""

from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.blendfuncs import AGG_ADD, PIP_MERGE, POLY_MERGE
from repro.core.masks import (
    FieldCompare,
    IsNull,
    MaskPredicate,
    NotNull,
    mask_point_in_all_polygons,
    mask_point_in_any_polygon,
    mask_point_in_polygon,
    mask_polygon_intersection,
)
from repro.core.algebra import (
    blend,
    circ,
    dissect,
    geometric_transform,
    geometric_transform_by_value,
    halfspace,
    map_canvas,
    mask,
    multiway_blend,
    rect,
    value_transform,
)
from repro.core.procedures import convex_hull_query, spatial_skyline
from repro.core.queries import (
    AggregateResult,
    SelectionResult,
    aggregate_over_select,
    distance_join,
    distance_select,
    halfspace_select,
    join_aggregate,
    knn,
    multi_polygonal_select,
    od_select,
    polygonal_select_lines,
    polygonal_select_objects,
    polygonal_select_points,
    polygonal_select_polygons,
    range_select,
    spatial_join_points_polygons,
    spatial_join_polygons_polygons,
    voronoi,
)
from repro.core.rasterjoin import (
    PolygonCoverage,
    polygon_coverage_cells,
    raster_join_aggregate,
    raster_join_aggregate_legacy,
)

__all__ = [
    "AGG_ADD",
    "AggregateResult",
    "Canvas",
    "CanvasSet",
    "FieldCompare",
    "IsNull",
    "MaskPredicate",
    "NotNull",
    "PIP_MERGE",
    "POLY_MERGE",
    "SelectionResult",
    "aggregate_over_select",
    "blend",
    "circ",
    "dissect",
    "distance_join",
    "distance_select",
    "geometric_transform",
    "geometric_transform_by_value",
    "halfspace",
    "halfspace_select",
    "join_aggregate",
    "knn",
    "map_canvas",
    "mask",
    "mask_point_in_all_polygons",
    "mask_point_in_any_polygon",
    "mask_point_in_polygon",
    "mask_polygon_intersection",
    "multi_polygonal_select",
    "multiway_blend",
    "od_select",
    "convex_hull_query",
    "polygonal_select_lines",
    "polygonal_select_objects",
    "polygonal_select_points",
    "polygonal_select_polygons",
    "spatial_skyline",
    "range_select",
    "PolygonCoverage",
    "polygon_coverage_cells",
    "raster_join_aggregate",
    "raster_join_aggregate_legacy",
    "rect",
    "spatial_join_points_polygons",
    "spatial_join_polygons_polygons",
    "value_transform",
    "voronoi",
]
