"""Hybrid exact-boundary refinement.

The prototype keeps, next to the rasterized canvas, "a simple index
that maps each boundary pixel to the actual vector representation of
the polygon", and consults it whenever a query touches a boundary pixel
— "hence there is no loss in accuracy" (Section 5.1).

:func:`refine_point_samples` applies that rule to a masked
:class:`~repro.core.canvas_set.CanvasSet`: interior-pixel results are
trusted as-is (conservative rasterization guarantees an unflagged pixel
is wholly inside or wholly outside), while boundary-pixel results are
re-tested against the exact vector geometry of the constraint(s).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import MultiPolygon, Polygon
from repro.core.canvas_set import CanvasSet


def _constraint_polygons(geometries: dict) -> list[Polygon]:
    polys: list[Polygon] = []
    for geom in geometries.values():
        if isinstance(geom, Polygon):
            polys.append(geom)
        elif isinstance(geom, MultiPolygon):
            polys.extend(geom.polygons)
    return polys


def refine_point_samples(
    samples: CanvasSet,
    polygons: Sequence[Polygon] | None = None,
    min_containing: int = 1,
) -> tuple[CanvasSet, int]:
    """Exact refinement of boundary-flagged point samples.

    Parameters
    ----------
    samples:
        A masked selection result whose samples are candidate points.
    polygons:
        The constraint polygons; defaults to the polygons recorded in
        the set's hybrid index.
    min_containing:
        Keep a boundary sample when at least this many constraint
        polygons contain it (1 = disjunction, ``len(polygons)`` =
        conjunction), mirroring the mask functions ``Mp'`` of
        Section 5.1.

    Returns
    -------
    (refined, n_exact_tests):
        The refined sample set and the number of exact point-in-polygon
        tests performed (a proxy for refinement cost reported in the
        ablation benchmarks).
    """
    if samples.is_empty():
        return samples, 0
    polys = (
        list(polygons)
        if polygons is not None
        else _constraint_polygons(samples.geometries)
    )
    on_boundary = samples.boundary
    n_boundary = int(on_boundary.sum())
    if n_boundary == 0 or not polys:
        return samples, 0

    bx = samples.xs[on_boundary]
    by = samples.ys[on_boundary]
    containing = np.zeros(n_boundary, dtype=np.int64)
    for poly in polys:
        containing += points_in_polygon(bx, by, poly)
    keep_boundary = containing >= min_containing
    n_tests = n_boundary * len(polys)
    if keep_boundary.all():
        # Nothing to remove: skip the full-column copy.
        return samples, n_tests

    keep = np.ones(samples.n_samples, dtype=bool)
    keep[np.nonzero(on_boundary)[0]] = keep_boundary
    return samples.filter_rows(keep), n_tests


def exact_candidate_mask(
    samples: CanvasSet,
) -> tuple[np.ndarray, np.ndarray]:
    """Split samples into (certain, uncertain) index masks.

    Certain samples sit on unflagged pixels — conservative
    rasterization proves their result.  Uncertain samples sit on
    boundary pixels and need exact testing.
    """
    uncertain = samples.boundary.copy()
    return ~uncertain, uncertain
