"""The five fundamental operators, derived operators and utilities.

Section 3 of the paper.  Every operator consumes and produces canvases
(dense :class:`~repro.core.canvas.Canvas` or sparse
:class:`~repro.core.canvas_set.CanvasSet`), so the algebra is *closed*
and arbitrary compositions type-check.

Operator summary (paper notation on the left):

========================  =====================================================
``G[γ](C)``               :func:`geometric_transform`
``V[f](C)``               :func:`value_transform`
``M[M](C)``               :func:`mask`
``B[⊙](C1, C2)``          :func:`blend`
``D(C)``                  :func:`dissect`
``B*[⊙](C1..Cn)``         :func:`multiway_blend`
``D*[γ](C)``              :func:`map_canvas`
``Circ[(x,y), r]()``      :func:`circ`
``Rect[l1, l2]()``        :func:`rect`
``HS[a, b, c]()``         :func:`halfspace`
========================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.transforms import AffineTransform
from repro.gpu.blendmodes import BlendMode
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.framebuffer import Framebuffer
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.masks import MaskPredicate
from repro.core.objectinfo import DIM_POINT, FIELD_COUNT, channel

AnyCanvas = Union[Canvas, CanvasSet]

#: Positional gamma: R^2 -> R^2 (an affine map or a vectorized callable).
PositionalGamma = Union[
    AffineTransform,
    Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
]
#: Value gamma: S^3 -> R^2 (vectorized over samples).
ValueGamma = Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]


# ----------------------------------------------------------------------
# G — Geometric Transform
# ----------------------------------------------------------------------
def geometric_transform(
    canvas: AnyCanvas,
    gamma: PositionalGamma,
) -> AnyCanvas:
    """``G[γ]`` with positional ``γ : R^2 -> R^2``.

    The geometry moves: ``C'(γ(x, y)) = C(x, y)``.  Dense canvases warp
    their pixel grid (inverse mapping for affine ``γ``, forward scatter
    otherwise); sparse sets rewrite sample positions.
    """
    if isinstance(canvas, CanvasSet):
        if isinstance(gamma, AffineTransform):
            coords = np.stack([canvas.xs, canvas.ys], axis=1)
            moved = gamma.apply_array(coords)
            return canvas.transform_positions(moved[:, 0], moved[:, 1])
        new_xs, new_ys = gamma(canvas.xs, canvas.ys)
        return canvas.transform_positions(
            np.asarray(new_xs, float), np.asarray(new_ys, float)
        )

    out = canvas.blank_like()
    out.geometries = {
        rid: (gamma.apply_geometry(g) if isinstance(gamma, AffineTransform) else g)
        for rid, g in canvas.geometries.items()
    }
    if isinstance(gamma, AffineTransform):
        # Inverse mapping: every target pixel samples its source pixel.
        inv = gamma.inverse()
        tx, ty = out.pixel_center_grids()
        flat = np.stack([tx.ravel(), ty.ravel()], axis=1)
        src = inv.apply_array(flat)
        spx, spy = canvas.world_to_pixel(src[:, 0], src[:, 1])
        rows = np.floor(spy).astype(np.int64)
        cols = np.floor(spx).astype(np.int64)
        data, valid = canvas.texture.gather(rows, cols)
        out.texture.data = data.reshape(out.height, out.width, -1)
        out.texture.valid = valid.reshape(out.height, out.width, -1)
        in_range = (
            (rows >= 0) & (rows < canvas.height)
            & (cols >= 0) & (cols < canvas.width)
        )
        safe_r = np.clip(rows, 0, canvas.height - 1)
        safe_c = np.clip(cols, 0, canvas.width - 1)
        bnd = canvas.boundary[safe_r, safe_c] & in_range
        out.boundary = bnd.reshape(out.height, out.width)
        return out

    # Arbitrary gamma: forward-scatter the non-null pixels.
    rows, cols = canvas.nonnull_pixels()
    wx, wy = canvas.pixel_to_world(rows, cols)
    nx, ny = gamma(wx, wy)
    tpx, tpy = out.world_to_pixel(np.asarray(nx, float), np.asarray(ny, float))
    trows = np.floor(tpy).astype(np.int64)
    tcols = np.floor(tpx).astype(np.int64)
    inside = (
        (trows >= 0) & (trows < out.height)
        & (tcols >= 0) & (tcols < out.width)
    )
    out.texture.data[trows[inside], tcols[inside]] = (
        canvas.texture.data[rows[inside], cols[inside]]
    )
    out.texture.valid[trows[inside], tcols[inside]] = (
        canvas.texture.valid[rows[inside], cols[inside]]
    )
    out.boundary[trows[inside], tcols[inside]] = (
        canvas.boundary[rows[inside], cols[inside]]
    )
    return out


def geometric_transform_by_value(
    canvas: AnyCanvas,
    gamma: ValueGamma,
    scatter_add: bool = True,
) -> AnyCanvas:
    """``G[γ]`` with value-driven ``γ : S^3 -> R^2``.

    ``C'(γ(C(x, y))) = C(x, y)``: each sample moves to a position
    computed from its own information triple.  This is the aggregation
    workhorse — e.g. ``γc(s) = (s[2][0], 0)`` moves every sample to a
    slot indexed by its containing polygon's id (Figure 7).

    On dense canvases, samples landing on the same target pixel are
    merged additively in the point slot when *scatter_add* is set
    (matching the ``+`` blend that always follows this transform in the
    paper's plans).
    """
    if isinstance(canvas, CanvasSet):
        nx, ny = gamma(canvas.data, canvas.valid)
        return canvas.transform_positions(
            np.asarray(nx, float), np.asarray(ny, float)
        )

    rows, cols = canvas.nonnull_pixels()
    data = canvas.texture.data[rows, cols]
    valid = canvas.texture.valid[rows, cols]
    nx, ny = gamma(data, valid)
    out = canvas.blank_like()
    tpx, tpy = out.world_to_pixel(np.asarray(nx, float), np.asarray(ny, float))
    trows = np.floor(tpy).astype(np.int64)
    tcols = np.floor(tpx).astype(np.int64)
    inside = (
        (trows >= 0) & (trows < out.height)
        & (tcols >= 0) & (tcols < out.width)
    )
    trows, tcols = trows[inside], tcols[inside]
    data, valid = data[inside], valid[inside]
    if scatter_add:
        cnt_ch = channel(DIM_POINT, FIELD_COUNT)
        val_ch = cnt_ch + 1
        vpt = valid[:, DIM_POINT]
        np.add.at(out.texture.data[:, :, cnt_ch], (trows, tcols),
                  np.where(vpt, data[:, cnt_ch], 0.0))
        np.add.at(out.texture.data[:, :, val_ch], (trows, tcols),
                  np.where(vpt, data[:, val_ch], 0.0))
        np.logical_or.at(
            out.texture.valid[:, :, DIM_POINT], (trows, tcols), vpt
        )
    else:
        out.texture.data[trows, tcols] = data
        out.texture.valid[trows, tcols] = valid
    return out


# ----------------------------------------------------------------------
# V — Value Transform
# ----------------------------------------------------------------------
def value_transform(
    canvas: AnyCanvas,
    f: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
                tuple[np.ndarray, np.ndarray]],
    *,
    out: Canvas | None = None,
) -> AnyCanvas:
    """``V[f]``: ``C'(x, y) = f(x, y, C(x, y))``.

    *f* receives vectorized ``(xs, ys, data, valid)`` and returns new
    ``(data, valid)``.  On a dense canvas it runs as a full-screen
    fragment pass (tile-by-tile per the canvas device); on a sparse set
    it maps over samples.

    *out* (dense only) designates the canvas that receives the result —
    pass ``out=canvas`` to transform in place, or another compatible
    canvas the caller owns.  The fragment passes overwrite every texture
    row, so no defensive copy of the operand is ever made; callers that
    own their intermediates (e.g. the Voronoi site loop) skip one full
    ``(H, W, 9)`` allocation per pass.
    """
    if isinstance(canvas, CanvasSet):
        if out is not None:
            raise ValueError("out= is only supported for dense canvases")
        return canvas.map_values(f)

    target = _resolve_dense_out(canvas, out, copy_data=False)
    gx, gy = canvas.pixel_center_grids()

    def fragment_pass(rows: slice) -> None:
        data, valid = f(
            gx[rows], gy[rows],
            canvas.texture.data[rows], canvas.texture.valid[rows],
        )
        target.texture.data[rows] = data
        target.texture.valid[rows] = valid

    canvas.device.run_rows(canvas.height, fragment_pass)
    return target


# ----------------------------------------------------------------------
# Copy elision: the out= seam shared by the dense operators
# ----------------------------------------------------------------------
def _resolve_dense_out(
    src: Canvas, out: Canvas | None, copy_data: bool
) -> Canvas:
    """The dense canvas an operator should write into.

    ``out=None`` keeps value semantics (a fresh copy of *src*);
    ``out is src`` runs the operator in place; any other *out* must be
    a compatible canvas the caller owns — its buffers are reused and
    its non-texture state (boundary, hybrid index) is refreshed from
    *src*.  When *copy_data* is false the caller promises to overwrite
    every texture cell, so the texture copy is skipped entirely.
    """
    if out is src:
        return src
    if out is None:
        if copy_data:
            return src.copy()
        target = src.blank_like()
    else:
        if not src.compatible_with(out):
            raise ValueError(
                "out= canvas must share the operand's window/resolution"
            )
        target = out
        if copy_data:
            np.copyto(target.texture.data, src.texture.data)
            np.copyto(target.texture.valid, src.texture.valid)
    np.copyto(target.boundary, src.boundary)
    target.geometries = dict(src.geometries)
    return target


def copy_into(src: Canvas, out: Canvas) -> Canvas:
    """Overwrite *out* with *src*'s full state (one full-texture copy).

    The explicit form of the copy the value-semantics operators pay
    implicitly: ownership-aware evaluators use it to seed a recycled
    buffer from a cached operand before folding into it in place.
    """
    if src is out:
        return out
    if not src.compatible_with(out):
        raise ValueError("copy_into requires a compatible target canvas")
    np.copyto(out.texture.data, src.texture.data)
    np.copyto(out.texture.valid, src.texture.valid)
    np.copyto(out.boundary, src.boundary)
    out.geometries = dict(src.geometries)
    return out


# ----------------------------------------------------------------------
# M — Mask
# ----------------------------------------------------------------------
def mask(
    canvas: AnyCanvas,
    predicate: MaskPredicate,
    *,
    out: Canvas | None = None,
) -> AnyCanvas:
    """``M[M]``: keep points whose triple is in the mask set, null the rest.

    *out* (dense only) receives the result — ``out=canvas`` masks in
    place, any other compatible canvas reuses that canvas's buffers —
    eliding the full-texture copy the default value semantics pay.
    """
    if isinstance(canvas, CanvasSet):
        if out is not None:
            raise ValueError("out= is only supported for dense canvases")
        keep = predicate.test(canvas.data, canvas.valid)
        return canvas.filter_rows(keep)

    keep = predicate.test(canvas.texture.data, canvas.texture.valid)
    target = _resolve_dense_out(canvas, out, copy_data=True)
    target.texture.data[~keep] = 0.0
    target.texture.valid[~keep] = False
    target.boundary &= keep
    return target


# ----------------------------------------------------------------------
# B — Blend
# ----------------------------------------------------------------------
def blend(
    left: AnyCanvas,
    right: Canvas,
    mode: BlendMode,
    *,
    out: Canvas | None = None,
) -> AnyCanvas:
    """``B[⊙](C1, C2)``: merge two canvases under blend function ⊙.

    Dense x dense runs a full-frame blend pass; sparse x dense runs the
    texture-gather path (one fetch per member-canvas sample) — the two
    realizations agree on shared queries (verified by tests).

    *out* (dense x dense only) receives the result — ``out=left``
    blends in place — so executors that own their intermediates skip
    the per-operator full-texture copy.  Never pass a cached or
    otherwise shared canvas as *out*.
    """
    if isinstance(left, CanvasSet):
        if out is not None:
            raise ValueError("out= is only supported for dense blends")
        return left.blend_with_canvas(right, mode)
    if not left.compatible_with(right):
        raise ValueError(
            "dense blend requires canvases with identical window/resolution"
        )
    if out is right and out is not left:
        raise ValueError("out= must not alias the right blend operand")
    target = _resolve_dense_out(left, out, copy_data=True)
    Framebuffer(target.texture, blend=mode, device=left.device).blend_texture(
        right.texture
    )
    target.boundary |= right.boundary
    target.geometries.update(right.geometries)
    return target


def blend_tiled(
    left: CanvasSet,
    grid,
    tile_lookup: Callable,
    mode: BlendMode,
    geometries: dict | None = None,
) -> CanvasSet:
    """``B[⊙](C1, C2)`` with the dense operand materialized per tile.

    The tile-sharded realization of the sparse x dense blend: *grid* is
    a :class:`repro.core.tiling.TileGrid` over the dense operand's
    frame and *tile_lookup* produces (or fetches from cache) the tile
    rasters on demand.  Bit-identical to ``blend(left, stitched, mode)``
    — see :meth:`repro.core.canvas_set.CanvasSet.blend_with_tiles`.
    Only defined for sparse left operands: dense x dense tiling is the
    executor's stitching concern, not an algebra operator.
    """
    if not isinstance(left, CanvasSet):
        raise TypeError("blend_tiled requires a CanvasSet left operand")
    return left.blend_with_tiles(grid, tile_lookup, mode, geometries=geometries)


def multiway_blend(
    canvases: Sequence[Canvas],
    mode: BlendMode,
) -> Canvas:
    """``B*[⊙]``: left fold of :func:`blend` over *canvases*.

    When *mode* is associative the grouping is semantically free
    (Section 3.2); the fold is the canonical order.  The fold owns its
    accumulator, so every step after the initial copy blends in place.
    """
    if not canvases:
        raise ValueError("multiway blend requires at least one canvas")
    out = canvases[0].copy()
    for other in canvases[1:]:
        out = blend(out, other, mode, out=out)  # type: ignore[assignment]
    return out


# ----------------------------------------------------------------------
# D — Dissect
# ----------------------------------------------------------------------
def dissect(canvas: Canvas) -> CanvasSet:
    """``D(C)``: one canvas per non-null point of ``C``.

    The result is columnar (one sample per output canvas) rather than a
    Python list of n dense canvases; Section 3.2's note licenses
    treating the collection itself as the operand of later operators.
    Sample keys are the flattened pixel indices.
    """
    rows, cols = canvas.nonnull_pixels()
    keys = rows * canvas.width + cols
    xs, ys = canvas.pixel_to_world(rows, cols)
    return CanvasSet(
        keys, xs, ys,
        canvas.texture.data[rows, cols].copy(),
        canvas.texture.valid[rows, cols].copy(),
        boundary=canvas.boundary[rows, cols].copy(),
        geometries=dict(canvas.geometries),
    )


def map_canvas(
    canvas: Canvas,
    gamma: ValueGamma | PositionalGamma,
    by_value: bool = False,
) -> CanvasSet:
    """``D*[γ] = G[γ](D(C))`` — dissect then transform (Section 3.2)."""
    pieces = dissect(canvas)
    if by_value:
        return geometric_transform_by_value(pieces, gamma)  # type: ignore[arg-type]
    return geometric_transform(pieces, gamma)  # type: ignore[return-value]


def constant_gamma(xc: float, yc: float) -> PositionalGamma:
    """The constant ``γ(x, y) = (xc, yc)`` used by Map to align canvases."""

    def gamma(xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.full_like(np.asarray(xs, float), xc),
            np.full_like(np.asarray(ys, float), yc),
        )

    return gamma


# ----------------------------------------------------------------------
# Utility operators (Section 3.3)
# ----------------------------------------------------------------------
def circ(
    center: tuple[float, float],
    radius: float,
    window: BoundingBox,
    resolution: Resolution = 512,
    record_id: int = 1,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """``Circ[(x, y), r]()`` — generate a circle canvas."""
    return Canvas.circle(center, radius, window, resolution, record_id, device)


def rect(
    l1: tuple[float, float],
    l2: tuple[float, float],
    window: BoundingBox,
    resolution: Resolution = 512,
    record_id: int = 1,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """``Rect[l1, l2]()`` — generate a rectangle canvas."""
    return Canvas.rectangle(l1, l2, window, resolution, record_id, device)


def halfspace(
    a: float,
    b: float,
    c: float,
    window: BoundingBox,
    resolution: Resolution = 512,
    record_id: int = 1,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """``HS[a, b, c]()`` — generate a half-space canvas."""
    return Canvas.halfspace(a, b, c, window, resolution, record_id, device)


# ----------------------------------------------------------------------
# Aggregation helper built from G and B* (Figure 7's tail)
# ----------------------------------------------------------------------
def aggregate_canvas_set(
    samples: CanvasSet,
    gamma: ValueGamma,
    window: BoundingBox,
    resolution: tuple[int, int],
) -> Canvas:
    """``B*[+](G[γ](samples))`` — transform samples then merge-add.

    The standard aggregation tail: move every sample to its group slot
    (e.g. ``(polygon_id, 0)``) and fold with the ``+`` blend.  Dense
    accumulation happens via scatter-add, the GPU additive-blending
    equivalent.
    """
    moved = geometric_transform_by_value(samples, gamma)
    assert isinstance(moved, CanvasSet)
    return moved.accumulate_by_position(window, resolution)
