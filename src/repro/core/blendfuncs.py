"""The paper's query-specific blend functions over S^3.

Section 4 defines three blend functions used throughout the standard
queries; all three are realized here as vectorized
:class:`~repro.gpu.blendmodes.BlendMode` kernels over the 9-channel
canvas layout of :mod:`repro.core.objectinfo`:

- ``PIP_MERGE`` (the paper's ``⊙``): keeps the 0-primitive slot of the
  left operand and the 2-primitive slot of the right operand — the
  point-in-polygon merge of Figures 1(b) and 5;
- ``POLY_MERGE`` (the paper's ``⊕``): keeps the left id/value of the
  2-primitive slot and *adds* the incidence counts — the
  polygon-intersects-polygon merge of Figure 6;
- ``AGG_ADD`` (the paper's ``+``): sums count and value of the
  0-primitive slot and keeps the right 2-primitive slot — the
  aggregation merge of Figure 7.

They work on any leading shape: ``(H, W)`` pixels for dense blends, or
``(n,)`` rows for the sparse gather path.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.blendmodes import BlendMode
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    channel,
)

_CH_P_ID = channel(DIM_POINT, FIELD_ID)
_CH_P_CNT = channel(DIM_POINT, FIELD_COUNT)
_CH_P_VAL = channel(DIM_POINT, FIELD_VALUE)
_CH_A_ID = channel(DIM_AREA, FIELD_ID)
_CH_A_CNT = channel(DIM_AREA, FIELD_COUNT)
_CH_A_VAL = channel(DIM_AREA, FIELD_VALUE)
_AREA_SLICE = slice(DIM_AREA * 3, DIM_AREA * 3 + 3)
_POINT_SLICE = slice(DIM_POINT * 3, DIM_POINT * 3 + 3)


def _pip_merge(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """⊙ of Section 4.1: s[0] from the left, s[2] from the right."""
    data = np.zeros_like(data1)
    valid = np.zeros_like(valid1)
    data[..., _POINT_SLICE] = data1[..., _POINT_SLICE]
    valid[..., DIM_POINT] = valid1[..., DIM_POINT]
    data[..., _AREA_SLICE] = data2[..., _AREA_SLICE]
    valid[..., DIM_AREA] = valid2[..., DIM_AREA]
    return data, valid


def _poly_merge(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """⊕ of Section 4.1: left id/value, counts added, dims 0/1 nulled."""
    data = np.zeros_like(data1)
    valid = np.zeros_like(valid1)
    v1 = valid1[..., DIM_AREA]
    v2 = valid2[..., DIM_AREA]
    either = v1 | v2
    # id and value follow the left operand where it is valid, else the
    # right (so singleton coverage still carries an id).
    data[..., _CH_A_ID] = np.where(v1, data1[..., _CH_A_ID], data2[..., _CH_A_ID])
    data[..., _CH_A_VAL] = np.where(
        v1, data1[..., _CH_A_VAL], data2[..., _CH_A_VAL]
    )
    data[..., _CH_A_CNT] = (
        np.where(v1, data1[..., _CH_A_CNT], 0.0)
        + np.where(v2, data2[..., _CH_A_CNT], 0.0)
    )
    valid[..., DIM_AREA] = either
    return data, valid


def _agg_add(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """+ of Section 4.3: sum point count/value, keep right area slot."""
    data = np.zeros_like(data1)
    valid = np.zeros_like(valid1)
    v1 = valid1[..., DIM_POINT]
    v2 = valid2[..., DIM_POINT]
    data[..., _CH_P_ID] = 0.0
    data[..., _CH_P_CNT] = (
        np.where(v1, data1[..., _CH_P_CNT], 0.0)
        + np.where(v2, data2[..., _CH_P_CNT], 0.0)
    )
    data[..., _CH_P_VAL] = (
        np.where(v1, data1[..., _CH_P_VAL], 0.0)
        + np.where(v2, data2[..., _CH_P_VAL], 0.0)
    )
    valid[..., DIM_POINT] = v1 | v2
    # Area slot: right operand wins where valid, else left survives —
    # the paper writes s2[2][*], and multiway blending relies on the
    # slot propagating through the fold.
    a2 = valid2[..., DIM_AREA]
    data[..., _AREA_SLICE] = np.where(
        a2[..., None], data2[..., _AREA_SLICE], data1[..., _AREA_SLICE]
    )
    valid[..., DIM_AREA] = valid1[..., DIM_AREA] | a2
    return data, valid


def _line_merge(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Line-in-polygon merge: s[1] from the left, s[2] from the right.

    Section 4's "straightforward to express similar queries for ...
    lines": the same shape as ⊙ with the 0-primitive slot swapped for
    the 1-primitive slot.
    """
    line_slice = slice(DIM_LINE * 3, DIM_LINE * 3 + 3)
    data = np.zeros_like(data1)
    valid = np.zeros_like(valid1)
    data[..., line_slice] = data1[..., line_slice]
    valid[..., DIM_LINE] = valid1[..., DIM_LINE]
    data[..., _AREA_SLICE] = data2[..., _AREA_SLICE]
    valid[..., DIM_AREA] = valid2[..., DIM_AREA]
    return data, valid


PIP_MERGE = BlendMode("pip-merge", _pip_merge)
LINE_MERGE = BlendMode("line-merge", _line_merge)
POLY_MERGE = BlendMode("poly-merge", _poly_merge, associative=True)
AGG_ADD = BlendMode("agg-add", _agg_add, associative=True)

#: Registry of the paper's blend functions by name.
PAPER_MODES: dict[str, BlendMode] = {
    "pip-merge": PIP_MERGE,     # the paper's ⊙
    "line-merge": LINE_MERGE,   # the ⊙ analogue for 1-primitives
    "poly-merge": POLY_MERGE,   # the paper's ⊕
    "agg-add": AGG_ADD,         # the paper's +
}
