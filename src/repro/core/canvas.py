"""The canvas: uniform representation of spatial data (Section 2.2).

A canvas is conceptually a function ``C : R^2 -> S^3``.  The dense
realization here follows the paper's prototype (Section 5.1): a world
window plus a texture whose channels carry the object-information
triples, created on the fly by *rendering* geometry through the
simulated graphics pipeline.  Two extras make results exact despite
discretization, exactly as in the paper:

- **conservative boundary flags** — every pixel touched by a geometry
  boundary is marked, so a pixel is trusted as pure interior/exterior
  only when unflagged;
- a **hybrid index** mapping record ids to their vector geometry, so
  boundary pixels can fall back to exact tests
  (:mod:`repro.core.accuracy`).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LinearRing,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.rasterizer import (
    halfspace_mask,
    polygon_coverage,
    rasterize_segments,
    ring_boundary_cells,
)
from repro.gpu.texture import Texture
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    N_CHANNELS,
    N_GROUPS,
    channel,
)

Resolution = int | tuple[int, int]


def _resolve_resolution(
    window: BoundingBox, resolution: Resolution
) -> tuple[int, int]:
    """Turn a resolution spec into ``(height, width)``.

    An integer fixes the longer window side; the shorter side scales by
    the window aspect ratio (at least one pixel).
    """
    if isinstance(resolution, tuple):
        height, width = resolution
    else:
        size = int(resolution)
        if window.width >= window.height:
            width = size
            height = max(int(round(size * window.height / max(window.width, 1e-300))), 1)
        else:
            height = size
            width = max(int(round(size * window.width / max(window.height, 1e-300))), 1)
    if height < 1 or width < 1:
        raise ValueError("canvas resolution must be positive")
    return height, width


def world_points_to_cells(
    xs: np.ndarray,
    ys: np.ndarray,
    window: BoundingBox,
    height: int,
    width: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin world points into grid cells with *open* upper borders.

    Returns ``(rows, cols, inside)`` where *inside* drops points on or
    past the window's top/right edge.  This is the single source of
    truth for point binning on the render path: ``Canvas.draw_points``
    and the scatter stage of the rasterjoin plan both call it, so their
    pixel attribution can never drift apart (the scatter-gather plan's
    bit-identity depends on that).  Note the *closed*-border variant
    lives in :func:`repro.gpu.rasterizer.points_to_cells` and is not
    interchangeable.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    dx = window.width / width
    dy = window.height / height
    cols = np.floor((xs - window.xmin) / dx).astype(np.int64)
    rows = np.floor((ys - window.ymin) / dy).astype(np.int64)
    inside = (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
    return rows, cols, inside


def clipped_pixel_bbox(
    geometry: Geometry,
    window: BoundingBox,
    height: int,
    width: int,
    pad: int = 2,
) -> tuple[int, int, int, int] | None:
    """Inclusive pixel bounds ``(r0, r1, c0, c1)`` of a geometry's
    conservative raster coverage, or ``None`` when it misses the frame.

    The bounds over-cover by *pad* pixels so they contain the clipped
    interior fill *and* the boundary ribbon of
    :func:`repro.gpu.rasterizer.polygon_coverage` (which flags every
    cell a ring crosses, at most one cell beyond the geometric bbox).
    Used to prefilter per-polygon point gathers: a point outside this
    box can never gather the polygon's coverage, so dropping it first
    is exact.
    """
    bounds = geometry.bounds
    dx = window.width / width
    dy = window.height / height
    c0 = int(np.floor((bounds.xmin - window.xmin) / dx)) - pad
    c1 = int(np.floor((bounds.xmax - window.xmin) / dx)) + pad
    r0 = int(np.floor((bounds.ymin - window.ymin) / dy)) - pad
    r1 = int(np.floor((bounds.ymax - window.ymin) / dy)) + pad
    if c1 < 0 or r1 < 0 or c0 > width - 1 or r0 > height - 1:
        return None
    return (
        max(r0, 0), min(r1, height - 1),
        max(c0, 0), min(c1, width - 1),
    )


class Canvas:
    """A discrete canvas over a world window.

    Attributes
    ----------
    window:
        World-space extent the texture covers.
    texture:
        ``(H, W, 9)`` data channels + per-dimension validity planes.
    boundary:
        ``(H, W)`` conservative boundary flags.
    geometries:
        Hybrid index: record id -> vector geometry for exact
        refinement of boundary pixels.
    device:
        Execution profile for raster passes.
    """

    def __init__(
        self,
        window: BoundingBox,
        resolution: Resolution = 512,
        device: Device = DEFAULT_DEVICE,
    ) -> None:
        if window.width <= 0 or window.height <= 0:
            raise ValueError("canvas window must have positive area")
        self.window = window
        height, width = _resolve_resolution(window, resolution)
        self.texture = Texture(height, width, N_CHANNELS, N_GROUPS)
        self.boundary = np.zeros((height, width), dtype=bool)
        self.geometries: dict[int, Geometry] = {}
        self.device = device
        self._center_grids: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Shape & coordinate mapping
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.texture.height

    @property
    def width(self) -> int:
        return self.texture.width

    @property
    def dx(self) -> float:
        return self.window.width / self.width

    @property
    def dy(self) -> float:
        return self.window.height / self.height

    def world_to_pixel(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Continuous pixel coordinates of world points (col-x, row-y)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        px = (xs - self.window.xmin) / self.dx
        py = (ys - self.window.ymin) / self.dy
        return px, py

    def pixel_to_world(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of pixel centers."""
        rows = np.asarray(rows, dtype=np.float64)
        cols = np.asarray(cols, dtype=np.float64)
        xs = self.window.xmin + (cols + 0.5) * self.dx
        ys = self.window.ymin + (rows + 0.5) * self.dy
        return xs, ys

    def pixel_center_grids(self) -> tuple[np.ndarray, np.ndarray]:
        """World-coordinate grids ``(X, Y)`` of all pixel centers.

        Memoized: the grids depend only on the (immutable) window and
        resolution, so repeated full-screen fragment passes — e.g. the
        per-site :func:`~repro.core.algebra.value_transform` loop of
        the Voronoi query — reuse one read-only broadcast view instead
        of rebuilding both grids per pass.
        """
        grids = getattr(self, "_center_grids", None)
        if grids is None:
            xs = self.window.xmin + (np.arange(self.width) + 0.5) * self.dx
            ys = self.window.ymin + (np.arange(self.height) + 0.5) * self.dy
            grids = (
                np.broadcast_to(xs, (self.height, self.width)),
                np.broadcast_to(ys[:, None], (self.height, self.width)),
            )
            self._center_grids = grids
        return grids

    def _ring_pixels(self, ring: LinearRing) -> np.ndarray:
        px, py = self.world_to_pixel(
            ring.vertex_array()[:, 0], ring.vertex_array()[:, 1]
        )
        return np.stack([px, py], axis=1)

    # ------------------------------------------------------------------
    # Null / copy
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Definition 5: a canvas is empty iff every point maps to ∅."""
        return not bool(self.texture.valid.any())

    def copy(self) -> "Canvas":
        out = Canvas.__new__(Canvas)
        out.window = self.window
        out.texture = self.texture.copy()
        out.boundary = self.boundary.copy()
        out.geometries = dict(self.geometries)
        out.device = self.device
        out._center_grids = getattr(self, "_center_grids", None)
        return out

    def blank_like(self) -> "Canvas":
        """An empty canvas with the same window/resolution/device."""
        out = Canvas.__new__(Canvas)
        out.window = self.window
        out.texture = Texture.like(self.texture)
        out.boundary = np.zeros((self.height, self.width), dtype=bool)
        out.geometries = {}
        out.device = self.device
        out._center_grids = getattr(self, "_center_grids", None)
        return out

    def clear(self) -> "Canvas":
        """Reset to the empty canvas in place (recycled-buffer seam).

        Utility operators that accept an ``out=`` canvas call this to
        discard whatever a pooled buffer previously held: data and
        validity zero out, boundary flags drop, and the hybrid index
        empties.  Returns self.
        """
        self.texture.clear()
        self.boundary.fill(False)
        self.geometries.clear()
        return self

    def compatible_with(self, other: "Canvas") -> bool:
        """Same window and resolution (required by dense binary blends)."""
        return (
            self.window == other.window
            and self.height == other.height
            and self.width == other.width
        )

    # ------------------------------------------------------------------
    # Channel accessors
    # ------------------------------------------------------------------
    def field(self, dim: int, field: int) -> np.ndarray:
        """View of one S^3 channel, shape ``(H, W)``."""
        return self.texture.data[:, :, channel(dim, field)]

    def valid(self, dim: int) -> np.ndarray:
        """Validity plane of primitive dimension *dim*."""
        return self.texture.group_valid(dim)

    def sample(self, x: float, y: float) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate the canvas function at one world point.

        Returns ``(data[9], valid[3])`` — the S^3 triple at the pixel
        containing ``(x, y)``; out-of-window points sample ∅.
        """
        px, py = self.world_to_pixel(np.array([x]), np.array([y]))
        rows = np.floor(py).astype(np.int64)
        cols = np.floor(px).astype(np.int64)
        data, valid = self.texture.gather(rows, cols)
        return data[0], valid[0]

    # ------------------------------------------------------------------
    # Rendering (canvas creation, Definition 6)
    # ------------------------------------------------------------------
    def draw_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ids: np.ndarray | None = None,
        values: np.ndarray | None = None,
        accumulate: bool = True,
    ) -> "Canvas":
        """Render 0-primitives.

        With ``accumulate=True`` (GPU additive blending) the count
        channel sums points landing on the same pixel and the value
        channel sums their attribute values — this single call realizes
        the multiway blend ``B*[+]`` over per-point canvases that the
        RasterJoin plan starts with (Section 5.2).  The id channel
        keeps the id of the *last* point drawn on a pixel, matching the
        paper's note that ids are only meaningful pre-merge.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        n = len(xs)
        ids_arr = (
            np.asarray(ids, dtype=np.float64)
            if ids is not None
            else np.arange(n, dtype=np.float64)
        )
        vals = (
            np.asarray(values, dtype=np.float64)
            if values is not None
            else np.zeros(n, dtype=np.float64)
        )
        rows, cols, inside = world_points_to_cells(
            xs, ys, self.window, self.height, self.width
        )
        rows, cols = rows[inside], cols[inside]
        ids_in, vals_in = ids_arr[inside], vals[inside]

        id_ch = channel(DIM_POINT, FIELD_ID)
        cnt_ch = channel(DIM_POINT, FIELD_COUNT)
        val_ch = channel(DIM_POINT, FIELD_VALUE)
        data = self.texture.data
        if accumulate:
            np.add.at(data[:, :, cnt_ch], (rows, cols), 1.0)
            np.add.at(data[:, :, val_ch], (rows, cols), vals_in)
            data[rows, cols, id_ch] = ids_in
        else:
            data[rows, cols, id_ch] = ids_in
            data[rows, cols, cnt_ch] = 1.0
            data[rows, cols, val_ch] = vals_in
        self.texture.valid[rows, cols, DIM_POINT] = True
        return self

    def draw_polygon(
        self,
        polygon: Polygon,
        record_id: int,
        value: float = 0.0,
        accumulate_count: bool = False,
    ) -> "Canvas":
        """Render a 2-primitive: even-odd interior fill + conservative
        boundary flags + hybrid-index entry.

        With ``accumulate_count=True`` the count channel adds 1 per
        polygon on covered pixels — the ``⊕`` blend used by
        polygon-polygon queries and multi-constraint disjunctions.

        Rasterization is *bbox-clipped*: the even-odd fill and the
        channel writes run inside the polygon's grid-clipped pixel
        bounding box and scatter into the full texture, so the cost
        scales with the geometry's footprint, not the frame size.  The
        covered set is bit-identical to a full-frame fill.
        """
        rings = [self._ring_pixels(polygon.shell)]
        rings.extend(self._ring_pixels(h) for h in polygon.holes)
        r0, c0, covered, brows, bcols = polygon_coverage(
            rings, self.height, self.width, device=self.device
        )
        sub_h, sub_w = covered.shape
        sub = (slice(r0, r0 + sub_h), slice(c0, c0 + sub_w))

        id_ch = channel(DIM_AREA, FIELD_ID)
        cnt_ch = channel(DIM_AREA, FIELD_COUNT)
        val_ch = channel(DIM_AREA, FIELD_VALUE)
        data = self.texture.data
        data[sub[0], sub[1], id_ch][covered] = float(record_id)
        if accumulate_count:
            data[sub[0], sub[1], cnt_ch][covered] += 1.0
        else:
            data[sub[0], sub[1], cnt_ch][covered] = 1.0
        data[sub[0], sub[1], val_ch][covered] = value
        self.texture.valid[sub[0], sub[1], DIM_AREA] |= covered
        self.boundary[brows, bcols] = True
        self.geometries[int(record_id)] = polygon
        return self

    def draw_linestring(
        self, line: LineString, record_id: int, value: float = 0.0
    ) -> "Canvas":
        """Render a 1-primitive with conservative (supercover) coverage."""
        arr = line.vertex_array()
        px, py = self.world_to_pixel(arr[:, 0], arr[:, 1])
        pts = np.stack([px, py], axis=1)
        segments = np.concatenate([pts[:-1], pts[1:]], axis=1)
        rows, cols = rasterize_segments(segments, self.height, self.width)
        id_ch = channel(DIM_LINE, FIELD_ID)
        cnt_ch = channel(DIM_LINE, FIELD_COUNT)
        val_ch = channel(DIM_LINE, FIELD_VALUE)
        self.texture.data[rows, cols, id_ch] = float(record_id)
        self.texture.data[rows, cols, cnt_ch] = 1.0
        self.texture.data[rows, cols, val_ch] = value
        self.texture.valid[rows, cols, DIM_LINE] = True
        self.boundary[rows, cols] = True
        self.geometries[int(record_id)] = line
        return self

    def draw_geometry(
        self, geometry: Geometry, record_id: int, value: float = 0.0
    ) -> "Canvas":
        """Render any geometry — heterogeneous collections included.

        Every primitive of the object carries the *same* record id
        (Figure 3 of the paper: all primitives of one object share its
        id), landing in the S^3 slot of its own dimension.
        """
        if isinstance(geometry, Point):
            return self.draw_points(
                np.array([geometry.x]), np.array([geometry.y]),
                ids=np.array([record_id]), values=np.array([value]),
                accumulate=False,
            )
        if isinstance(geometry, MultiPoint):
            arr = geometry.vertex_array()
            n = len(arr)
            return self.draw_points(
                arr[:, 0], arr[:, 1],
                ids=np.full(n, record_id), values=np.full(n, value),
                accumulate=False,
            )
        if isinstance(geometry, LineString):
            return self.draw_linestring(geometry, record_id, value)
        if isinstance(geometry, MultiLineString):
            for line in geometry.lines:
                self.draw_linestring(line, record_id, value)
            self.geometries[int(record_id)] = geometry
            return self
        if isinstance(geometry, Polygon):
            return self.draw_polygon(geometry, record_id, value)
        if isinstance(geometry, MultiPolygon):
            for poly in geometry.polygons:
                self.draw_polygon(poly, record_id, value)
            self.geometries[int(record_id)] = geometry
            return self
        if isinstance(geometry, GeometryCollection):
            for part in geometry.geometries:
                self.draw_geometry(part, record_id, value)
            self.geometries[int(record_id)] = geometry
            return self
        raise TypeError(f"cannot render {type(geometry).__name__}")

    # ------------------------------------------------------------------
    # Factory constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        window: BoundingBox,
        resolution: Resolution = 512,
        device: Device = DEFAULT_DEVICE,
    ) -> "Canvas":
        """The empty canvas (Definition 5)."""
        return cls(window, resolution, device)

    @classmethod
    def from_polygon(
        cls,
        polygon: Polygon,
        window: BoundingBox,
        resolution: Resolution = 512,
        record_id: int = 1,
        value: float = 0.0,
        device: Device = DEFAULT_DEVICE,
    ) -> "Canvas":
        """Canvas of one polygon record (the query-canvas of Section 4.1)."""
        out = cls(window, resolution, device)
        out.draw_polygon(polygon, record_id, value)
        return out

    @classmethod
    def from_points(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        window: BoundingBox,
        resolution: Resolution = 512,
        ids: np.ndarray | None = None,
        values: np.ndarray | None = None,
        device: Device = DEFAULT_DEVICE,
    ) -> "Canvas":
        """Merged point canvas: ``B*[+]`` over all per-point canvases."""
        out = cls(window, resolution, device)
        out.draw_points(xs, ys, ids=ids, values=values, accumulate=True)
        return out

    # ------------------------------------------------------------------
    # Utility operators (Section 3.3)
    # ------------------------------------------------------------------
    @classmethod
    def circle(
        cls,
        center: tuple[float, float],
        radius: float,
        window: BoundingBox,
        resolution: Resolution = 512,
        record_id: int = 1,
        device: Device = DEFAULT_DEVICE,
        out: "Canvas | None" = None,
    ) -> "Canvas":
        """``Circ[(x, y), r]()`` — canvas of a disk 2-primitive.

        The exact disk is kept in the hybrid index (as a dense regular
        polygon approximation for the vector fallback, plus exact
        center/radius refinement in :mod:`repro.core.accuracy`).

        *out*, when given, is rasterized into instead of a fresh
        allocation: its prior contents are discarded (``clear()``) and
        it must match *window*/*resolution*/*device*.  This is the
        recycling seam the kNN bisection loop threads a pooled buffer
        through — never pass a cached or shared canvas.
        """
        if radius <= 0:
            raise ValueError("circle radius must be positive")
        if out is None:
            out = cls(window, resolution, device)
        else:
            if (
                tuple(out.window) != tuple(window)
                or (out.height, out.width) != _resolve_resolution(window, resolution)
                or out.device != device
            ):
                raise ValueError(
                    "out canvas must match the circle's window, resolution "
                    "and device"
                )
            out.clear()
        cx, cy = center
        pcx, pcy = out.world_to_pixel(np.array([cx]), np.array([cy]))
        pr_x = radius / out.dx
        pr_y = radius / out.dy
        # Interior: pixel centers within the (possibly anisotropic) disk.
        ys = np.arange(out.height, dtype=np.float64) + 0.5
        xs = np.arange(out.width, dtype=np.float64) + 0.5
        norm = (
            ((xs[None, :] - pcx[0]) / pr_x) ** 2
            + ((ys[:, None] - pcy[0]) / pr_y) ** 2
        )
        covered = norm <= 1.0
        # Conservative boundary: cells crossed by the circle — flag the
        # ring where the normalized distance straddles 1 within a cell
        # diagonal.
        cell_margin = (1.0 / pr_x + 1.0 / pr_y)
        near = np.abs(np.sqrt(norm) - 1.0) <= cell_margin
        id_ch = channel(DIM_AREA, FIELD_ID)
        cnt_ch = channel(DIM_AREA, FIELD_COUNT)
        cover_or_near = covered | near
        out.texture.data[:, :, id_ch][cover_or_near] = float(record_id)
        out.texture.data[:, :, cnt_ch][cover_or_near] = 1.0
        out.texture.valid[:, :, DIM_AREA] |= cover_or_near
        out.boundary |= near
        out.geometries[int(record_id)] = _circle_polygon(cx, cy, radius)
        return out

    @classmethod
    def rectangle(
        cls,
        l1: tuple[float, float],
        l2: tuple[float, float],
        window: BoundingBox,
        resolution: Resolution = 512,
        record_id: int = 1,
        device: Device = DEFAULT_DEVICE,
    ) -> "Canvas":
        """``Rect[l1, l2]()`` — canvas of an axis-aligned rectangle."""
        box = BoundingBox(
            min(l1[0], l2[0]), min(l1[1], l2[1]),
            max(l1[0], l2[0]), max(l1[1], l2[1]),
        )
        if box.area <= 0:
            raise ValueError("rectangle must have positive area")
        polygon = Polygon(box.corners)
        return cls.from_polygon(
            polygon, window, resolution, record_id=record_id, device=device
        )

    @classmethod
    def halfspace(
        cls,
        a: float,
        b: float,
        c: float,
        window: BoundingBox,
        resolution: Resolution = 512,
        record_id: int = 1,
        device: Device = DEFAULT_DEVICE,
    ) -> "Canvas":
        """``HS[a, b, c]()`` — canvas of the half space ``ax + by + c < 0``.

        The half space is clipped to the canvas window (the infinite
        region cannot be discretized); the hybrid index stores the
        clipped polygon.
        """
        if a == 0 and b == 0:
            raise ValueError("half space requires a or b nonzero")
        out = cls(window, resolution, device)
        # Transform the inequality to pixel space:
        #  x = xmin + px*dx, y = ymin + py*dy.
        pa = a * out.dx
        pb = b * out.dy
        pc = c + a * window.xmin + b * window.ymin
        covered = halfspace_mask(pa, pb, pc, out.height, out.width)
        id_ch = channel(DIM_AREA, FIELD_ID)
        cnt_ch = channel(DIM_AREA, FIELD_COUNT)
        out.texture.data[:, :, id_ch][covered] = float(record_id)
        out.texture.data[:, :, cnt_ch][covered] = 1.0
        out.texture.valid[:, :, DIM_AREA] |= covered
        # Conservative boundary: cells the line a*x+b*y+c=0 passes through.
        from repro.geometry.clipping import clip_polygon_halfplane

        clipped = clip_polygon_halfplane(window.corners, a, b, c)
        if len(clipped) >= 3:
            poly = Polygon(clipped)
            px_ring = out._ring_pixels(poly.shell)
            br, bc = ring_boundary_cells(px_ring, out.height, out.width)
            out.boundary[br, bc] = True
            out.geometries[int(record_id)] = poly
        return out

    # ------------------------------------------------------------------
    def nonnull_pixels(self) -> tuple[np.ndarray, np.ndarray]:
        """Rows and columns of all non-null pixels."""
        return np.nonzero(self.texture.any_valid())

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<Canvas {self.height}x{self.width} window={tuple(self.window)} "
            f"nonnull={self.texture.nonnull_count()} device={self.device.name}>"
        )


def _circle_polygon(cx: float, cy: float, radius: float, n: int = 128) -> Polygon:
    """Dense regular-polygon approximation of a circle for the hybrid index."""
    angles = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    coords = [
        (cx + radius * float(np.cos(t)), cy + radius * float(np.sin(t)))
        for t in angles
    ]
    return Polygon(coords)
