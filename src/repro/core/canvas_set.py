"""Sparse, columnar collections of per-record canvases.

Section 4 models a data set as *one canvas per record* (``CP = {C1,
..., Cn}``), and the prototype "creates the canvases on the fly"
rather than materializing n full textures (Section 5.1).  This module
is that on-the-fly representation: a :class:`CanvasSet` stores every
non-null sample of every record canvas in structure-of-arrays form —
record key, world position, and the S^3 triple — so operators become
bulk array kernels:

- blending the set with a dense canvas is a *texture gather* at the
  sample positions (GPU texture-fetch semantics);
- the value-driven geometric transform ``G[γ: S^3 -> R^2]`` rewrites
  sample positions from sample data;
- the multiway blend ``B*[+]`` of transformed samples is a
  *scatter-add* into an accumulator canvas (GPU additive blending).

For point data sets there is exactly one sample per record; for
polygon data sets, one sample per covered pixel.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Geometry, Polygon
from repro.gpu.blendmodes import BlendMode
from repro.core.canvas import Canvas, world_points_to_cells
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    N_CHANNELS,
    N_GROUPS,
    channel,
)


class CanvasSet:
    """A columnar multiset of canvas samples across many records.

    Attributes
    ----------
    keys:
        ``(m,)`` int64 — record key of each sample (the paper's
        record-identifying ``id`` stored in ``v0``).
    xs, ys:
        ``(m,)`` float64 — world position of each sample.
    data, valid:
        ``(m, 9)`` float64 and ``(m, 3)`` bool — the S^3 triple.
    boundary:
        ``(m,)`` bool — conservative boundary flag of the sample's
        source pixel (used by exact refinement).
    geometries:
        Hybrid index: record key -> vector geometry (present for
        polygon sets; empty for pure point sets, whose samples are
        already exact).
    """

    def __init__(
        self,
        keys: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        data: np.ndarray,
        valid: np.ndarray,
        boundary: np.ndarray | None = None,
        geometries: dict[int, Geometry] | None = None,
    ) -> None:
        self.keys = np.asarray(keys, dtype=np.int64)
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.data = np.asarray(data, dtype=np.float64)
        self.valid = np.asarray(valid, dtype=bool)
        m = len(self.keys)
        if not (len(self.xs) == len(self.ys) == m and len(self.data) == m
                and len(self.valid) == m):
            raise ValueError("all sample arrays must have equal length")
        if self.data.shape != (m, N_CHANNELS) or self.valid.shape != (m, N_GROUPS):
            raise ValueError("data must be (m, 9) and valid (m, 3)")
        self.boundary = (
            np.asarray(boundary, dtype=bool)
            if boundary is not None
            else np.zeros(m, dtype=bool)
        )
        if len(self.boundary) != m:
            raise ValueError("boundary mask must match sample count")
        self.geometries: dict[int, Geometry] = dict(geometries or {})

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.keys)

    @property
    def n_records(self) -> int:
        return len(np.unique(self.keys)) if len(self.keys) else 0

    def record_keys(self) -> np.ndarray:
        """Sorted unique record keys present in the set."""
        return np.unique(self.keys)

    def field(self, dim: int, field: int) -> np.ndarray:
        """One S^3 channel across all samples, shape ``(m,)``."""
        return self.data[:, channel(dim, field)]

    def is_empty(self) -> bool:
        return self.n_samples == 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(
        xs: np.ndarray,
        ys: np.ndarray,
        ids: np.ndarray | None = None,
        values: np.ndarray | None = None,
    ) -> "CanvasSet":
        """Per-record point canvases (Section 4.1's ``CP``).

        Each record canvas has a single non-null sample carrying
        ``s[0] = (id, 1, value)``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        n = len(xs)
        if len(ys) != n:
            raise ValueError("xs and ys must have equal length")
        keys = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(n, dtype=np.int64)
        )
        vals = (
            np.asarray(values, dtype=np.float64)
            if values is not None
            else np.zeros(n, dtype=np.float64)
        )
        data = np.zeros((n, N_CHANNELS), dtype=np.float64)
        valid = np.zeros((n, N_GROUPS), dtype=bool)
        data[:, channel(DIM_POINT, FIELD_ID)] = keys
        data[:, channel(DIM_POINT, FIELD_COUNT)] = 1.0
        data[:, channel(DIM_POINT, FIELD_VALUE)] = vals
        valid[:, DIM_POINT] = True
        return CanvasSet(keys, xs, ys, data, valid)

    @staticmethod
    def from_polygons(
        polygons: Sequence[Polygon],
        frame: Canvas,
        ids: Sequence[int] | None = None,
        values: Sequence[float] | None = None,
    ) -> "CanvasSet":
        """Per-record polygon canvases rendered against *frame*'s grid.

        Each polygon contributes one sample per covered pixel (interior
        plus conservative boundary) carrying ``s[2] = (id, 1, value)``.
        *frame* supplies window, resolution and device; it is not
        modified.
        """
        id_list = list(ids) if ids is not None else list(range(len(polygons)))
        val_list = (
            list(values) if values is not None else [0.0] * len(polygons)
        )
        if len(id_list) != len(polygons) or len(val_list) != len(polygons):
            raise ValueError("ids/values must match polygon count")

        keys_parts: list[np.ndarray] = []
        xs_parts: list[np.ndarray] = []
        ys_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        boundary_parts: list[np.ndarray] = []
        geometries: dict[int, Geometry] = {}

        for polygon, rid, val in zip(polygons, id_list, val_list):
            scratch = frame.blank_like()
            scratch.draw_polygon(polygon, rid, value=val)
            covered = scratch.valid(DIM_AREA)
            rows, cols = np.nonzero(covered)
            wx, wy = scratch.pixel_to_world(rows, cols)
            m = len(rows)
            data = np.zeros((m, N_CHANNELS), dtype=np.float64)
            data[:, channel(DIM_AREA, FIELD_ID)] = rid
            data[:, channel(DIM_AREA, FIELD_COUNT)] = 1.0
            data[:, channel(DIM_AREA, FIELD_VALUE)] = val
            keys_parts.append(np.full(m, rid, dtype=np.int64))
            xs_parts.append(wx)
            ys_parts.append(wy)
            data_parts.append(data)
            boundary_parts.append(scratch.boundary[rows, cols])
            geometries[int(rid)] = polygon

        if not keys_parts:
            return CanvasSet.empty()
        keys = np.concatenate(keys_parts)
        m_total = len(keys)
        valid = np.zeros((m_total, N_GROUPS), dtype=bool)
        valid[:, DIM_AREA] = True
        return CanvasSet(
            keys,
            np.concatenate(xs_parts),
            np.concatenate(ys_parts),
            np.concatenate(data_parts),
            valid,
            boundary=np.concatenate(boundary_parts),
            geometries=geometries,
        )

    @staticmethod
    def from_linestrings(
        lines: Sequence["LineString"],
        frame: Canvas,
        ids: Sequence[int] | None = None,
        values: Sequence[float] | None = None,
    ) -> "CanvasSet":
        """Per-record polyline canvases rendered against *frame*'s grid.

        Each line contributes one sample per supercover-touched pixel
        carrying ``s[1] = (id, 1, value)``.  Samples are *not* flagged
        boundary themselves: after blending with a constraint canvas,
        an unflagged sample proves the line touches a pure-interior
        pixel of the constraint (certain hit), while constraint
        boundary pixels flag the sample for exact refinement.
        """
        from repro.geometry.primitives import LineString

        id_list = list(ids) if ids is not None else list(range(len(lines)))
        val_list = list(values) if values is not None else [0.0] * len(lines)
        if len(id_list) != len(lines) or len(val_list) != len(lines):
            raise ValueError("ids/values must match line count")

        keys_parts: list[np.ndarray] = []
        xs_parts: list[np.ndarray] = []
        ys_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        geometries: dict[int, Geometry] = {}

        for line, rid, val in zip(lines, id_list, val_list):
            scratch = frame.blank_like()
            scratch.draw_linestring(line, rid, value=val)
            rows, cols = np.nonzero(scratch.valid(DIM_LINE))
            wx, wy = scratch.pixel_to_world(rows, cols)
            m = len(rows)
            data = np.zeros((m, N_CHANNELS), dtype=np.float64)
            data[:, channel(DIM_LINE, FIELD_ID)] = rid
            data[:, channel(DIM_LINE, FIELD_COUNT)] = 1.0
            data[:, channel(DIM_LINE, FIELD_VALUE)] = val
            keys_parts.append(np.full(m, rid, dtype=np.int64))
            xs_parts.append(wx)
            ys_parts.append(wy)
            data_parts.append(data)
            geometries[int(rid)] = line

        if not keys_parts:
            return CanvasSet.empty()
        keys = np.concatenate(keys_parts)
        valid = np.zeros((len(keys), N_GROUPS), dtype=bool)
        valid[:, DIM_LINE] = True
        return CanvasSet(
            keys,
            np.concatenate(xs_parts),
            np.concatenate(ys_parts),
            np.concatenate(data_parts),
            valid,
            geometries=geometries,
        )

    @staticmethod
    def empty() -> "CanvasSet":
        """A set with zero samples (all member canvases pruned)."""
        return CanvasSet(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
            np.empty((0, N_CHANNELS), dtype=np.float64),
            np.empty((0, N_GROUPS), dtype=bool),
        )

    # ------------------------------------------------------------------
    # Core operator kernels (invoked by repro.core.algebra)
    # ------------------------------------------------------------------
    def blend_with_canvas(self, other: Canvas, mode: BlendMode) -> "CanvasSet":
        """``B[mode](self_i, other)`` for every member canvas ``i``.

        Implemented as a texture gather: each sample fetches the dense
        canvas's S^3 triple at its own position and combines the two
        triples with *mode*.  Boundary flags are OR-combined so exact
        refinement knows which results are pixel-uncertain.
        """
        px, py = other.world_to_pixel(self.xs, self.ys)
        rows = np.floor(py).astype(np.int64)
        cols = np.floor(px).astype(np.int64)
        gathered_data, gathered_valid = other.texture.gather(
            rows, cols, groups=other.texture.live_groups()
        )
        data, valid = mode(self.data, self.valid, gathered_data, gathered_valid)

        in_range = (
            (rows >= 0) & (rows < other.height)
            & (cols >= 0) & (cols < other.width)
        )
        safe_r = np.clip(rows, 0, other.height - 1)
        safe_c = np.clip(cols, 0, other.width - 1)
        on_boundary = self.boundary | (
            in_range & other.boundary[safe_r, safe_c]
        )
        geometries = dict(self.geometries)
        geometries.update(other.geometries)
        return CanvasSet(
            self.keys, self.xs, self.ys, data, valid,
            boundary=on_boundary, geometries=geometries,
        )

    def blend_with_tiles(
        self,
        grid,
        tile_lookup: Callable,
        mode: BlendMode,
        geometries: dict | None = None,
    ) -> "CanvasSet":
        """``B[mode](self_i, C)`` where ``C`` is materialized per tile.

        Tile-sharded twin of :meth:`blend_with_canvas`: samples are
        binned to pixels with the same single-source-of-truth floor
        arithmetic, grouped by the tile of ``grid`` (a
        :class:`repro.core.tiling.TileGrid`) that owns their pixel, and
        each group fetches its triples from ``tile_lookup(tile)`` — a
        tile-sized raster (or ``None`` for a provably blank tile, which
        gathers null exactly like a blank frame pixel).  The assembled
        gather arrays are then combined with *mode* in one shot, so the
        result is bit-identical to blending against the stitched frame.

        The dense side's hybrid index is supplied by the caller via
        *geometries* (tiles carry no index of their own).
        """
        rows, cols, inside = world_points_to_cells(
            self.xs, self.ys, grid.window, grid.height, grid.width
        )
        m = len(self.keys)
        gathered_data = np.zeros((m, N_CHANNELS), dtype=np.float64)
        gathered_valid = np.zeros((m, N_GROUPS), dtype=bool)
        gathered_boundary = np.zeros(m, dtype=bool)
        idx = np.nonzero(inside)[0]
        if len(idx):
            tr = grid.row_tile_of(rows[idx])
            tc = grid.col_tile_of(cols[idx])
            composite = tr * grid.n_tile_cols + tc
            order = np.argsort(composite, kind="stable")
            sorted_idx = idx[order]
            sorted_comp = composite[order]
            uniq, starts = np.unique(sorted_comp, return_index=True)
            bounds = np.append(starts, len(sorted_comp))
            for u, s0, s1 in zip(uniq, bounds[:-1], bounds[1:]):
                tile = grid.tile_at(
                    int(u) // grid.n_tile_cols, int(u) % grid.n_tile_cols
                )
                tile_canvas = tile_lookup(tile)
                if tile_canvas is None:
                    continue
                members = sorted_idx[s0:s1]
                lr = rows[members] - tile.r0
                lc = cols[members] - tile.c0
                gathered_data[members] = tile_canvas.texture.data[lr, lc, :]
                gathered_valid[members] = tile_canvas.texture.valid[lr, lc, :]
                gathered_boundary[members] = tile_canvas.boundary[lr, lc]
        data, valid = mode(self.data, self.valid, gathered_data, gathered_valid)
        on_boundary = self.boundary | gathered_boundary
        merged = dict(self.geometries)
        if geometries:
            merged.update(geometries)
        return CanvasSet(
            self.keys, self.xs, self.ys, data, valid,
            boundary=on_boundary, geometries=merged,
        )

    def filter_rows(self, keep: np.ndarray) -> "CanvasSet":
        """A new set with only the samples where *keep* is true."""
        keep = np.asarray(keep, dtype=bool)
        return CanvasSet(
            self.keys[keep], self.xs[keep], self.ys[keep],
            self.data[keep], self.valid[keep],
            boundary=self.boundary[keep], geometries=self.geometries,
        )

    def transform_positions(
        self,
        new_xs: np.ndarray,
        new_ys: np.ndarray,
    ) -> "CanvasSet":
        """Samples moved to explicit new positions (both flavours of G)."""
        return CanvasSet(
            self.keys, np.asarray(new_xs, float), np.asarray(new_ys, float),
            self.data.copy(), self.valid.copy(),
            boundary=self.boundary.copy(), geometries=dict(self.geometries),
        )

    def map_values(
        self,
        f: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
                    tuple[np.ndarray, np.ndarray]],
    ) -> "CanvasSet":
        """``V[f]``: rewrite sample triples; f(xs, ys, data, valid)."""
        data, valid = f(self.xs, self.ys, self.data, self.valid)
        return CanvasSet(
            self.keys, self.xs, self.ys, np.asarray(data, float),
            np.asarray(valid, bool),
            boundary=self.boundary.copy(), geometries=dict(self.geometries),
        )

    def concat(self, other: "CanvasSet") -> "CanvasSet":
        """Union of two sets of member canvases."""
        geometries = dict(self.geometries)
        geometries.update(other.geometries)
        return CanvasSet(
            np.concatenate([self.keys, other.keys]),
            np.concatenate([self.xs, other.xs]),
            np.concatenate([self.ys, other.ys]),
            np.concatenate([self.data, other.data]),
            np.concatenate([self.valid, other.valid]),
            boundary=np.concatenate([self.boundary, other.boundary]),
            geometries=geometries,
        )

    def accumulate_by_position(
        self,
        window: BoundingBox,
        resolution: tuple[int, int],
    ) -> Canvas:
        """``B*[+]`` of all member canvases into a dense accumulator.

        Samples are scattered into an accumulator canvas over *window*;
        point counts and values add per pixel (GPU additive blending
        via ``np.add.at``).  This is the final merge of the aggregation
        plans in Figures 7 and 8(c).
        """
        out = Canvas(window, resolution)
        px, py = out.world_to_pixel(self.xs, self.ys)
        rows = np.floor(py).astype(np.int64)
        cols = np.floor(px).astype(np.int64)
        inside = (
            (rows >= 0) & (rows < out.height)
            & (cols >= 0) & (cols < out.width)
        )
        rows, cols = rows[inside], cols[inside]
        cnt = self.field(DIM_POINT, FIELD_COUNT)[inside]
        val = self.field(DIM_POINT, FIELD_VALUE)[inside]
        vpt = self.valid[inside, DIM_POINT]
        cnt_ch = channel(DIM_POINT, FIELD_COUNT)
        val_ch = channel(DIM_POINT, FIELD_VALUE)
        np.add.at(out.texture.data[:, :, cnt_ch], (rows, cols),
                  np.where(vpt, cnt, 0.0))
        np.add.at(out.texture.data[:, :, val_ch], (rows, cols),
                  np.where(vpt, val, 0.0))
        np.logical_or.at(out.texture.valid[:, :, DIM_POINT], (rows, cols), vpt)
        # Area slot: propagate the (id, count, value) of the last sample
        # per pixel, matching the + blend's "s2[2][*]" rule.
        varea = self.valid[inside, DIM_AREA]
        if varea.any():
            ar, ac = rows[varea], cols[varea]
            out.texture.data[ar, ac, DIM_AREA * 3 : DIM_AREA * 3 + 3] = (
                self.data[inside][varea, DIM_AREA * 3 : DIM_AREA * 3 + 3]
            )
            out.texture.valid[ar, ac, DIM_AREA] = True
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<CanvasSet samples={self.n_samples} records={self.n_records}>"
        )
