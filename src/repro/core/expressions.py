"""Composable algebraic expressions and plan diagrams.

The paper visualizes query expressions as *plan diagrams* (Figures 5–8).
This module gives the algebra an explicit expression-tree form: every
operator of :mod:`repro.core.algebra` has a node type, trees evaluate
to canvases, and :func:`render_plan` prints the ASCII analogue of the
paper's diagrams.  Because every node produces a canvas (or canvas
collection), trees compose arbitrarily — the algebra's closure made
syntactic.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.gpu.blendmodes import BlendMode
from repro.core import algebra
from repro.core.algebra import AnyCanvas, PositionalGamma, ValueGamma
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import MaskPredicate


class Node:
    """Base expression node: children + evaluation + diagram label."""

    children: tuple["Node", ...] = ()

    def evaluate(self) -> AnyCanvas:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    # Fluent builders so plans read top-down like the paper's text.
    def mask(self, predicate: MaskPredicate) -> "MaskNode":
        return MaskNode(predicate, self)

    def blend(self, other: "Node", mode: BlendMode) -> "BlendNode":
        return BlendNode(mode, self, other)

    def transform(self, gamma: PositionalGamma) -> "GeomTransformNode":
        return GeomTransformNode(gamma, self)

    def transform_by_value(self, gamma: ValueGamma) -> "GeomTransformNode":
        return GeomTransformNode(gamma, self, by_value=True)

    def value_transform(self, f: Callable, name: str = "f") -> "ValueTransformNode":
        return ValueTransformNode(f, self, name=name)

    def dissect(self) -> "DissectNode":
        return DissectNode(self)


class InputNode(Node):
    """A leaf holding an already-materialized canvas or canvas set."""

    def __init__(self, value: AnyCanvas, name: str = "C") -> None:
        self.value = value
        self.name = name

    def evaluate(self) -> AnyCanvas:
        return self.value

    def label(self) -> str:
        if isinstance(self.value, CanvasSet):
            return f"{self.name} (canvas set, {self.value.n_records} records)"
        return f"{self.name} (canvas {self.value.height}x{self.value.width})"


class UtilityNode(Node):
    """A leaf produced by a utility operator (Circ / Rect / HS)."""

    def __init__(self, kind: str, factory: Callable[[], Canvas],
                 params: str = "") -> None:
        self.kind = kind
        self.factory = factory
        self.params = params

    def evaluate(self) -> AnyCanvas:
        return self.factory()

    def label(self) -> str:
        return f"{self.kind}[{self.params}]()"


class BlendNode(Node):
    """``B[⊙](left, right)`` — right must evaluate to a dense canvas."""

    def __init__(self, mode: BlendMode, left: Node, right: Node) -> None:
        self.mode = mode
        self.children = (left, right)

    def evaluate(self) -> AnyCanvas:
        left = self.children[0].evaluate()
        right = self.children[1].evaluate()
        if not isinstance(right, Canvas):
            raise TypeError("blend right operand must be a dense canvas")
        return algebra.blend(left, right, self.mode)

    def label(self) -> str:
        return f"B[{self.mode.name}]"


class MultiwayBlendNode(Node):
    """``B*[⊙](C1, ..., Cn)`` over dense canvases."""

    def __init__(self, mode: BlendMode, children: Sequence[Node]) -> None:
        if not children:
            raise ValueError("multiway blend requires at least one child")
        self.mode = mode
        self.children = tuple(children)

    def evaluate(self) -> AnyCanvas:
        values = [child.evaluate() for child in self.children]
        canvases = []
        for value in values:
            if not isinstance(value, Canvas):
                raise TypeError("multiway blend children must be dense canvases")
            canvases.append(value)
        return algebra.multiway_blend(canvases, self.mode)

    def label(self) -> str:
        return f"B*[{self.mode.name}] (n={len(self.children)})"


class MaskNode(Node):
    """``M[M](child)``."""

    def __init__(self, predicate: MaskPredicate, child: Node) -> None:
        self.predicate = predicate
        self.children = (child,)

    def evaluate(self) -> AnyCanvas:
        return algebra.mask(self.children[0].evaluate(), self.predicate)

    def label(self) -> str:
        return f"M[{self.predicate.describe()}]"


class GeomTransformNode(Node):
    """``G[γ](child)`` — positional or value-driven."""

    def __init__(
        self, gamma, child: Node, by_value: bool = False, name: str = "γ"
    ) -> None:
        self.gamma = gamma
        self.by_value = by_value
        self.name = name
        self.children = (child,)

    def evaluate(self) -> AnyCanvas:
        value = self.children[0].evaluate()
        if self.by_value:
            return algebra.geometric_transform_by_value(value, self.gamma)
        return algebra.geometric_transform(value, self.gamma)

    def label(self) -> str:
        kind = "S3→R2" if self.by_value else "R2→R2"
        return f"G[{self.name}: {kind}]"


class ValueTransformNode(Node):
    """``V[f](child)``."""

    def __init__(self, f: Callable, child: Node, name: str = "f") -> None:
        self.f = f
        self.name = name
        self.children = (child,)

    def evaluate(self) -> AnyCanvas:
        return algebra.value_transform(self.children[0].evaluate(), self.f)

    def label(self) -> str:
        return f"V[{self.name}]"


class DissectNode(Node):
    """``D(child)`` — child must evaluate to a dense canvas."""

    def __init__(self, child: Node) -> None:
        self.children = (child,)

    def evaluate(self) -> AnyCanvas:
        value = self.children[0].evaluate()
        if not isinstance(value, Canvas):
            raise TypeError("dissect operates on dense canvases")
        return algebra.dissect(value)

    def label(self) -> str:
        return "D"


class AccumulateNode(Node):
    """``B*[+](G[γ](child))`` — the aggregation tail of Figure 7."""

    def __init__(
        self,
        gamma: ValueGamma,
        window,
        resolution: tuple[int, int],
        child: Node,
        name: str = "γc",
    ) -> None:
        self.gamma = gamma
        self.window = window
        self.resolution = resolution
        self.name = name
        self.children = (child,)

    def evaluate(self) -> AnyCanvas:
        value = self.children[0].evaluate()
        if isinstance(value, Canvas):
            value = algebra.dissect(value)
        return algebra.aggregate_canvas_set(
            value, self.gamma, self.window, self.resolution
        )

    def label(self) -> str:
        return f"B*[+] ∘ G[{self.name}]"


def render_plan(root: Node) -> str:
    """ASCII plan diagram (the textual analogue of Figures 5–8)."""
    lines: list[str] = []

    def walk(node: Node, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(node.label())
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + node.label())
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = node.children
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)
