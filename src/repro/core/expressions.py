"""Composable algebraic expressions, plan diagrams, and buffer ownership.

The paper visualizes query expressions as *plan diagrams* (Figures 5–8).
This module gives the algebra an explicit expression-tree form: every
operator of :mod:`repro.core.algebra` has a node type, trees evaluate
to canvases, and :func:`render_plan` prints the ASCII analogue of the
paper's diagrams.  Because every node produces a canvas (or canvas
collection), trees compose arbitrarily — the algebra's closure made
syntactic.

Evaluation comes in two flavours:

- ``node.evaluate()`` — **legacy value semantics**: every operator
  leaves its operands untouched, which on dense canvases means one
  full-texture copy (or allocation) per operator.  Safe for any tree,
  including ones whose leaves are cached/shared canvases.
- ``node.evaluate(ctx)`` with an :class:`EvalContext` — **ownership
  aware**: each dense leaf is tagged ``CACHED`` (immutable, the
  evaluator may only gather/read from it) or ``OWNED`` (the evaluator
  may mutate and recycle its buffer).  Operators thread the algebra's
  ``out=`` seam through the tree, running in place on owned operands,
  recycling dead intermediates through a :class:`BufferPool`, and
  counting every full-texture copy/allocation they could not elide.
  Results are bit-identical to the legacy evaluator; owned
  intermediates cost *zero* full-texture copies.

Ownership contract: marking a canvas ``OWNED`` (``InputNode(...,
owned=True)``, ``UtilityNode(..., owned=True)``, or
``ctx.mark_owned``) grants the evaluator permission to overwrite that
buffer and hand it to later operators.  Never mark a cached, shared,
or still-needed canvas as owned, and never reuse an owned leaf across
two evaluations — the first one consumes it.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.gpu.blendmodes import BlendMode
from repro.core import algebra
from repro.core.algebra import AnyCanvas, PositionalGamma, ValueGamma
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import MaskPredicate
from repro.resilience.deadline import Deadline, check_deadline
from repro.testing.faults import maybe_fire

#: Ownership tags (see :class:`EvalContext`).
CACHED = "cached"
OWNED = "owned"


def _canvas_nbytes(canvas: Canvas) -> int:
    """Array payload of one pooled buffer (texture planes + boundary)."""
    total = 0
    texture = getattr(canvas, "texture", None)
    if texture is not None:
        for attr in ("data", "valid"):
            total += getattr(getattr(texture, attr, None), "nbytes", 0)
    total += getattr(getattr(canvas, "boundary", None), "nbytes", 0)
    return total


# ----------------------------------------------------------------------
# Ownership-aware evaluation machinery
# ----------------------------------------------------------------------
@dataclass
class EvalCounters:
    """What one ownership-aware evaluation paid in buffer traffic.

    Attributes
    ----------
    full_copies:
        Full-texture copy passes — the price of consuming a ``CACHED``
        dense operand with a copying operator.  Zero for trees whose
        dense intermediates are all owned.
    allocations:
        Fresh full-texture allocations (no pooled buffer fit).
    pool_reuses:
        Dense buffers recycled from the :class:`BufferPool` instead of
        allocated.
    inplace_ops:
        Operators that wrote straight into an owned operand (the elided
        copies/allocations).
    """

    full_copies: int = 0
    allocations: int = 0
    pool_reuses: int = 0
    inplace_ops: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "full_copies": self.full_copies,
            "allocations": self.allocations,
            "pool_reuses": self.pool_reuses,
            "inplace_ops": self.inplace_ops,
        }


class BufferPool:
    """Recycled dense-canvas buffers, keyed by (window, shape, device).

    Dead intermediates released by the ownership-aware evaluator park
    here; the next compatible acquire pops one instead of allocating a
    fresh ``(H, W, 9)`` texture.  Contents of pooled buffers are
    garbage — every acquirer overwrites them completely (the algebra's
    ``out=`` contract).  The pool is deliberately tiny: it exists to
    serve steady-state query loops, not to be a second cache.

    Thread-safe: one engine's pool is shared by every member of a
    parallel batch, and acquire/release are atomic pops/pushes under a
    lock — a buffer handed to one evaluation can never be handed to a
    second until the first releases it.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 0:
            raise ValueError("pool size must be non-negative")
        self.max_entries = max_entries
        #: Optional MemoryGovernor (set via ``governor.attach``).  At
        #: critical pressure the pool drops released buffers instead
        #: of parking them.  Consulted OUTSIDE ``self._lock`` only.
        self.governor = None
        self._buffers: dict[tuple, list[Canvas]] = {}
        self._count = 0
        self._bytes = 0
        self._lock = threading.Lock()

    @property
    def bytes_used(self) -> int:
        """Byte footprint of parked buffers (governor's usage hook)."""
        with self._lock:
            return self._bytes

    def trim(self) -> int:
        """Drop every parked buffer; bytes freed (governor's last
        resort — pools clear only after both caches are empty)."""
        with self._lock:
            freed = self._bytes
            self._buffers.clear()
            self._count = 0
            self._bytes = 0
            return freed

    @staticmethod
    def _key(canvas: Canvas) -> tuple:
        return (tuple(canvas.window), canvas.height, canvas.width,
                canvas.device)

    def acquire(self, like: Canvas) -> Canvas | None:
        """A compatible pooled buffer, or ``None`` when none fits."""
        return self.acquire_shape(
            tuple(like.window), like.height, like.width, like.device
        )

    def acquire_shape(
        self, window: tuple, height: int, width: int, device
    ) -> Canvas | None:
        """Pop a pooled buffer by shape key, without a template canvas.

        Lets factories that have not rasterized anything yet (e.g. the
        ``Circ`` utility in a probe loop) check the pool before paying
        an allocation.
        """
        maybe_fire("pool.acquire")
        with self._lock:
            stack = self._buffers.get((window, height, width, device))
            if stack:
                self._count -= 1
                buffer = stack.pop()
                self._bytes -= _canvas_nbytes(buffer)
                return buffer
            return None

    def release(self, canvas: Canvas) -> None:
        """Park *canvas* for reuse (dropped when the pool is full, or
        when the MemoryGovernor reports critical pressure — under
        pressure, freeing beats recycling)."""
        governor = self.governor
        if governor is not None \
                and governor.pressure() >= governor.critical_fraction:
            return
        with self._lock:
            if self._count >= self.max_entries:
                return
            self._buffers.setdefault(self._key(canvas), []).append(canvas)
            self._count += 1
            self._bytes += _canvas_nbytes(canvas)

    def __len__(self) -> int:
        with self._lock:
            return self._count


class EvalContext:
    """Ownership ledger + buffer pool + counters for one evaluation.

    The context tracks which dense canvases the evaluation *owns* (may
    mutate and recycle) by object identity; everything else is treated
    as ``CACHED``.  Operator nodes consult it to decide between running
    in place, reusing a pooled buffer, or paying the legacy copy.

    A context may be reused across evaluations (the engine keeps one
    pool per :class:`~repro.engine.executor.QueryEngine`); counters are
    cumulative until :meth:`take_counters` snapshots and resets them.

    *deadline* is the request's cooperative time budget: buffer
    acquisitions double as checkpoints (they precede every dense frame
    pass, so an expired evaluation aborts before its next expensive
    raster rather than after).
    """

    def __init__(
        self,
        pool: BufferPool | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        self.pool = pool if pool is not None else BufferPool()
        self.deadline = deadline
        self.counters = EvalCounters()
        # The ledger maps id() -> the canvas itself.  Holding the
        # reference is load-bearing: a bare id() set would let a dead
        # owned canvas's address be reused by a brand-new CACHED canvas,
        # which would then be falsely mutated in place.
        self._owned: dict[int, Canvas] = {}

    # -- ownership ledger ------------------------------------------------
    def mark_owned(self, canvas: AnyCanvas) -> AnyCanvas:
        """Tag *canvas* as OWNED: mutable and recyclable by operators."""
        if isinstance(canvas, Canvas):
            self._owned[id(canvas)] = canvas
        return canvas

    def ownership(self, value: AnyCanvas) -> str:
        return OWNED if self.is_owned(value) else CACHED

    def is_owned(self, value: AnyCanvas) -> bool:
        return (
            isinstance(value, Canvas)
            and self._owned.get(id(value)) is value
        )

    # -- buffer lifecycle ------------------------------------------------
    def acquire_like(self, src: Canvas) -> Canvas:
        """An owned, compatible canvas whose contents may be garbage.

        Pops a pooled buffer when one fits (counted as a reuse);
        otherwise allocates a blank canvas (counted as an allocation).
        The result is marked owned.
        """
        check_deadline(self.deadline, "buffer-acquire")
        target = self.pool.acquire(src)
        if target is not None:
            self.counters.pool_reuses += 1
        else:
            self.counters.allocations += 1
            target = src.blank_like()
        self._owned[id(target)] = target
        return target

    def acquire_frame(self, window, resolution, device) -> Canvas:
        """An owned dense frame for *window*, pooled when one fits.

        Unlike :meth:`acquire_like` there is no template canvas — the
        shape key is computed from the window/resolution pair — so
        utility-operator factories (``Circ`` in the kNN probe loop) can
        recycle a buffer *instead of* rasterizing into a fresh one.
        Contents are garbage either way; the caller must overwrite
        completely (``Canvas.circle(out=...)`` clears first).
        """
        from repro.core.canvas import _resolve_resolution

        check_deadline(self.deadline, "buffer-acquire")
        height, width = _resolve_resolution(window, resolution)
        target = self.pool.acquire_shape(
            tuple(window), height, width, device
        )
        if target is not None:
            self.counters.pool_reuses += 1
        else:
            self.counters.allocations += 1
            target = Canvas(window, resolution, device)
        self._owned[id(target)] = target
        return target

    def release(self, value: AnyCanvas) -> None:
        """Return a dead owned intermediate's buffer to the pool."""
        if self.is_owned(value):
            del self._owned[id(value)]
            self.pool.release(value)  # type: ignore[arg-type]

    def consume(self, value: AnyCanvas, result: AnyCanvas) -> None:
        """Release *value* unless it lives on as (part of) *result*."""
        if value is not result:
            self.release(value)

    # -- counters --------------------------------------------------------
    def take_counters(self) -> EvalCounters:
        """Snapshot and reset the cumulative counters."""
        taken = self.counters
        self.counters = EvalCounters()
        return taken


class Node:
    """Base expression node: children + evaluation + diagram label."""

    children: tuple["Node", ...] = ()

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        """Evaluate the tree; *ctx* enables ownership-aware execution."""
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    # Fluent builders so plans read top-down like the paper's text.
    def mask(self, predicate: MaskPredicate) -> "MaskNode":
        return MaskNode(predicate, self)

    def blend(self, other: "Node", mode: BlendMode) -> "BlendNode":
        return BlendNode(mode, self, other)

    def transform(self, gamma: PositionalGamma) -> "GeomTransformNode":
        return GeomTransformNode(gamma, self)

    def transform_by_value(self, gamma: ValueGamma) -> "GeomTransformNode":
        return GeomTransformNode(gamma, self, by_value=True)

    def value_transform(self, f: Callable, name: str = "f") -> "ValueTransformNode":
        return ValueTransformNode(f, self, name=name)

    def dissect(self) -> "DissectNode":
        return DissectNode(self)


class InputNode(Node):
    """A leaf holding an already-materialized canvas or canvas set.

    *owned* tags the value for ownership-aware evaluation: ``False``
    (default) means the canvas is cached/shared and must never be
    mutated; ``True`` hands its buffer to the evaluator.
    """

    def __init__(self, value: AnyCanvas, name: str = "C",
                 owned: bool = False) -> None:
        self.value = value
        self.name = name
        self.owned = owned

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        if ctx is not None and self.owned:
            ctx.mark_owned(self.value)
        return self.value

    def label(self) -> str:
        if isinstance(self.value, CanvasSet):
            # n_samples, not n_records: a label must not pay a full
            # np.unique over a million-sample set just to render the
            # plan tree (it showed up as ~1/3 of a selection's time).
            return f"{self.name} (canvas set, {self.value.n_samples} samples)"
        return f"{self.name} (canvas {self.value.height}x{self.value.width})"


class UtilityNode(Node):
    """A leaf produced by a utility operator (Circ / Rect / HS).

    *owned* declares whether the factory's product belongs to this
    evaluation (a fresh rasterization) or to someone else (the engine's
    canvas cache); cached products are never mutated in place.
    """

    def __init__(self, kind: str, factory: Callable[[], Canvas],
                 params: str = "", owned: bool = False) -> None:
        self.kind = kind
        self.factory = factory
        self.params = params
        self.owned = owned

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.factory()
        if ctx is not None and self.owned and isinstance(value, Canvas):
            # An owned factory product is a fresh rasterization this
            # evaluation paid for — count it, unlike cached products.
            ctx.counters.allocations += 1
            ctx.mark_owned(value)
        return value

    def label(self) -> str:
        return f"{self.kind}[{self.params}]()"


class TiledGatherNode(Node):
    """A blend/gather whose dense operand is materialized tile by tile.

    The tiled plans replace ``B[⊙](child, UtilityNode)`` with this
    node: *gather* closes over the tile grid, the tile cache and the
    blend mode (see the tiled runners in
    :mod:`repro.engine.executor`), so the dense frame never exists as
    a whole.  The child's product is consumed exactly as a sparse
    blend would consume it — the gather returns a fresh
    :class:`~repro.core.canvas_set.CanvasSet` and never mutates tiles,
    which may be frozen cache entries.
    """

    def __init__(self, child: Node, gather: Callable,
                 label_text: str) -> None:
        self.children = (child,)
        self._gather = gather
        self._label = label_text

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        return self._gather(self.children[0].evaluate(ctx))

    def label(self) -> str:
        return self._label


class BlendNode(Node):
    """``B[⊙](left, right)`` — right must evaluate to a dense canvas."""

    def __init__(self, mode: BlendMode, left: Node, right: Node) -> None:
        self.mode = mode
        self.children = (left, right)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        left = self.children[0].evaluate(ctx)
        right = self.children[1].evaluate(ctx)
        if not isinstance(right, Canvas):
            raise TypeError("blend right operand must be a dense canvas")
        if ctx is None or isinstance(left, CanvasSet):
            # Sparse x dense gathers copy what they read, so an owned
            # right operand is dead afterwards and recycles; the legacy
            # path keeps value semantics.
            result = algebra.blend(left, right, self.mode)
            if ctx is not None:
                ctx.consume(right, result)
            return result
        if ctx.is_owned(left):
            ctx.counters.inplace_ops += 1
            result = algebra.blend(left, right, self.mode, out=left)
        else:
            target = ctx.acquire_like(left)
            ctx.counters.full_copies += 1  # cached left must be copied in
            result = algebra.blend(left, right, self.mode, out=target)
        ctx.consume(right, result)
        return result

    def label(self) -> str:
        return f"B[{self.mode.name}]"


class MultiwayBlendNode(Node):
    """``B*[⊙](C1, ..., Cn)`` over dense canvases."""

    def __init__(self, mode: BlendMode, children: Sequence[Node]) -> None:
        if not children:
            raise ValueError("multiway blend requires at least one child")
        self.mode = mode
        self.children = tuple(children)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        values = [child.evaluate(ctx) for child in self.children]
        canvases = []
        for value in values:
            if not isinstance(value, Canvas):
                raise TypeError("multiway blend children must be dense canvases")
            canvases.append(value)
        if ctx is None:
            return algebra.multiway_blend(canvases, self.mode)
        first = canvases[0]
        if ctx.is_owned(first):
            ctx.counters.inplace_ops += 1
            acc = first
        else:
            acc = ctx.acquire_like(first)
            ctx.counters.full_copies += 1
            acc = algebra.copy_into(first, acc)
        for other in canvases[1:]:
            ctx.counters.inplace_ops += 1
            acc = algebra.blend(acc, other, self.mode, out=acc)  # type: ignore[assignment]
            ctx.consume(other, acc)
        return acc

    def label(self) -> str:
        return f"B*[{self.mode.name}] (n={len(self.children)})"


class MaskNode(Node):
    """``M[M](child)``."""

    def __init__(self, predicate: MaskPredicate, child: Node) -> None:
        self.predicate = predicate
        self.children = (child,)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.children[0].evaluate(ctx)
        if ctx is None or not isinstance(value, Canvas):
            return algebra.mask(value, self.predicate)
        if ctx.is_owned(value):
            ctx.counters.inplace_ops += 1
            return algebra.mask(value, self.predicate, out=value)
        target = ctx.acquire_like(value)
        ctx.counters.full_copies += 1  # cached operand copied into target
        return algebra.mask(value, self.predicate, out=target)

    def label(self) -> str:
        return f"M[{self.predicate.describe()}]"


class GeomTransformNode(Node):
    """``G[γ](child)`` — positional or value-driven."""

    def __init__(
        self, gamma, child: Node, by_value: bool = False, name: str = "γ"
    ) -> None:
        self.gamma = gamma
        self.by_value = by_value
        self.name = name
        self.children = (child,)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.children[0].evaluate(ctx)
        if self.by_value:
            result = algebra.geometric_transform_by_value(value, self.gamma)
        else:
            result = algebra.geometric_transform(value, self.gamma)
        if ctx is not None and isinstance(value, Canvas):
            if isinstance(result, Canvas):
                # The transform allocated a fresh frame internally.
                ctx.counters.allocations += 1
                ctx.mark_owned(result)
            ctx.consume(value, result)
        return result

    def label(self) -> str:
        kind = "S3→R2" if self.by_value else "R2→R2"
        return f"G[{self.name}: {kind}]"


class ValueTransformNode(Node):
    """``V[f](child)``."""

    def __init__(self, f: Callable, child: Node, name: str = "f") -> None:
        self.f = f
        self.name = name
        self.children = (child,)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.children[0].evaluate(ctx)
        if ctx is None or not isinstance(value, Canvas):
            return algebra.value_transform(value, self.f)
        if ctx.is_owned(value):
            ctx.counters.inplace_ops += 1
            return algebra.value_transform(value, self.f, out=value)
        # The fragment passes overwrite every texture cell, so a cached
        # operand costs an output buffer but never a texture copy.
        target = ctx.acquire_like(value)
        return algebra.value_transform(value, self.f, out=target)

    def label(self) -> str:
        return f"V[{self.name}]"


class DissectNode(Node):
    """``D(child)`` — child must evaluate to a dense canvas."""

    def __init__(self, child: Node) -> None:
        self.children = (child,)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.children[0].evaluate(ctx)
        if not isinstance(value, Canvas):
            raise TypeError("dissect operates on dense canvases")
        result = algebra.dissect(value)
        if ctx is not None:
            ctx.consume(value, result)
        return result

    def label(self) -> str:
        return "D"


class AccumulateNode(Node):
    """``B*[+](G[γ](child))`` — the aggregation tail of Figure 7."""

    def __init__(
        self,
        gamma: ValueGamma,
        window,
        resolution: tuple[int, int],
        child: Node,
        name: str = "γc",
    ) -> None:
        self.gamma = gamma
        self.window = window
        self.resolution = resolution
        self.name = name
        self.children = (child,)

    def evaluate(self, ctx: EvalContext | None = None) -> AnyCanvas:
        value = self.children[0].evaluate(ctx)
        operand = value
        if isinstance(operand, Canvas):
            operand = algebra.dissect(operand)
        result = algebra.aggregate_canvas_set(
            operand, self.gamma, self.window, self.resolution
        )
        if ctx is not None:
            ctx.counters.allocations += 1  # the accumulator frame
            ctx.mark_owned(result)
            ctx.consume(value, result)
        return result

    def label(self) -> str:
        return f"B*[+] ∘ G[{self.name}]"


def render_plan(root: Node) -> str:
    """ASCII plan diagram (the textual analogue of Figures 5–8)."""
    lines: list[str] = []

    def walk(node: Node, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(node.label())
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + node.label())
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = node.children
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)
