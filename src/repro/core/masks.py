"""Mask predicates: the condition sets ``M ⊂ S^3`` of the Mask operator.

Section 3.1 defines ``M[M](C)`` as keeping the points whose triple lies
in a subset ``M`` of ``S^3``.  A :class:`MaskPredicate` describes such a
subset as a vectorized test over ``(data, valid)`` arrays and composes
with ``&``, ``|`` and ``~``.  The module exports the three mask sets the
paper's standard queries use: ``Mp``, ``My`` and ``Mp'``.
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from repro.core.objectinfo import (
    DIM_AREA,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    channel,
)

_OPS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class MaskPredicate:
    """A subset of S^3 expressed as a vectorized membership test."""

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Boolean membership over any leading shape.

        *data* has shape ``(..., 9)`` and *valid* ``(..., 3)``; the
        result drops the channel axis.
        """
        raise NotImplementedError

    def __and__(self, other: "MaskPredicate") -> "MaskPredicate":
        return _And(self, other)

    def __or__(self, other: "MaskPredicate") -> "MaskPredicate":
        return _Or(self, other)

    def __invert__(self) -> "MaskPredicate":
        return _Not(self)

    def describe(self) -> str:
        """Human-readable condition (used in plan diagrams)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Mask{{{self.describe()}}}"


class NotNull(MaskPredicate):
    """``s[dim] != ∅``."""

    def __init__(self, dim: int) -> None:
        self.dim = dim

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return valid[..., self.dim]

    def describe(self) -> str:
        return f"s[{self.dim}] != ∅"


class IsNull(MaskPredicate):
    """``s[dim] == ∅``."""

    def __init__(self, dim: int) -> None:
        self.dim = dim

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return ~valid[..., self.dim]

    def describe(self) -> str:
        return f"s[{self.dim}] == ∅"


class FieldCompare(MaskPredicate):
    """``s[dim][field] <op> value`` (implies ``s[dim] != ∅``)."""

    def __init__(self, dim: int, field: int, op: str, value: float) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.dim = dim
        self.field = field
        self.op = op
        self.value = float(value)

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        ch = channel(self.dim, self.field)
        return valid[..., self.dim] & _OPS[self.op](data[..., ch], self.value)

    def describe(self) -> str:
        return f"s[{self.dim}][{self.field}] {self.op} {self.value:g}"


class _And(MaskPredicate):
    def __init__(self, a: MaskPredicate, b: MaskPredicate) -> None:
        self.a, self.b = a, b

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return self.a.test(data, valid) & self.b.test(data, valid)

    def describe(self) -> str:
        return f"({self.a.describe()}) and ({self.b.describe()})"


class _Or(MaskPredicate):
    def __init__(self, a: MaskPredicate, b: MaskPredicate) -> None:
        self.a, self.b = a, b

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return self.a.test(data, valid) | self.b.test(data, valid)

    def describe(self) -> str:
        return f"({self.a.describe()}) or ({self.b.describe()})"


class _Not(MaskPredicate):
    def __init__(self, a: MaskPredicate) -> None:
        self.a = a

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return ~self.a.test(data, valid)

    def describe(self) -> str:
        return f"not ({self.a.describe()})"


class Lambda(MaskPredicate):
    """Escape hatch: an arbitrary vectorized membership function."""

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        description: str = "custom",
    ) -> None:
        self.fn = fn
        self.description = description

    def test(self, data: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return np.asarray(self.fn(data, valid), dtype=bool)

    def describe(self) -> str:
        return self.description


def mask_point_in_polygon(query_id: float = 1.0) -> MaskPredicate:
    """The paper's ``Mp``: ``s[0] != ∅ and s[2][0] == query_id``."""
    return NotNull(DIM_POINT) & FieldCompare(DIM_AREA, FIELD_ID, "==", query_id)


def mask_polygon_intersection(count: float = 2.0) -> MaskPredicate:
    """The paper's ``My``: ``s[2][1] == count`` (two 2-primitives incident)."""
    return FieldCompare(DIM_AREA, FIELD_COUNT, "==", count)


def mask_point_in_any_polygon(min_count: float = 1.0) -> MaskPredicate:
    """The paper's ``Mp'``: ``s[0] != ∅ and s[2][1] >= min_count``.

    Valid for single or multiple (disjunctive) polygon constraints —
    the prototype uses this form unconditionally (Section 5.1).
    """
    return NotNull(DIM_POINT) & FieldCompare(
        DIM_AREA, FIELD_COUNT, ">=", min_count
    )


def mask_point_in_all_polygons(count: float) -> MaskPredicate:
    """Conjunctive variant of ``Mp'``: the point must lie in all
    *count* constraint polygons (Section 5.1's closing remark)."""
    return NotNull(DIM_POINT) & FieldCompare(
        DIM_AREA, FIELD_COUNT, "==", count
    )
