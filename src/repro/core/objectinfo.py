"""Object Information Set layout (Definition 7).

A canvas maps every plane point to a triple ``(s[0], s[1], s[2])`` —
one slot per primitive dimension — where each slot is itself a triple
``(id, count, value)`` or the null tuple ``∅`` (Definitions 4 and 7;
the paper's range is a 3x3 matrix).

In the discrete realization the nine scalars live in the nine channels
of a :class:`repro.gpu.texture.Texture`, one validity plane per
primitive dimension.  This module pins down the channel layout and
provides named accessors so the rest of the code never hard-codes
channel arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Primitive dimensions (Definition 2): points, lines, areas.
DIM_POINT = 0
DIM_LINE = 1
DIM_AREA = 2
DIMS = (DIM_POINT, DIM_LINE, DIM_AREA)

#: Fields of one object-information tuple (Definition 7): v0 is the
#: record identifier, v1 and v2 are query-defined metadata.  The
#: paper's examples consistently use v1 as an incidence *count* and v2
#: as an attribute *value*, and so do we.
FIELD_ID = 0
FIELD_COUNT = 1
FIELD_VALUE = 2
FIELDS = (FIELD_ID, FIELD_COUNT, FIELD_VALUE)

#: Total data channels of a canvas texture: 3 dims x 3 fields.
N_CHANNELS = 9
#: Validity groups: one per primitive dimension.
N_GROUPS = 3


def channel(dim: int, field: int) -> int:
    """Flat channel index of ``s[dim][field]``."""
    if dim not in DIMS:
        raise ValueError(f"dimension must be 0, 1 or 2, got {dim}")
    if field not in FIELDS:
        raise ValueError(f"field must be 0, 1 or 2, got {field}")
    return dim * 3 + field


@dataclass(frozen=True)
class Info:
    """One object-information tuple ``(id, count, value)``."""

    id: float
    count: float = 1.0
    value: float = 0.0

    def as_array(self) -> np.ndarray:
        return np.array([self.id, self.count, self.value], dtype=np.float64)


def triple_values(
    point: Info | None = None,
    line: Info | None = None,
    area: Info | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Build flat ``(values[9], groups[3])`` arrays for a draw call.

    ``None`` slots are null: their channels stay zero and their
    validity bit stays clear.
    """
    values = np.zeros(N_CHANNELS, dtype=np.float64)
    groups = np.zeros(N_GROUPS, dtype=bool)
    for dim, info in ((DIM_POINT, point), (DIM_LINE, line), (DIM_AREA, area)):
        if info is None:
            continue
        values[dim * 3 : dim * 3 + 3] = info.as_array()
        groups[dim] = True
    return values, groups


def format_triple(data: np.ndarray, valid: np.ndarray) -> str:
    """Human-readable rendering of one pixel's S^3 triple."""
    parts = []
    for dim in DIMS:
        if valid[dim]:
            vid, cnt, val = data[dim * 3 : dim * 3 + 3]
            parts.append(f"s[{dim}]=({vid:g}, {cnt:g}, {val:g})")
        else:
            parts.append(f"s[{dim}]=∅")
    return "(" + ", ".join(parts) + ")"
