"""Plan enumeration and cost-based choice (Section 7, "Query Optimization").

The paper argues the algebra enables optimization by (1) admitting
multiple equivalent plans for a query and (2) exposing operator-level
cost models.  This module operationalizes that for the two plan choices
the paper itself discusses:

- **multi-constraint selection** — per-polygon PIP testing vs blending
  all constraints into one canvas first (Figure 8(b));
- **join-aggregation** — join-then-aggregate vs the RasterJoin plan
  (Figure 8(c)).

Costs are simple linear models in the dominant work terms (pixels
touched, point-edge tests, gathers); they only need to rank plans, not
predict wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon


@dataclass(frozen=True)
class PlanEstimate:
    """A candidate plan with its estimated cost (arbitrary work units)."""

    name: str
    cost: float
    description: str


@dataclass(frozen=True)
class CostModel:
    """Relative per-operation weights.

    The defaults reflect the simulated-GPU substrate: a vectorized
    pixel/gather touch is the unit; a scalar point-edge PIP test on the
    baseline path costs roughly one unit too (both are one fused
    multiply-compare inside a vectorized kernel); raster setup has a
    small per-row constant.

    ``scatter`` and ``frame_sweep`` price the scatter-gather RasterJoin
    plan, calibrated against ``benchmarks/bench_pr2_hotpaths.py``
    timings on the simulated-GPU substrate: one bincount scatter per
    point costs a bit more than a gather (~1.5x — the scatter builds
    per-pixel partials for count *and* value), while a full-frame
    allocation/scan pass (label grid, occupied-pixel scan) moves ~4x
    less data per pixel than a 9-channel blend touch (~0.25x).
    """

    pixel_touch: float = 1.0
    gather: float = 1.0
    edge_test: float = 1.0
    raster_row_setup: float = 4.0
    scatter: float = 1.5
    frame_sweep: float = 0.25


def _polygon_edges(polygons: Sequence[Polygon]) -> int:
    total = 0
    for p in polygons:
        total += len(p.shell)
        total += sum(len(h) for h in p.holes)
    return total


def _bbox_pixel_fraction(
    polygons: Sequence[Polygon], window: BoundingBox | None
) -> float:
    """Summed fraction of the frame each polygon's clipped bbox covers.

    Rasterization is bbox-clipped, so the pixels a constraint canvas
    actually sweeps are ``frac * H * W`` rather than the whole frame
    per polygon.  Without a window (callers pricing plans in the
    abstract) every polygon conservatively counts as a full frame —
    the pre-clipping cost shape.
    """
    if window is None or window.width <= 0 or window.height <= 0:
        return float(len(polygons))
    total = 0.0
    for p in polygons:
        b = p.bounds
        w = max(min(b.xmax, window.xmax) - max(b.xmin, window.xmin), 0.0)
        h = max(min(b.ymax, window.ymax) - max(b.ymin, window.ymin), 0.0)
        total += (w / window.width) * (h / window.height)
    return total


def _bbox_row_profile(
    polygons: Sequence[Polygon], window: BoundingBox | None
) -> tuple[float, float]:
    """``(row_frac_sum, edge_rows)`` for the clipped raster row terms.

    The clipped fill only sets up and scatters edges over each
    polygon's bbox *rows*: ``row_frac_sum`` is the summed fraction of
    frame rows swept (one full frame per polygon without a window) and
    ``edge_rows`` is ``Σ edges_p * row_frac_p`` — the edge/row scatter
    work, which the caller multiplies by the frame height.
    """
    if window is None or window.height <= 0:
        return float(len(polygons)), float(_polygon_edges(polygons))
    row_sum = 0.0
    edge_rows = 0.0
    for p in polygons:
        b = p.bounds
        h = max(min(b.ymax, window.ymax) - max(b.ymin, window.ymin), 0.0)
        frac = h / window.height
        row_sum += frac
        edge_rows += _polygon_edges([p]) * frac
    return row_sum, edge_rows


def _validate_workload(n_points: int, polygons: Sequence[Polygon]) -> None:
    """Reject degenerate workloads instead of ranking zero-cost plans.

    With no points or no polygons every candidate costs ~0 and the
    "choice" is meaningless noise; callers (the engine short-circuits
    empty inputs before planning) must not reach the optimizer with
    them.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    if not polygons:
        raise ValueError(
            "cannot plan without constraint polygons; the workload must "
            "contain at least one polygon"
        )


def selection_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> list[PlanEstimate]:
    """Candidate plans for selecting points under polygon constraints.

    *window* (the query's world window, when the caller knows it) makes
    the raster costs bbox-aware: constraint rasterization is clipped to
    each polygon's pixel bounding box, so small constraints no longer
    price as full-frame sweeps.
    """
    _validate_workload(n_points, polygons)
    height, width = resolution
    edges = _polygon_edges(polygons)
    raster_px = _bbox_pixel_fraction(polygons, window) * height * width
    row_frac, edge_rows = _bbox_row_profile(polygons, window)

    # Plan A — canvas algebra: rasterize each constraint once into its
    # clipped bbox (edge-to-row scatter + parity cumsum over the bbox
    # rows only), then one gather per point, independent of polygon
    # count/complexity.
    raster_cost = (
        row_frac * height * model.raster_row_setup
        + edge_rows * height * 0.01 * model.pixel_touch  # edge/row scatter
        + raster_px * model.pixel_touch
    )
    blended_cost = raster_cost + n_points * model.gather
    plans = [
        PlanEstimate(
            name="blended-canvas",
            cost=blended_cost,
            description=(
                "B*[⊕] over constraint canvases, one gather per point "
                "(M[Mp'](B[⊙](CP, B*[⊕](CQ))))"
            ),
        )
    ]

    # Plan B — per-polygon tests: every point against every edge of
    # every polygon (the traditional strategy; what the GPU baseline
    # does in vectorized form).
    per_poly_cost = float(n_points) * edges * model.edge_test
    plans.append(
        PlanEstimate(
            name="per-polygon-pip",
            cost=per_poly_cost,
            description="point-in-polygon test per (point, polygon) pair",
        )
    )
    return sorted(plans, key=lambda p: p.cost)


def choose_selection_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> PlanEstimate:
    """The cheapest selection plan under the cost model."""
    return selection_plans(n_points, polygons, resolution, model, window)[0]


def aggregation_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> list[PlanEstimate]:
    """Candidate plans for group-by-over-join aggregation.

    Costs track the scatter-gather RasterJoin execution: one bincount
    scatter over the points, two cheap full-frame sweeps (label grid +
    occupied-pixel scan), per-polygon work clipped to the polygon's
    pixel bbox, and one gather per occupied pixel — instead of the
    pre-rewrite per-polygon full-frame blend.
    """
    _validate_workload(n_points, polygons)
    height, width = resolution
    n_polys = len(polygons)
    frame = height * width
    bbox_px = _bbox_pixel_fraction(polygons, window) * frame

    # Join-then-aggregate: per polygon, rasterize the (bbox-clipped)
    # constraint canvas and gather every point, then reduce.
    join_then_agg = (
        bbox_px * model.pixel_touch
        + n_polys * n_points * model.gather
    )
    # RasterJoin (scatter-gather): scatter all points once, sweep the
    # label grid + occupied pixels, fill each polygon's clipped bbox,
    # gather the point-covered pixels.
    rasterjoin = (
        n_points * model.scatter
        + 2 * frame * model.frame_sweep * model.pixel_touch
        + bbox_px * model.pixel_touch
        + min(n_points, frame) * model.gather
    )

    plans = [
        PlanEstimate(
            name="rasterjoin",
            cost=rasterjoin,
            description=(
                "B*[+](D*[γc](M[Mp](B[⊙](B*[+](CP), CY)))) — scatter points "
                "once, label-grid join, per-polygon cost bounded by its bbox"
            ),
        ),
        PlanEstimate(
            name="join-then-aggregate",
            cost=join_then_agg,
            description=(
                "B*[+](G[γc](M[Mp](B[⊙](CP, CY)))) — per-polygon gather over "
                "all points, then aggregate"
            ),
        ),
    ]
    return sorted(plans, key=lambda p: p.cost)


def choose_aggregation_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> PlanEstimate:
    """The cheapest aggregation plan under the cost model."""
    return aggregation_plans(n_points, polygons, resolution, model, window)[0]


def explain(plans: Sequence[PlanEstimate]) -> str:
    """Tabular rendering of candidate plans, cheapest first."""
    ordered = sorted(plans, key=lambda p: p.cost)
    if not ordered:
        return "no candidate plans"
    width = max(len(p.name) for p in ordered)
    lines = [f"{'plan'.ljust(width)}  {'est. cost':>12}  description"]
    for p in ordered:
        lines.append(f"{p.name.ljust(width)}  {p.cost:12.3g}  {p.description}")
    return "\n".join(lines)
