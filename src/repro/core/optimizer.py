"""Plan enumeration and cost-based choice (Section 7, "Query Optimization").

The paper argues the algebra enables optimization by (1) admitting
multiple equivalent plans for a query and (2) exposing operator-level
cost models.  This module operationalizes that for the two plan choices
the paper itself discusses:

- **multi-constraint selection** — per-polygon PIP testing vs blending
  all constraints into one canvas first (Figure 8(b));
- **join-aggregation** — join-then-aggregate vs the RasterJoin plan
  (Figure 8(c)).

Costs are simple linear models in the dominant work terms (pixels
touched, point-edge tests, gathers); they only need to rank plans, not
predict wall-clock time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon


@dataclass(frozen=True)
class PlanEstimate:
    """A candidate plan with its estimated cost (arbitrary work units)."""

    name: str
    cost: float
    description: str


@dataclass(frozen=True)
class CostModel:
    """Relative per-operation weights.

    The defaults reflect the simulated-GPU substrate: a vectorized
    pixel/gather touch is the unit; a scalar point-edge PIP test on the
    baseline path costs roughly one unit too (both are one fused
    multiply-compare inside a vectorized kernel); raster setup has a
    small per-row constant.

    ``scatter`` and ``frame_sweep`` price the scatter-gather RasterJoin
    plan, calibrated against ``benchmarks/bench_pr2_hotpaths.py``
    timings on the simulated-GPU substrate: one bincount scatter per
    point costs a bit more than a gather (~1.5x — the scatter builds
    per-pixel partials for count *and* value), while a full-frame
    allocation/scan pass (label grid, occupied-pixel scan) moves ~4x
    less data per pixel than a 9-channel blend touch (~0.25x).
    """

    pixel_touch: float = 1.0
    gather: float = 1.0
    edge_test: float = 1.0
    raster_row_setup: float = 4.0
    scatter: float = 1.5
    frame_sweep: float = 0.25
    #: Cost of visiting one python k-d tree node (build or probe).
    #: Scalar python work per node, but the competing canvas-probe
    #: pipeline pays heavy per-probe constants too; the ratio is
    #: calibrated against ``benchmarks/bench_pr3_engine.py``.
    index_node: float = 2.5
    #: Per-(point, polygon) bbox prefilter compare of the bbox-gathered
    #: join-then-aggregate plan (one vectorized range test).
    prefilter: float = 0.05
    #: Fixed per-tile overhead of the tiled plans: a cache probe, a
    #: lattice intersection and a small-array dispatch per tile.  Keeps
    #: absurdly fine tilings from pricing as free once their raster
    #: work is warm.
    tile_overhead: float = 64.0


def _polygon_edges(polygons: Sequence[Polygon]) -> int:
    total = 0
    for p in polygons:
        total += len(p.shell)
        total += sum(len(h) for h in p.holes)
    return total


def _bbox_pixel_fraction(
    polygons: Sequence[Polygon], window: BoundingBox | None
) -> float:
    """Summed fraction of the frame each polygon's clipped bbox covers.

    Rasterization is bbox-clipped, so the pixels a constraint canvas
    actually sweeps are ``frac * H * W`` rather than the whole frame
    per polygon.  Without a window (callers pricing plans in the
    abstract) every polygon conservatively counts as a full frame —
    the pre-clipping cost shape.
    """
    if window is None or window.width <= 0 or window.height <= 0:
        return float(len(polygons))
    total = 0.0
    for p in polygons:
        b = p.bounds
        w = max(min(b.xmax, window.xmax) - max(b.xmin, window.xmin), 0.0)
        h = max(min(b.ymax, window.ymax) - max(b.ymin, window.ymin), 0.0)
        total += (w / window.width) * (h / window.height)
    return total


def _bbox_row_profile(
    polygons: Sequence[Polygon], window: BoundingBox | None
) -> tuple[float, float]:
    """``(row_frac_sum, edge_rows)`` for the clipped raster row terms.

    The clipped fill only sets up and scatters edges over each
    polygon's bbox *rows*: ``row_frac_sum`` is the summed fraction of
    frame rows swept (one full frame per polygon without a window) and
    ``edge_rows`` is ``Σ edges_p * row_frac_p`` — the edge/row scatter
    work, which the caller multiplies by the frame height.
    """
    if window is None or window.height <= 0:
        return float(len(polygons)), float(_polygon_edges(polygons))
    row_sum = 0.0
    edge_rows = 0.0
    for p in polygons:
        b = p.bounds
        h = max(min(b.ymax, window.ymax) - max(b.ymin, window.ymin), 0.0)
        frac = h / window.height
        row_sum += frac
        edge_rows += _polygon_edges([p]) * frac
    return row_sum, edge_rows


def _tiled_terms(
    model: CostModel,
    tiling: int,
    warm_tiles: int,
    total_tiles: int,
) -> tuple[float, float]:
    """``(cold_fraction, overhead)`` of a K×K tiled raster candidate.

    The tiled plan re-rasterizes only the tiles missing from the tile
    cache — a *warm_tiles*/*total_tiles* fraction of the raster/sweep
    work drops out — and pays :attr:`CostModel.tile_overhead` per tile
    for the probes and stitching bookkeeping.  *total_tiles* defaults
    to ``tiling²`` when the caller has not built the lattice yet (a
    lattice-aligned grid may carry one extra partial tile per axis).
    """
    tiles = total_tiles if total_tiles > 0 else tiling * tiling
    warm_frac = min(warm_tiles / tiles, 1.0) if tiles else 0.0
    return 1.0 - warm_frac, tiles * model.tile_overhead


def _validate_workload(n_points: int, polygons: Sequence[Polygon]) -> None:
    """Reject degenerate workloads instead of ranking zero-cost plans.

    With no points or no polygons every candidate costs ~0 and the
    "choice" is meaningless noise; callers (the engine short-circuits
    empty inputs before planning) must not reach the optimizer with
    them.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    if not polygons:
        raise ValueError(
            "cannot plan without constraint polygons; the workload must "
            "contain at least one polygon"
        )


def selection_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
    constraint_cached: bool = False,
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for selecting points under polygon constraints.

    *window* (the query's world window, when the caller knows it) makes
    the raster costs bbox-aware: constraint rasterization is clipped to
    each polygon's pixel bounding box, so small constraints no longer
    price as full-frame sweeps.

    *constraint_cached* prices the blended plan knowing its constraint
    canvas is already materialized (the engine's canvas cache holds it,
    or an earlier query in the same batch will build it): the raster
    cost drops out and only the per-point gathers remain — which is how
    a repeated dashboard query can flip from the PIP plan to the canvas
    plan on warm runs.

    *tiling* adds the K×K tile-sharded variant of the blended plan:
    the raster work shrinks by the warm-tile fraction
    (*warm_tiles*/*total_tiles* — the engine probes its tile cache
    before planning), the gathers are unchanged, and each tile pays
    :attr:`CostModel.tile_overhead`.
    """
    _validate_workload(n_points, polygons)
    height, width = resolution
    edges = _polygon_edges(polygons)
    raster_px = _bbox_pixel_fraction(polygons, window) * height * width
    row_frac, edge_rows = _bbox_row_profile(polygons, window)

    # Plan A — canvas algebra: rasterize each constraint once into its
    # clipped bbox (edge-to-row scatter + parity cumsum over the bbox
    # rows only), then one gather per point, independent of polygon
    # count/complexity.
    raster_cost = (
        row_frac * height * model.raster_row_setup
        + edge_rows * height * 0.01 * model.pixel_touch  # edge/row scatter
        + raster_px * model.pixel_touch
    )
    if constraint_cached:
        raster_cost = 0.0
    blended_cost = raster_cost + n_points * model.gather
    plans = [
        PlanEstimate(
            name="blended-canvas",
            cost=blended_cost,
            description=(
                "B*[⊕] over constraint canvases, one gather per point "
                "(M[Mp'](B[⊙](CP, B*[⊕](CQ))))"
            ),
        )
    ]

    # Plan B — per-polygon tests: every point against every edge of
    # every polygon (the traditional strategy; what the GPU baseline
    # does in vectorized form).
    per_poly_cost = float(n_points) * edges * model.edge_test
    plans.append(
        PlanEstimate(
            name="per-polygon-pip",
            cost=per_poly_cost,
            description="point-in-polygon test per (point, polygon) pair",
        )
    )

    if tiling is not None:
        cold, overhead = _tiled_terms(model, tiling, warm_tiles, total_tiles)
        plans.append(
            PlanEstimate(
                name="blended-canvas-tiled",
                cost=raster_cost * cold + n_points * model.gather + overhead,
                description=(
                    f"B*[⊕] sharded into a {tiling}x{tiling} tile lattice; "
                    "warm tiles gather from the tile cache, cold tiles "
                    "re-rasterize"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def choose_selection_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> PlanEstimate:
    """The cheapest selection plan under the cost model."""
    return selection_plans(n_points, polygons, resolution, model, window)[0]


def aggregation_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for group-by-over-join aggregation.

    Costs track the scatter-gather RasterJoin execution: one bincount
    scatter over the points, two cheap full-frame sweeps (label grid +
    occupied-pixel scan), per-polygon work clipped to the polygon's
    pixel bbox, and one gather per occupied pixel — instead of the
    pre-rewrite per-polygon full-frame blend.
    """
    _validate_workload(n_points, polygons)
    height, width = resolution
    n_polys = len(polygons)
    frame = height * width
    bbox_frac = _bbox_pixel_fraction(polygons, window)
    bbox_px = bbox_frac * frame

    # Join-then-aggregate: per polygon, rasterize the (bbox-clipped)
    # constraint canvas, prefilter the points to the polygon's clipped
    # pixel bbox (one vectorized range test per point per polygon),
    # and gather only the survivors, then reduce.  Without a window the
    # bbox fraction degrades to one full frame per polygon — the
    # pre-prefilter cost shape.
    join_then_agg = (
        bbox_px * model.pixel_touch
        + n_polys * n_points * model.prefilter * model.gather
        + n_points * bbox_frac * model.gather
    )
    # RasterJoin (scatter-gather): scatter all points once, sweep the
    # label grid + occupied pixels, fill each polygon's clipped bbox,
    # gather the point-covered pixels.
    rasterjoin = (
        n_points * model.scatter
        + 2 * frame * model.frame_sweep * model.pixel_touch
        + bbox_px * model.pixel_touch
        + min(n_points, frame) * model.gather
    )

    plans = [
        PlanEstimate(
            name="rasterjoin",
            cost=rasterjoin,
            description=(
                "B*[+](D*[γc](M[Mp](B[⊙](B*[+](CP), CY)))) — scatter points "
                "once, label-grid join, per-polygon cost bounded by its bbox"
            ),
        ),
        PlanEstimate(
            name="join-then-aggregate",
            cost=join_then_agg,
            description=(
                "B*[+](G[γc](M[Mp](B[⊙](CP, CY)))) — per-polygon gather over "
                "all points, then aggregate"
            ),
        ),
    ]
    if tiling is not None:
        cold, overhead = _tiled_terms(model, tiling, warm_tiles, total_tiles)
        tiled_cost = (
            bbox_px * model.pixel_touch * cold
            + n_polys * n_points * model.prefilter * model.gather
            + n_points * bbox_frac * model.gather
            + overhead
        )
        plans.append(
            PlanEstimate(
                name="join-then-aggregate-tiled",
                cost=tiled_cost,
                description=(
                    f"per-polygon gather against a {tiling}x{tiling} tile "
                    "lattice; warm tiles skip rasterization"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def choose_aggregation_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> PlanEstimate:
    """The cheapest aggregation plan under the cost model."""
    return aggregation_plans(n_points, polygons, resolution, model, window)[0]


# ----------------------------------------------------------------------
# The routed-query tail: distance / kNN / Voronoi / OD / geometry
# selections (every public frontend prices at least two plans)
# ----------------------------------------------------------------------
def _geometry_edges(geometry) -> int:
    """Primitive segment count of any geometry (PIP/intersection work)."""
    if isinstance(geometry, Polygon):
        return _polygon_edges([geometry])
    vertices = getattr(geometry, "vertex_array", None)
    if vertices is not None:
        return max(len(vertices()) - 1, 1)
    return 1


def distance_plans(
    n_points: int,
    radius: float,
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for a distance (``Circ``) selection.

    The disk mask is evaluated over the whole frame (``Canvas.circle``
    is not bbox-clipped), so the canvas plan pays a full-frame sweep
    plus one gather per point; the direct plan is one vectorized
    distance compare per point.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    height, width = resolution
    circle_cost = (
        height * width * model.pixel_touch
        + height * model.raster_row_setup
        + n_points * model.gather
    )
    direct_cost = n_points * 2.0 * model.edge_test
    plans = [
        PlanEstimate(
            name="circle-canvas",
            cost=circle_cost,
            description=(
                "Circ[(x,y), d]() + one gather per point "
                "(M[Mp'](B[⊙](CP, Circ)))"
            ),
        ),
        PlanEstimate(
            name="direct-distance",
            cost=direct_cost,
            description="vectorized exact distance test per point",
        ),
    ]
    if tiling is not None:
        cold, overhead = _tiled_terms(model, tiling, warm_tiles, total_tiles)
        sweep_cost = (
            height * width * model.pixel_touch
            + height * model.raster_row_setup
        )
        plans.append(
            PlanEstimate(
                name="circle-canvas-tiled",
                cost=sweep_cost * cold + n_points * model.gather + overhead,
                description=(
                    f"Circ sharded into a {tiling}x{tiling} tile lattice; "
                    "warm tiles gather from the tile cache"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def knn_plans(
    n_points: int,
    k: int,
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
) -> list[PlanEstimate]:
    """Candidate plans for k nearest neighbors (Section 4.4).

    The concentric-circle plan bisection-probes the radius, each probe
    being a full distance selection; the k-d tree plan pays a scalar
    python build (``index_node`` per visited node) plus a short probe.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    height, width = resolution
    # Bisection resolves the k-th radius to pixel granularity.
    probes = math.log2(max(height, width)) + 4.0
    probe_cost = (
        height * width * model.pixel_touch
        + height * model.raster_row_setup
        + n_points * model.gather
    )
    circles_cost = probes * probe_cost
    log_n = math.log2(max(n_points, 2))
    kdtree_cost = (
        n_points * log_n * model.index_node        # build
        + (k + log_n) * 4.0 * model.index_node     # probe
    )
    plans = [
        PlanEstimate(
            name="canvas-distance-probes",
            cost=circles_cost,
            description=(
                "concentric Circ probes, bisected on the radius "
                f"(~{probes:.0f} full distance selections)"
            ),
        ),
        PlanEstimate(
            name="kdtree-refine",
            cost=kdtree_cost,
            description="build a k-d tree over the points, probe k nearest",
        ),
    ]
    return sorted(plans, key=lambda p: p.cost)


def voronoi_plans(
    n_sites: int,
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for the Voronoi stored procedure (Section 4.5).

    Both realize ``ComputeVoronoi`` exactly (bit-identical canvases);
    they differ in constant factor only: one full-screen ``V[f]`` pass
    per site vs a blocked argmin that streams site chunks over the
    frame with cheap fused sweeps.
    """
    if n_sites <= 0:
        raise ValueError("cannot plan a Voronoi diagram over zero sites")
    height, width = resolution
    frame = height * width
    iterated_cost = n_sites * (
        frame * model.pixel_touch + height * model.raster_row_setup
    )
    argmin_cost = (
        n_sites * frame * model.frame_sweep * model.pixel_touch
        + frame * model.pixel_touch
    )
    plans = [
        PlanEstimate(
            name="iterated-value-transform",
            cost=iterated_cost,
            description=(
                "insert one site per V[f] full-screen pass "
                "(the paper's ComputeVoronoi loop)"
            ),
        ),
        PlanEstimate(
            name="blocked-argmin",
            cost=argmin_cost,
            description=(
                "stream site blocks over the frame, keep the running "
                "nearest site per pixel (same claims, fused sweeps)"
            ),
        ),
    ]
    if tiling is not None:
        cold, overhead = _tiled_terms(model, tiling, warm_tiles, total_tiles)
        tiled_cost = (
            n_sites * frame * model.frame_sweep * model.pixel_touch * cold
            + frame * model.pixel_touch
            + overhead
        )
        plans.append(
            PlanEstimate(
                name="blocked-argmin-tiled",
                cost=tiled_cost,
                description=(
                    f"blocked argmin per {tiling}x{tiling} lattice tile; "
                    "warm tiles reuse cached owner/d² planes"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def od_plans(
    n_points: int,
    q1: Polygon,
    q2: Polygon,
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for the origin-destination double selection.

    The canvas plan rasterizes both constraints (bbox-clipped) and pays
    one gather per point at the origin stage plus one per survivor at
    the destination stage; the per-pair plan runs the exact PIP kernel
    against Q1 on all points and against Q2 on the survivors.  The
    origin selectivity is estimated by Q1's clipped bbox fraction.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    height, width = resolution
    sel1 = min(_bbox_pixel_fraction([q1], window), 1.0)
    raster_px = _bbox_pixel_fraction([q1, q2], window) * height * width
    row_frac, edge_rows = _bbox_row_profile([q1, q2], window)
    raster_cost = (
        row_frac * height * model.raster_row_setup
        + edge_rows * height * 0.01 * model.pixel_touch
        + raster_px * model.pixel_touch
    )
    canvas_cost = (
        raster_cost
        + n_points * model.gather
        + n_points * sel1 * model.gather
    )
    pip_cost = (
        n_points * _polygon_edges([q1]) * model.edge_test
        + n_points * sel1 * _polygon_edges([q2]) * model.edge_test
    )
    plans = [
        PlanEstimate(
            name="two-stage-canvas",
            cost=canvas_cost,
            description=(
                "M[Mp'](B[⊙](G[γd](origin selection), CQ2)) — "
                "Figure 8(a) as two canvas stages"
            ),
        ),
        PlanEstimate(
            name="per-pair-pip",
            cost=pip_cost,
            description=(
                "exact PIP against Q1, then against Q2 on the survivors"
            ),
        ),
    ]
    if tiling is not None:
        cold, overhead = _tiled_terms(
            model, tiling, warm_tiles,
            total_tiles if total_tiles > 0 else 2 * tiling * tiling,
        )
        tiled_cost = (
            raster_cost * cold
            + n_points * model.gather
            + n_points * sel1 * model.gather
            + overhead
        )
        plans.append(
            PlanEstimate(
                name="two-stage-canvas-tiled",
                cost=tiled_cost,
                description=(
                    f"both canvas stages sharded into {tiling}x{tiling} "
                    "tile lattices; warm tiles skip rasterization"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def geometry_selection_plans(
    data_geometries: Sequence,
    query: Polygon,
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
    window: BoundingBox | None = None,
    tiling: int | None = None,
    warm_tiles: int = 0,
    total_tiles: int = 0,
) -> list[PlanEstimate]:
    """Candidate plans for polygon/polyline INTERSECTS selections.

    The canvas plan rasterizes the query and every data record
    (bbox-clipped) and gathers once per covered data cell; the
    predicate plan runs the exact pairwise intersection test per
    record (edge-by-edge segment work).
    """
    if not data_geometries:
        raise ValueError(
            "cannot plan a geometry selection without data records"
        )
    height, width = resolution
    frame = height * width
    query_edges = _polygon_edges([query])
    data_px = sum(
        min(_bbox_pixel_fraction([g], window), 1.0) * frame
        for g in data_geometries
    )
    query_px = min(_bbox_pixel_fraction([query], window), 1.0) * frame
    canvas_cost = (
        query_px * model.pixel_touch
        + data_px * model.pixel_touch       # render each record
        + data_px * model.gather            # one gather per covered cell
    )
    predicate_cost = float(
        sum(_geometry_edges(g) for g in data_geometries)
    ) * query_edges * model.edge_test
    plans = [
        PlanEstimate(
            name="canvas-blend",
            cost=canvas_cost,
            description=(
                "M[My](B[⊕](CY, CQ)) — blend every record canvas with "
                "the query canvas, refine boundary-only records"
            ),
        ),
        PlanEstimate(
            name="per-record-predicate",
            cost=predicate_cost,
            description="exact pairwise intersection test per record",
        ),
    ]
    if tiling is not None:
        cold, overhead = _tiled_terms(model, tiling, warm_tiles, total_tiles)
        tiled_cost = (
            query_px * model.pixel_touch * cold
            + data_px * model.pixel_touch
            + data_px * model.gather
            + overhead
        )
        plans.append(
            PlanEstimate(
                name="canvas-blend-tiled",
                cost=tiled_cost,
                description=(
                    f"query canvas sharded into a {tiling}x{tiling} tile "
                    "lattice; the record set gathers tile by tile"
                ),
            )
        )
    return sorted(plans, key=lambda p: p.cost)


def explain(plans: Sequence[PlanEstimate]) -> str:
    """Tabular rendering of candidate plans, cheapest first."""
    ordered = sorted(plans, key=lambda p: p.cost)
    if not ordered:
        return "no candidate plans"
    width = max(len(p.name) for p in ordered)
    lines = [f"{'plan'.ljust(width)}  {'est. cost':>12}  description"]
    for p in ordered:
        lines.append(f"{p.name.ljust(width)}  {p.cost:12.3g}  {p.description}")
    return "\n".join(lines)
