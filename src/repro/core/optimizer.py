"""Plan enumeration and cost-based choice (Section 7, "Query Optimization").

The paper argues the algebra enables optimization by (1) admitting
multiple equivalent plans for a query and (2) exposing operator-level
cost models.  This module operationalizes that for the two plan choices
the paper itself discusses:

- **multi-constraint selection** — per-polygon PIP testing vs blending
  all constraints into one canvas first (Figure 8(b));
- **join-aggregation** — join-then-aggregate vs the RasterJoin plan
  (Figure 8(c)).

Costs are simple linear models in the dominant work terms (pixels
touched, point-edge tests, gathers); they only need to rank plans, not
predict wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.primitives import Polygon


@dataclass(frozen=True)
class PlanEstimate:
    """A candidate plan with its estimated cost (arbitrary work units)."""

    name: str
    cost: float
    description: str


@dataclass(frozen=True)
class CostModel:
    """Relative per-operation weights.

    The defaults reflect the simulated-GPU substrate: a vectorized
    pixel/gather touch is the unit; a scalar point-edge PIP test on the
    baseline path costs roughly one unit too (both are one fused
    multiply-compare inside a vectorized kernel); raster setup has a
    small per-row constant.
    """

    pixel_touch: float = 1.0
    gather: float = 1.0
    edge_test: float = 1.0
    raster_row_setup: float = 4.0


def _polygon_edges(polygons: Sequence[Polygon]) -> int:
    total = 0
    for p in polygons:
        total += len(p.shell)
        total += sum(len(h) for h in p.holes)
    return total


def _validate_workload(n_points: int, polygons: Sequence[Polygon]) -> None:
    """Reject degenerate workloads instead of ranking zero-cost plans.

    With no points or no polygons every candidate costs ~0 and the
    "choice" is meaningless noise; callers (the engine short-circuits
    empty inputs before planning) must not reach the optimizer with
    them.
    """
    if n_points <= 0:
        raise ValueError(
            f"cannot plan over {n_points} points; the workload must "
            "contain at least one point"
        )
    if not polygons:
        raise ValueError(
            "cannot plan without constraint polygons; the workload must "
            "contain at least one polygon"
        )


def selection_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
) -> list[PlanEstimate]:
    """Candidate plans for selecting points under polygon constraints."""
    _validate_workload(n_points, polygons)
    height, width = resolution
    n_polys = len(polygons)
    edges = _polygon_edges(polygons)

    # Plan A — canvas algebra: rasterize each constraint once
    # (edge-to-row scatter + parity cumsum over the frame), then one
    # gather per point, independent of polygon count/complexity.
    raster_cost = (
        n_polys * height * model.raster_row_setup
        + edges * height * 0.01 * model.pixel_touch  # edge/row scatter
        + n_polys * height * width * model.pixel_touch
    )
    blended_cost = raster_cost + n_points * model.gather
    plans = [
        PlanEstimate(
            name="blended-canvas",
            cost=blended_cost,
            description=(
                "B*[⊕] over constraint canvases, one gather per point "
                "(M[Mp'](B[⊙](CP, B*[⊕](CQ))))"
            ),
        )
    ]

    # Plan B — per-polygon tests: every point against every edge of
    # every polygon (the traditional strategy; what the GPU baseline
    # does in vectorized form).
    per_poly_cost = float(n_points) * edges * model.edge_test
    plans.append(
        PlanEstimate(
            name="per-polygon-pip",
            cost=per_poly_cost,
            description="point-in-polygon test per (point, polygon) pair",
        )
    )
    return sorted(plans, key=lambda p: p.cost)


def choose_selection_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
) -> PlanEstimate:
    """The cheapest selection plan under the cost model."""
    return selection_plans(n_points, polygons, resolution, model)[0]


def aggregation_plans(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
) -> list[PlanEstimate]:
    """Candidate plans for group-by-over-join aggregation."""
    _validate_workload(n_points, polygons)
    height, width = resolution
    n_polys = len(polygons)
    frame = height * width * model.pixel_touch

    # Join-then-aggregate: per polygon, gather every point then reduce.
    join_then_agg = n_polys * (frame + n_points * model.gather)
    # RasterJoin: one scatter pass over points, then per-polygon work
    # bounded by the frame (mask + reduction over pixels).
    rasterjoin = n_points * model.gather + n_polys * 2 * frame

    plans = [
        PlanEstimate(
            name="rasterjoin",
            cost=rasterjoin,
            description=(
                "B*[+](D*[γc](M[Mp](B[⊙](B*[+](CP), CY)))) — merge points "
                "first, per-polygon cost bounded by texture size"
            ),
        ),
        PlanEstimate(
            name="join-then-aggregate",
            cost=join_then_agg,
            description=(
                "B*[+](G[γc](M[Mp](B[⊙](CP, CY)))) — per-polygon gather over "
                "all points, then aggregate"
            ),
        ),
    ]
    return sorted(plans, key=lambda p: p.cost)


def choose_aggregation_plan(
    n_points: int,
    polygons: Sequence[Polygon],
    resolution: tuple[int, int],
    model: CostModel = CostModel(),
) -> PlanEstimate:
    """The cheapest aggregation plan under the cost model."""
    return aggregation_plans(n_points, polygons, resolution, model)[0]


def explain(plans: Sequence[PlanEstimate]) -> str:
    """Tabular rendering of candidate plans, cheapest first."""
    ordered = sorted(plans, key=lambda p: p.cost)
    if not ordered:
        return "no candidate plans"
    width = max(len(p.name) for p in ordered)
    lines = [f"{'plan'.ljust(width)}  {'est. cost':>12}  description"]
    for p in ordered:
        lines.append(f"{p.name.ljust(width)}  {p.cost:12.3g}  {p.description}")
    return "\n".join(lines)
