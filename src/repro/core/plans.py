"""Plan library: the paper's figures as ready-made expression trees.

Each builder returns a :class:`repro.core.expressions.Node` tree that
mirrors one of the paper's plan diagrams (Figures 5-8).  The trees are
*executable* — ``plan.evaluate()`` runs them through the algebra — and
*printable* — ``render_plan(plan)`` reproduces the diagram.  They are
the bridge between the high-level query API (which hand-fuses the same
expressions for speed) and the formal algebra, and what a cost-based
optimizer would enumerate over.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.blendfuncs import PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import (
    AccumulateNode,
    InputNode,
    MultiwayBlendNode,
    Node,
    UtilityNode,
)
from repro.core.masks import (
    mask_point_in_any_polygon,
    mask_polygon_intersection,
)
from repro.core.objectinfo import DIM_AREA, FIELD_ID, channel


def selection_plan(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Polygon | Sequence[Polygon],
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Node:
    """Figures 5 / 8(b): ``M[Mp'](B[⊙](CP, B*[⊕](CQ1..CQn)))``.

    One constraint polygon gives exactly the Figure 5 plan (the
    multiway blend over a single canvas is the identity); several give
    the disjunction plan of Figure 8(b).
    """
    polys = [polygons] if isinstance(polygons, Polygon) else list(polygons)
    if not polys:
        raise ValueError("at least one constraint polygon is required")
    cp = InputNode(CanvasSet.from_points(xs, ys), name="CP")
    constraint_nodes = [
        InputNode(
            Canvas.from_polygon(
                poly, window, resolution, record_id=i, device=device
            ),
            name=f"CQ{i}",
        )
        for i, poly in enumerate(polys, start=1)
    ]
    constraints: Node = (
        constraint_nodes[0]
        if len(constraint_nodes) == 1
        else MultiwayBlendNode(POLY_MERGE, constraint_nodes)
    )
    return cp.blend(constraints, PIP_MERGE).mask(  # type: ignore[arg-type]
        mask_point_in_any_polygon(1.0)
    )


def polygon_selection_plan(
    data_polygons: Sequence[Polygon],
    query: Polygon,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Node:
    """Figure 6: ``M[My](B[⊕](CY, CQ))`` over a polygon data set."""
    frame = Canvas(window, resolution, device)
    cy = InputNode(
        CanvasSet.from_polygons(list(data_polygons), frame), name="CY"
    )
    cq = InputNode(
        Canvas.from_polygon(query, window, resolution, record_id=1,
                            device=device),
        name="CQ",
    )
    return cy.blend(cq, POLY_MERGE).mask(mask_polygon_intersection(2.0))


def group_gamma(data: np.ndarray, valid: np.ndarray):
    """The paper's ``γc(s) = (s[2][0], 0)`` as a reusable callable."""
    gx = data[:, channel(DIM_AREA, FIELD_ID)] + 0.5
    return gx, np.full_like(gx, 0.5)


def count_plan(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
    max_group_id: int = 1,
) -> Node:
    """Figure 7: ``B*[+](G[γc](M[Mp](B[⊙](CP, CQ))))``.

    Evaluates to the accumulator canvas; the count sits at
    ``C(1, 0)[0][1]`` exactly as the paper reads it.
    """
    selected = selection_plan(xs, ys, polygon, window, resolution, device)
    return AccumulateNode(
        group_gamma,
        BoundingBox(0.0, 0.0, float(max_group_id + 1), 1.0),
        (1, max_group_id + 1),
        selected,
    )


def distance_selection_plan(
    xs: np.ndarray,
    ys: np.ndarray,
    center: tuple[float, float],
    radius: float,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Node:
    """Section 4.1's distance selection: the query canvas comes from
    the ``Circ`` utility operator instead of a stored polygon."""
    cp = InputNode(CanvasSet.from_points(xs, ys), name="CP")
    circ_node = UtilityNode(
        "Circ",
        lambda: Canvas.circle(center, radius, window, resolution, 1, device),
        params=f"({center[0]:g},{center[1]:g}), {radius:g}",
    )
    return cp.blend(circ_node, PIP_MERGE).mask(mask_point_in_any_polygon(1.0))
