"""Computational-geometry stored procedures (Section 4.5).

"These include queries such as computing the Voronoi diagram, spatial
skyline, and convex hull ... the provided operators can be used as part
of a stored procedure to execute some of them."

The Voronoi procedure lives in :func:`repro.core.queries.voronoi`
(iterated Value Transform, exactly the paper's pseudo-code).  This
module adds the other two examples the paper names:

- :func:`convex_hull_query` — the exact hull from the geometry
  substrate, plus a canvas-based visibility check helper;
- :func:`spatial_skyline` — the skyline of a data set with respect to
  a set of query points: all points not *distance-dominated* by
  another point (p dominates q when p is at least as close to every
  query point and strictly closer to one).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.convexhull import convex_hull
from repro.geometry.primitives import Polygon


def convex_hull_query(
    xs: np.ndarray, ys: np.ndarray
) -> tuple[Polygon, np.ndarray]:
    """Convex hull of a point set.

    Returns the hull polygon and the indices of input points lying on
    the hull boundary (vertices of the hull).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if len(xs) < 3:
        raise ValueError("a convex hull query needs at least three points")
    hull_coords = convex_hull(zip(xs.tolist(), ys.tolist()))
    from repro.geometry.predicates import ring_signed_area

    if len(hull_coords) < 3 or abs(ring_signed_area(hull_coords)) < 1e-300:
        raise ValueError("input points are collinear")
    hull_set = set(hull_coords)
    on_hull = np.array(
        [(float(x), float(y)) in hull_set for x, y in zip(xs, ys)],
        dtype=bool,
    )
    return Polygon(hull_coords), np.nonzero(on_hull)[0]


def spatial_skyline(
    xs: np.ndarray,
    ys: np.ndarray,
    query_points: np.ndarray,
) -> np.ndarray:
    """Spatial skyline of points w.r.t. *query_points*.

    A data point ``p`` is in the skyline iff no other data point is at
    least as close to *every* query point and strictly closer to at
    least one.  Runs the vectorized block-nested-loop skyline in
    ``O(n^2 * |Q|)`` array work — ample for the stored-procedure
    setting the paper sketches.

    Returns the sorted indices of skyline points.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    queries = np.asarray(query_points, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 2:
        raise ValueError("query_points must be an (m, 2) array")
    if len(queries) == 0:
        raise ValueError("spatial skyline needs at least one query point")
    n = len(xs)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    # Distance matrix: (n points) x (m query points).
    dists = np.hypot(
        xs[:, None] - queries[None, :, 0],
        ys[:, None] - queries[None, :, 1],
    )

    alive = np.ones(n, dtype=bool)
    # Process candidates in order of distance-sum: a classic skyline
    # heuristic — early winners prune many losers.
    order = np.argsort(dists.sum(axis=1), kind="stable")
    for idx in order:
        if not alive[idx]:
            continue
        dominated = (
            (dists[idx][None, :] <= dists).all(axis=1)
            & (dists[idx][None, :] < dists).any(axis=1)
        )
        dominated[idx] = False
        alive &= ~dominated
    return np.nonzero(alive)[0]
