"""Standard spatial queries as canvas-algebra expressions (Section 4).

Every public function here is a direct transcription of one of the
paper's algebraic expressions, executed through the operators of
:mod:`repro.core.algebra` with exact boundary refinement
(:mod:`repro.core.accuracy`).  Results come back as plain ids/values so
callers never touch pixels, and each result carries enough bookkeeping
(candidate counts, exact tests performed, the plan tree) for the
benchmarks and the optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import (
    points_in_polygon,
    polygon_intersects_polygon,
)
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra
from repro.core.accuracy import refine_point_samples
from repro.core.blendfuncs import PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.masks import (
    mask_point_in_all_polygons,
    mask_point_in_any_polygon,
    mask_polygon_intersection,
)
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    channel,
)

SelectMode = Literal["any", "all"]


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass
class SelectionResult:
    """Outcome of a selection query.

    Attributes
    ----------
    ids:
        Sorted record ids satisfying the constraint (exact).
    n_candidates:
        Records that survived the raster mask before refinement.
    n_exact_tests:
        Exact geometric tests spent on boundary pixels.
    samples:
        The surviving canvas-set samples (for downstream composition).
    """

    ids: np.ndarray
    n_candidates: int
    n_exact_tests: int
    samples: CanvasSet = field(repr=False, default_factory=CanvasSet.empty)

    def __len__(self) -> int:
        return len(self.ids)


@dataclass
class AggregateResult:
    """Outcome of an aggregation query: group key -> aggregate value."""

    groups: np.ndarray
    values: np.ndarray
    aggregate: str

    def as_dict(self) -> dict[int, float]:
        return {int(g): float(v) for g, v in zip(self.groups, self.values)}

    def __len__(self) -> int:
        return len(self.groups)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _unique_ids(keys: np.ndarray) -> np.ndarray:
    """``np.unique`` with a fast path for already-sorted-unique keys.

    Point canvas sets carry one sample per record in id order, so
    selection results are usually strictly increasing already; the
    linear monotonicity check then skips the full unique machinery.
    """
    if len(keys) < 2:
        return keys.copy()
    diffs = np.diff(keys)
    if (diffs > 0).all():
        return keys.copy()
    return np.unique(keys)


def default_window(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon] = (),
    margin: float = 0.01,
) -> BoundingBox:
    """The union MBR of the data and constraints, slightly expanded."""
    boxes = []
    if len(xs):
        boxes.append(
            BoundingBox(
                float(np.min(xs)), float(np.min(ys)),
                float(np.max(xs)), float(np.max(ys)),
            )
        )
    boxes.extend(p.bounds for p in polygons)
    if not boxes:
        raise ValueError("cannot infer a window from empty inputs")
    box = BoundingBox.union_all(boxes)
    pad = margin * max(box.width, box.height, 1e-12)
    return box.expand(pad)


def build_constraint_canvas(
    polygons: Sequence[Polygon],
    window: BoundingBox,
    resolution: Resolution,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """``B*[⊕]`` over the constraint canvases (Figure 8(b) left branch).

    Each polygon is rendered with count accumulation, so the blended
    canvas's ``s[2][1]`` carries the per-pixel constraint coverage
    count used by the masks ``Mp'`` (>= 1) and its conjunctive variant
    (== n).
    """
    canvas = Canvas(window, resolution, device)
    for i, polygon in enumerate(polygons, start=1):
        canvas.draw_polygon(polygon, record_id=i, accumulate_count=True)
    return canvas


# ----------------------------------------------------------------------
# 4.1 Selection queries
# ----------------------------------------------------------------------
def polygonal_select_points(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Polygon | Sequence[Polygon],
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    mode: SelectMode = "any",
    exact: bool = True,
    constraint_canvas: Canvas | None = None,
) -> SelectionResult:
    """``SELECT * FROM DP WHERE Location INSIDE Q`` (and Fig. 8(b)).

    Implements ``M[Mp'](B[⊙](CP, B*[⊕](CQ)))``: the constraint
    polygons are blended once into a single canvas; each point canvas
    blends against it (a texture gather) and the mask keeps points with
    coverage count >= 1 (*any*) or == n (*all*).  Boundary-pixel hits
    are re-tested exactly unless ``exact=False`` (the paper's
    approximate mode, where texture size bounds the error).
    """
    polys = [polygons] if isinstance(polygons, Polygon) else list(polygons)
    if not polys:
        raise ValueError("at least one constraint polygon is required")
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys, polys)

    if constraint_canvas is None:
        constraint_canvas = build_constraint_canvas(
            polys, window, resolution, device
        )
    point_set = CanvasSet.from_points(xs, ys, ids=ids)
    blended = algebra.blend(point_set, constraint_canvas, PIP_MERGE)
    predicate = (
        mask_point_in_any_polygon(1.0)
        if mode == "any"
        else mask_point_in_all_polygons(float(len(polys)))
    )
    masked = algebra.mask(blended, predicate)
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_samples

    n_tests = 0
    if exact:
        min_containing = 1 if mode == "any" else len(polys)
        masked, n_tests = refine_point_samples(
            masked, polys, min_containing=min_containing
        )
    return SelectionResult(
        ids=_unique_ids(masked.keys),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked,
    )


def multi_polygonal_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    mode: SelectMode = "any",
    **kwargs,
) -> SelectionResult:
    """Disjunctive/conjunctive multi-polygon selection (Section 5.1)."""
    return polygonal_select_points(xs, ys, list(polygons), mode=mode, **kwargs)


def polygonal_select_polygons(
    data_polygons: Sequence[Polygon],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DY WHERE Geometry INTERSECTS Q`` (Figure 6).

    Implements ``M[My](B[⊕](CY, CQ))``: every data-polygon canvas
    blends with the query canvas under ``⊕`` (counts add); the mask
    keeps pixels with two incident 2-primitives.  Records whose only
    surviving samples are boundary-flagged get an exact
    polygon-intersects-polygon test.
    """
    polys = list(data_polygons)
    id_list = list(ids) if ids is not None else list(range(len(polys)))
    if window is None:
        all_pts_x = np.array([query.bounds.xmin, query.bounds.xmax])
        all_pts_y = np.array([query.bounds.ymin, query.bounds.ymax])
        window = default_window(all_pts_x, all_pts_y, polys + [query])

    frame = Canvas(window, resolution, device)
    data_set = CanvasSet.from_polygons(polys, frame, ids=id_list)
    query_canvas = Canvas.from_polygon(
        query, window, resolution, record_id=1, device=device
    )
    blended = algebra.blend(data_set, query_canvas, POLY_MERGE)
    masked = algebra.mask(blended, mask_polygon_intersection(2.0))
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_records

    if masked.is_empty():
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64),
            n_candidates=0,
            n_exact_tests=0,
            samples=masked,
        )

    if not exact:
        return SelectionResult(
            ids=_unique_ids(masked.keys),
            n_candidates=n_candidates,
            n_exact_tests=0,
            samples=masked,
        )

    # A record with a surviving non-boundary sample intersects for sure
    # (both coverages are pure-interior there); boundary-only records
    # need the exact predicate.
    certain = np.unique(masked.keys[~masked.boundary])
    uncertain = np.setdiff1d(np.unique(masked.keys), certain)
    by_id = {rid: poly for rid, poly in zip(id_list, polys)}
    n_tests = 0
    confirmed = [
        rid
        for rid in uncertain
        if polygon_intersects_polygon(by_id[int(rid)], query)
    ]
    n_tests = len(uncertain)
    result_ids = np.unique(
        np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
    )
    keep = np.isin(masked.keys, result_ids)
    return SelectionResult(
        ids=result_ids,
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked.filter_rows(keep),
    )


def polygonal_select_lines(
    lines: Sequence["LineString"],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DL WHERE Geometry INTERSECTS Q`` for polylines.

    Section 4's point: the *same* blend+mask expression handles
    1-primitives — only the blend function swaps the S^3 slot it reads
    (``LINE_MERGE`` instead of ``⊙``).  A line sample on a
    pure-interior constraint pixel proves intersection (supercover
    coverage means the line passes through that pixel); boundary-pixel
    candidates fall back to the exact segment-polygon test.
    """
    from repro.geometry.predicates import linestring_intersects_polygon
    from repro.geometry.primitives import LineString
    from repro.core.blendfuncs import LINE_MERGE
    from repro.core.masks import FieldCompare, NotNull

    line_list = list(lines)
    id_list = list(ids) if ids is not None else list(range(len(line_list)))
    if window is None:
        corner_x: list[float] = [query.bounds.xmin, query.bounds.xmax]
        corner_y: list[float] = [query.bounds.ymin, query.bounds.ymax]
        for line in line_list:
            corner_x.extend([line.bounds.xmin, line.bounds.xmax])
            corner_y.extend([line.bounds.ymin, line.bounds.ymax])
        window = default_window(np.asarray(corner_x), np.asarray(corner_y))

    frame = Canvas(window, resolution, device)
    data_set = CanvasSet.from_linestrings(line_list, frame, ids=id_list)
    query_canvas = Canvas.from_polygon(
        query, window, resolution, record_id=1, device=device
    )
    blended = algebra.blend(data_set, query_canvas, LINE_MERGE)
    predicate = NotNull(DIM_LINE) & FieldCompare(
        DIM_AREA, FIELD_COUNT, ">=", 1.0
    )
    masked = algebra.mask(blended, predicate)
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_records

    if masked.is_empty():
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64), n_candidates=0,
            n_exact_tests=0, samples=masked,
        )
    if not exact:
        return SelectionResult(
            ids=np.unique(masked.keys), n_candidates=n_candidates,
            n_exact_tests=0, samples=masked,
        )

    certain = np.unique(masked.keys[~masked.boundary])
    uncertain = np.setdiff1d(np.unique(masked.keys), certain)
    by_id = {rid: line for rid, line in zip(id_list, line_list)}
    confirmed = [
        rid for rid in uncertain
        if linestring_intersects_polygon(by_id[int(rid)].coords, query)
    ]
    result_ids = np.unique(
        np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
    )
    keep = np.isin(masked.keys, result_ids)
    return SelectionResult(
        ids=result_ids,
        n_candidates=n_candidates,
        n_exact_tests=len(uncertain),
        samples=masked.filter_rows(keep),
    )


def polygonal_select_objects(
    geometries: Sequence,
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Selection over *heterogeneous* geometric objects (Figures 1 & 3).

    The paper's motivating claim: because every record is a canvas,
    "even if the data (restaurants) were represented as polygons
    instead of points, the same set of operations could be applied."
    This query accepts any mix of points, polylines, polygons, their
    Multi* variants and :class:`GeometryCollection` records, decomposes
    each object into its primitives (all carrying the record's id, as
    in Figure 3), and runs the *same* blend+mask expression per
    primitive dimension.  An object is selected when any of its
    primitives intersects the query polygon.
    """
    from repro.geometry.primitives import (
        Geometry,
        GeometryCollection,
        LineSegment,
        LineString,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Point,
    )

    geom_list = list(geometries)
    record_ids = list(ids) if ids is not None else list(range(len(geom_list)))
    if len(record_ids) != len(geom_list):
        raise ValueError("ids must match geometry count")

    # Decompose every object into primitives with surrogate ids.
    point_xs: list[float] = []
    point_ys: list[float] = []
    point_records: list[int] = []
    lines: list[LineString] = []
    line_records: list[int] = []
    polygons: list[Polygon] = []
    polygon_records: list[int] = []

    def decompose(geom: Geometry, rid: int) -> None:
        if isinstance(geom, Point):
            point_xs.append(geom.x)
            point_ys.append(geom.y)
            point_records.append(rid)
        elif isinstance(geom, MultiPoint):
            for x, y in geom.coords:
                point_xs.append(x)
                point_ys.append(y)
                point_records.append(rid)
        elif isinstance(geom, LineString):
            lines.append(geom)
            line_records.append(rid)
        elif isinstance(geom, LineSegment):
            lines.append(LineString([(geom.ax, geom.ay), (geom.bx, geom.by)]))
            line_records.append(rid)
        elif isinstance(geom, MultiLineString):
            for line in geom.lines:
                lines.append(line)
                line_records.append(rid)
        elif isinstance(geom, Polygon):
            polygons.append(geom)
            polygon_records.append(rid)
        elif isinstance(geom, MultiPolygon):
            for poly in geom.polygons:
                polygons.append(poly)
                polygon_records.append(rid)
        elif isinstance(geom, GeometryCollection):
            for part in geom.geometries:
                decompose(part, rid)
        else:
            raise TypeError(
                f"unsupported geometry type: {type(geom).__name__}"
            )

    for geom, rid in zip(geom_list, record_ids):
        decompose(geom, rid)

    if window is None:
        all_x = [query.bounds.xmin, query.bounds.xmax] + point_xs
        all_y = [query.bounds.ymin, query.bounds.ymax] + point_ys
        shapes: list[Polygon | LineString] = list(polygons) + list(lines)
        for shape in shapes:
            all_x.extend([shape.bounds.xmin, shape.bounds.xmax])
            all_y.extend([shape.bounds.ymin, shape.bounds.ymax])
        window = default_window(np.asarray(all_x), np.asarray(all_y))

    selected: set[int] = set()
    n_candidates = 0
    n_tests = 0

    if point_xs:
        result = polygonal_select_points(
            np.asarray(point_xs), np.asarray(point_ys), query,
            ids=np.arange(len(point_xs)), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(point_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if lines:
        result = polygonal_select_lines(
            lines, query, ids=list(range(len(lines))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(line_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if polygons:
        result = polygonal_select_polygons(
            polygons, query, ids=list(range(len(polygons))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(polygon_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests

    return SelectionResult(
        ids=np.asarray(sorted(selected), dtype=np.int64),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
    )


def range_select(
    xs: np.ndarray,
    ys: np.ndarray,
    l1: tuple[float, float],
    l2: tuple[float, float],
    **kwargs,
) -> SelectionResult:
    """Rectangular range constraint via ``Rect[l1, l2]()`` (Section 4.1)."""
    box = BoundingBox(
        min(l1[0], l2[0]), min(l1[1], l2[1]),
        max(l1[0], l2[0]), max(l1[1], l2[1]),
    )
    return polygonal_select_points(xs, ys, Polygon(box.corners), **kwargs)


def halfspace_select(
    xs: np.ndarray,
    ys: np.ndarray,
    a: float,
    b: float,
    c: float,
    window: BoundingBox | None = None,
    **kwargs,
) -> SelectionResult:
    """One-sided range constraint via ``HS[a, b, c]()`` (Section 4.1).

    The half space is clipped to the query window, which must cover the
    data (guaranteed by :func:`default_window` when *window* is None).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys)
    from repro.geometry.clipping import clip_polygon_halfplane

    clipped = clip_polygon_halfplane(window.corners, a, b, c)
    if len(clipped) < 3:
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64), n_candidates=0, n_exact_tests=0
        )
    return polygonal_select_points(
        xs, ys, Polygon(clipped), window=window, **kwargs
    )


def distance_select(
    xs: np.ndarray,
    ys: np.ndarray,
    center: tuple[float, float],
    radius: float,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Distance-based selection via ``Circ[(x, y), d]()`` (Section 4.1).

    Boundary pixels of the disk are refined with the exact distance
    test (the circle's vector form), keeping the result exact.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys)
        cx, cy = center
        window = window.union(
            BoundingBox(cx - radius, cy - radius, cx + radius, cy + radius)
        ).expand(0.01 * radius)

    constraint = Canvas.circle(center, radius, window, resolution, 1, device)
    point_set = CanvasSet.from_points(xs, ys, ids=ids)
    blended = algebra.blend(point_set, constraint, PIP_MERGE)
    masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_samples
    n_tests = 0
    if exact:
        on_boundary = masked.boundary
        n_tests = int(on_boundary.sum())
        if n_tests:
            d = np.hypot(
                masked.xs[on_boundary] - center[0],
                masked.ys[on_boundary] - center[1],
            )
            keep = np.ones(masked.n_samples, dtype=bool)
            keep[np.nonzero(on_boundary)[0]] = d <= radius
            masked = masked.filter_rows(keep)
    return SelectionResult(
        ids=_unique_ids(masked.keys),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked,
    )


# ----------------------------------------------------------------------
# 4.2 Join queries
# ----------------------------------------------------------------------
def spatial_join_points_polygons(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    point_ids: np.ndarray | None = None,
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type I join: ``DP.Location INSIDE DY.Geometry`` (Section 4.2).

    The join is the selection expression with the single query polygon
    replaced by the polygon *collection*; each member canvas of CY
    blends with CP in turn.  Returns exact ``(point_id, polygon_id)``
    pairs, sorted.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    poly_ids = (
        list(polygon_ids) if polygon_ids is not None else list(range(len(polys)))
    )
    if window is None:
        window = default_window(xs, ys, polys)

    pairs: list[tuple[int, int]] = []
    for poly, pid in zip(polys, poly_ids):
        result = polygonal_select_points(
            xs, ys, poly, ids=point_ids,
            window=window, resolution=resolution, device=device, exact=exact,
        )
        pairs.extend((int(point_id), int(pid)) for point_id in result.ids)
    pairs.sort()
    return pairs


def spatial_join_polygons_polygons(
    left: Sequence[Polygon],
    right: Sequence[Polygon],
    left_ids: Sequence[int] | None = None,
    right_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type II join: ``DY1.Geometry INTERSECTS DY2.Geometry``."""
    lids = list(left_ids) if left_ids is not None else list(range(len(left)))
    rids = list(right_ids) if right_ids is not None else list(range(len(right)))
    if window is None:
        corners_x: list[float] = []
        corners_y: list[float] = []
        for p in list(left) + list(right):
            corners_x.extend([p.bounds.xmin, p.bounds.xmax])
            corners_y.extend([p.bounds.ymin, p.bounds.ymax])
        window = default_window(
            np.asarray(corners_x), np.asarray(corners_y)
        )
    pairs: list[tuple[int, int]] = []
    for poly, rid in zip(right, rids):
        result = polygonal_select_polygons(
            list(left), poly, ids=lids,
            window=window, resolution=resolution, device=device, exact=exact,
        )
        pairs.extend((int(lid), int(rid)) for lid in result.ids)
    pairs.sort()
    return pairs


def distance_join(
    left_xs: np.ndarray,
    left_ys: np.ndarray,
    right_xs: np.ndarray,
    right_ys: np.ndarray,
    distance: float,
    left_ids: np.ndarray | None = None,
    right_ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
) -> list[tuple[int, int]]:
    """Type III join: each RHS point becomes a circle (Section 4.2)."""
    left_xs = np.asarray(left_xs, dtype=np.float64)
    left_ys = np.asarray(left_ys, dtype=np.float64)
    right_xs = np.asarray(right_xs, dtype=np.float64)
    right_ys = np.asarray(right_ys, dtype=np.float64)
    rids = (
        np.asarray(right_ids, dtype=np.int64)
        if right_ids is not None
        else np.arange(len(right_xs), dtype=np.int64)
    )
    if window is None:
        all_x = np.concatenate([left_xs, right_xs])
        all_y = np.concatenate([left_ys, right_ys])
        window = default_window(all_x, all_y).expand(distance * 1.05)

    pairs: list[tuple[int, int]] = []
    for i in range(len(right_xs)):
        result = distance_select(
            left_xs, left_ys,
            (float(right_xs[i]), float(right_ys[i])), distance,
            ids=left_ids, window=window,
            resolution=resolution, device=device,
        )
        pairs.extend((int(point_id), int(rids[i])) for point_id in result.ids)
    pairs.sort()
    return pairs


# ----------------------------------------------------------------------
# 4.3 Aggregate queries
# ----------------------------------------------------------------------
def _group_gamma(data: np.ndarray, valid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The paper's ``γc(s) = (s[2][0], 0)`` — group by containing polygon."""
    gx = data[:, channel(DIM_AREA, FIELD_ID)] + 0.5
    gy = np.full_like(gx, 0.5)
    return gx, gy


def _aggregate_samples(
    samples: CanvasSet,
    group_ids: Sequence[int],
    aggregate: str,
    attr_channel: int,
) -> AggregateResult:
    """``B*[+](G[γc](samples))`` read back per group id.

    The accumulator canvas spans the id range ``[0, max_id + 1)`` with
    one pixel per id — the "unique location per object" the paper's
    value-driven transform targets.
    """
    groups = np.asarray(sorted(set(int(g) for g in group_ids)), dtype=np.int64)
    if samples.is_empty():
        fill = math.inf if aggregate == "min" else (-math.inf if aggregate == "max" else 0.0)
        return AggregateResult(
            groups=groups,
            values=np.full(len(groups), 0.0 if aggregate in ("count", "sum", "avg") else fill),
            aggregate=aggregate,
        )
    max_id = int(max(groups.max(), samples.field(DIM_AREA, FIELD_ID).max()))
    window = BoundingBox(0.0, 0.0, float(max_id + 1), 1.0)
    resolution = (1, max_id + 1)

    if aggregate in ("count", "sum", "avg"):
        acc = algebra.aggregate_canvas_set(
            samples, _group_gamma, window, resolution
        )
        counts = acc.field(DIM_POINT, FIELD_COUNT)[0, :]
        sums = acc.field(DIM_POINT, FIELD_VALUE)[0, :]
        if aggregate == "count":
            values = counts[groups]
        elif aggregate == "sum":
            values = sums[groups]
        else:
            with np.errstate(invalid="ignore", divide="ignore"):
                avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
            values = avg[groups]
        return AggregateResult(groups=groups, values=values, aggregate=aggregate)

    if aggregate in ("min", "max"):
        # The paper: "the + function can be modified appropriately" for
        # other distributive aggregates — scatter-min/max is the GPU
        # blend-equation MIN/MAX equivalent.
        gx, _ = _group_gamma(samples.data, samples.valid)
        slot = np.floor(gx).astype(np.int64)
        init = math.inf if aggregate == "min" else -math.inf
        acc_arr = np.full(max_id + 1, init, dtype=np.float64)
        attr = samples.data[:, attr_channel]
        ok = (slot >= 0) & (slot <= max_id)
        if aggregate == "min":
            np.minimum.at(acc_arr, slot[ok], attr[ok])
        else:
            np.maximum.at(acc_arr, slot[ok], attr[ok])
        values = acc_arr[groups]
        return AggregateResult(groups=groups, values=values, aggregate=aggregate)

    raise ValueError(f"unsupported aggregate {aggregate!r}")


def aggregate_over_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
    values: np.ndarray | None = None,
    aggregate: str = "count",
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> float:
    """``SELECT COUNT(*)/SUM(A) FROM DP WHERE Location INSIDE Q`` (Fig. 7).

    Expression: ``B*[+](G[γc](M[Mp](B[⊙](CP, CQ))))``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys, [polygon])
    constraint = Canvas.from_polygon(
        polygon, window, resolution, record_id=1, device=device
    )
    point_set = CanvasSet.from_points(xs, ys, values=values)
    blended = algebra.blend(point_set, constraint, PIP_MERGE)
    masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
    assert isinstance(masked, CanvasSet)
    if exact:
        masked, _ = refine_point_samples(masked, [polygon])
    result = _aggregate_samples(
        masked, [1], aggregate,
        attr_channel=channel(DIM_POINT, FIELD_VALUE),
    )
    return float(result.values[0])


def join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> AggregateResult:
    """Group-by over a Type I join (Section 4.3).

    ``SELECT agg(...) FROM DP, DY WHERE Location INSIDE Geometry
    GROUP BY DY.ID`` — the selection expression per polygon feeds the
    shared aggregation tail ``B*[+](G[γc](...))``; each polygon keeps
    its own id so the transformed samples land in distinct slots.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    ids = (
        list(polygon_ids) if polygon_ids is not None else list(range(len(polys)))
    )
    if window is None:
        window = default_window(xs, ys, polys)

    collected: CanvasSet | None = None
    for poly, pid in zip(polys, ids):
        constraint = Canvas.from_polygon(
            poly, window, resolution, record_id=pid, device=device
        )
        point_set = CanvasSet.from_points(xs, ys, values=values)
        blended = algebra.blend(point_set, constraint, PIP_MERGE)
        masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        assert isinstance(masked, CanvasSet)
        if exact:
            masked, _ = refine_point_samples(masked, [poly])
        collected = masked if collected is None else collected.concat(masked)

    if collected is None:
        collected = CanvasSet.empty()
    return _aggregate_samples(
        collected, ids, aggregate,
        attr_channel=channel(DIM_POINT, FIELD_VALUE),
    )


# ----------------------------------------------------------------------
# 4.4 Nearest-neighbor queries
# ----------------------------------------------------------------------
def knn(
    xs: np.ndarray,
    ys: np.ndarray,
    query_point: tuple[float, float],
    k: int,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    max_iterations: int = 64,
) -> SelectionResult:
    """kNN via concentric-circle counting (Section 4.4).

    The paper's plan probes circles of increasing radii, masks the
    count-equals-k circle to read off the radius ``r``, then reissues a
    distance selection with ``r``.  A conceptually infinite circle set
    is realized lazily as a bisection over the radius, each probe being
    the full canvas pipeline (``Circ`` + blend + mask + aggregate).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if k < 1 or k > len(xs):
        raise ValueError("k must be between 1 and the number of points")
    if window is None:
        window = default_window(xs, ys)
        qx, qy = query_point
        window = window.union(BoundingBox(qx, qy, qx, qy)).expand(
            0.01 * max(window.width, window.height)
        )

    def count_within(radius: float) -> int:
        result = distance_select(
            xs, ys, query_point, radius,
            ids=ids, window=window, resolution=resolution, device=device,
        )
        return len(result.ids)

    lo = 0.0
    hi = math.hypot(window.width, window.height)
    # Grow hi until at least k points are inside (window diagonal is
    # always enough since the window covers the data).
    iterations = 0
    while count_within(hi) < k and iterations < 8:
        hi *= 2.0
        iterations += 1

    result_at_hi: SelectionResult | None = None
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        result = distance_select(
            xs, ys, query_point, mid,
            ids=ids, window=window, resolution=resolution, device=device,
        )
        n = len(result.ids)
        if n == k:
            return result
        if n < k:
            lo = mid
        else:
            hi = mid
            result_at_hi = result
    # Ties or resolution floor: fall back to trimming the smallest
    # enclosing probe by exact distance (the paper's ϵ-perturbation).
    if result_at_hi is None:
        result_at_hi = distance_select(
            xs, ys, query_point, hi,
            ids=ids, window=window, resolution=resolution, device=device,
        )
    sel = result_at_hi.samples
    d = np.hypot(sel.xs - query_point[0], sel.ys - query_point[1])
    order = np.argsort(d, kind="stable")[:k]
    trimmed = sel.filter_rows(np.isin(np.arange(sel.n_samples), order))
    return SelectionResult(
        ids=_unique_ids(trimmed.keys),
        n_candidates=result_at_hi.n_candidates,
        n_exact_tests=result_at_hi.n_exact_tests + sel.n_samples,
        samples=trimmed,
    )


# ----------------------------------------------------------------------
# 4.5 Computational geometry: Voronoi stored procedure
# ----------------------------------------------------------------------
def voronoi(
    points: np.ndarray,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """Voronoi diagram via iterated Value Transform (Section 4.5).

    ``ComputeVoronoi``: starting from the empty canvas, insert one site
    at a time with ``V[f_(xi, yi)]``; ``f`` claims every pixel whose
    squared distance to the new site beats the stored one (kept in
    ``s[2][1]``, exactly as the paper's ``f`` definition stores ``d^2``).
    The result's ``s[2][0]`` is the owning site index.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    canvas = Canvas.empty(window, resolution, device)
    id_ch = channel(DIM_AREA, FIELD_ID)
    d2_ch = channel(DIM_AREA, FIELD_COUNT)

    for i in range(len(pts)):
        px, py = float(pts[i, 0]), float(pts[i, 1])

        def f(
            gx: np.ndarray, gy: np.ndarray,
            data: np.ndarray, valid: np.ndarray,
            _site: int = i, _px: float = px, _py: float = py,
        ) -> tuple[np.ndarray, np.ndarray]:
            d2 = (gx - _px) ** 2 + (gy - _py) ** 2
            out_data = data.copy()
            out_valid = valid.copy()
            was_null = ~valid[..., DIM_AREA]
            closer = d2 < data[..., d2_ch]
            claim = was_null | closer
            out_data[..., id_ch] = np.where(claim, float(_site), data[..., id_ch])
            out_data[..., d2_ch] = np.where(claim, d2, data[..., d2_ch])
            out_valid[..., DIM_AREA] = True
            return out_data, out_valid

        canvas = algebra.value_transform(canvas, f)
        assert isinstance(canvas, Canvas)
    return canvas


# ----------------------------------------------------------------------
# 4.6 Complex queries: origin-destination double selection
# ----------------------------------------------------------------------
def od_select(
    origin_xs: np.ndarray,
    origin_ys: np.ndarray,
    dest_xs: np.ndarray,
    dest_ys: np.ndarray,
    q1: Polygon,
    q2: Polygon,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``Origin INSIDE Q1 AND Destination INSIDE Q2`` (Fig. 8(a)).

    Expression: ``M[Mp'](B[⊙](G[γd](Corigin), CQ2))`` where ``Corigin``
    is the origin selection and ``γd(s) = destination(s[0][0])`` jumps
    each surviving record from its origin to its destination.
    """
    origin_xs = np.asarray(origin_xs, dtype=np.float64)
    origin_ys = np.asarray(origin_ys, dtype=np.float64)
    dest_xs = np.asarray(dest_xs, dtype=np.float64)
    dest_ys = np.asarray(dest_ys, dtype=np.float64)
    n = len(origin_xs)
    key_ids = (
        np.asarray(ids, dtype=np.int64) if ids is not None
        else np.arange(n, dtype=np.int64)
    )
    if window is None:
        all_x = np.concatenate([origin_xs, dest_xs])
        all_y = np.concatenate([origin_ys, dest_ys])
        window = default_window(all_x, all_y, [q1, q2])

    # Stage 1: origin selection (the familiar expression).
    origin_result = polygonal_select_points(
        origin_xs, origin_ys, q1, ids=key_ids,
        window=window, resolution=resolution, device=device, exact=exact,
    )
    surviving = origin_result.samples

    # Stage 2: γd — value-driven transform to the destination location.
    dest_x_by_id = dict(zip(key_ids.tolist(), dest_xs.tolist()))
    dest_y_by_id = dict(zip(key_ids.tolist(), dest_ys.tolist()))

    def gamma_dest(
        data: np.ndarray, valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        rec = data[:, channel(DIM_POINT, FIELD_ID)].astype(np.int64)
        nx = np.array([dest_x_by_id[int(r)] for r in rec], dtype=np.float64)
        ny = np.array([dest_y_by_id[int(r)] for r in rec], dtype=np.float64)
        return nx, ny

    moved = algebra.geometric_transform_by_value(surviving, gamma_dest)
    assert isinstance(moved, CanvasSet)
    # Clear the stage-1 boundary flags: the destination test's
    # uncertainty depends only on Q2's pixels.
    moved.boundary[:] = False

    # Stage 3: blend with CQ2 and mask (id 2 per the paper's CQi).
    q2_canvas = Canvas.from_polygon(
        q2, window, resolution, record_id=2, device=device
    )
    blended = algebra.blend(moved, q2_canvas, PIP_MERGE)
    masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_samples
    n_tests = origin_result.n_exact_tests
    if exact:
        masked, extra = refine_point_samples(masked, [q2])
        n_tests += extra
    return SelectionResult(
        ids=_unique_ids(masked.keys),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked,
    )
