"""Backward-compatible shim: the query API moved to :mod:`repro.queries`.

The former monolith was split into a package of plan-driven frontends
(selection / geometries / join / aggregate / knn / voronoi / od) that
route through the cost-based execution engine in :mod:`repro.engine`.
Import sites that target ``repro.core.queries`` keep working unchanged;
new code should import from :mod:`repro.queries` (or :mod:`repro.core`)
directly.
"""

# repro-lint: disable=layering -- legacy shim forwarding the pre-PR1 import path
from repro.queries import *  # noqa: F401,F403
# repro-lint: disable=layering -- legacy shim (see above)
from repro.queries import __all__ as __all__  # noqa: F401
# repro-lint: disable=layering -- legacy shim (see above)
from repro.queries.common import (  # noqa: F401
    AggregateResult,
    SelectionResult,
    SelectMode,
    _unique_ids,
    build_constraint_canvas,
    default_window,
)
# repro-lint: disable=layering -- legacy shim (see above)
from repro.engine.executor import _group_gamma  # noqa: F401
# repro-lint: disable=layering -- legacy shim (see above)
from repro.engine.executor import aggregate_samples as _engine_aggregate_samples


def _aggregate_samples(samples, group_ids, aggregate, attr_channel=None):
    """Legacy private helper with its pre-engine signature and result."""
    groups, values = _engine_aggregate_samples(
        samples, group_ids, aggregate, attr_channel
    )
    return AggregateResult(groups=groups, values=values, aggregate=aggregate)
