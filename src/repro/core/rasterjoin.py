"""RasterJoin as an algebraic plan (Section 5.2, Figure 8(c)).

RasterJoin [Tzirita Zacharatou et al., PVLDB'17] evaluates spatial
join-aggregations by first merging *all* input points into a single
canvas of per-pixel partial aggregates, then joining that one canvas
with the polygons and re-merging.  The paper shows it is exactly the
expression::

    Ccount <- B*[+]( D*[γc]( M[Mp]( B[⊙]( B*[+](CP), CY ) ) ) )

The advantage over the join-then-aggregate plan of Section 4.3: the
blend's left side shrinks from n point canvases to one accumulator, so
per-polygon work is bounded by the texture size instead of the point
count — the trade the optimizer ablation (A3/E15) measures.

Execution strategy (scatter-gather)
-----------------------------------
The expression above is realized without materializing any dense
canvas:

1. **Scatter** — all points merge into sparse per-pixel partial
   aggregates (count and value sums) with one ``np.bincount`` pass,
   the software analogue of GPU additive blending (``B*[+](CP)``).
2. **Label** — each polygon runs one bbox-clipped parity fill and
   claims its covered cells in a shared label grid; cells covered by
   more than one polygon go to a small per-pixel overflow list, so
   overlapping constraints each still see the full pixel.
3. **Gather** — per polygon, the partial aggregates of its covered
   *occupied* pixels reduce to the group totals (``M[Mp]`` + the
   ``D*[γc]``/``B*[+]`` tail collapsed into one masked reduction).

Total cost is ``O(H*W + N + Σ polygon-bbox-area)`` instead of the
per-polygon full-frame ``O(P * H * W)`` of the literal plan, with
bit-identical results at any resolution (the reductions visit the same
pixels in the same order).  :func:`raster_join_aggregate_legacy` keeps
the literal per-polygon plan as the equivalence/benchmark reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.rasterizer import polygon_coverage
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import (
    Canvas,
    Resolution,
    _resolve_resolution,
    world_points_to_cells,
)
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import (
    DIM_POINT,
    FIELD_COUNT,
    FIELD_VALUE,
    channel,
)
from repro.core.queries import AggregateResult, default_window


# ----------------------------------------------------------------------
# Constraint coverage (the sparse stand-in for a dense polygon canvas)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolygonCoverage:
    """Sparse covered-cell footprint of one constraint polygon.

    The scatter-gather plan only needs to know *which* cells a polygon
    covers (even-odd interior plus the conservative boundary ribbon),
    so this is the cacheable equivalent of a dense constraint canvas at
    a fraction of its memory: sorted flat pixel indices instead of an
    ``(H, W, 9)`` texture.  Treated as immutable; the engine's
    :class:`~repro.engine.cache.CanvasCache` shares instances across
    repeated rasterjoin executions.
    """

    flat: np.ndarray  #: sorted int64 flat indices ``row * width + col``
    height: int
    width: int

    @property
    def cache_nbytes(self) -> int:
        """Payload size for the canvas cache's byte budget."""
        return int(self.flat.nbytes)


#: Provider seam: maps ``(polygon, record_id)`` to its coverage.  The
#: engine passes a memoized builder backed by its canvas cache, so
#: repeated rasterjoin runs skip rasterization (and report cache hits
#: in ``engine.explain()``); ``None`` rasterizes fresh per call.
CoverageProvider = Callable[[Polygon, int], PolygonCoverage]

#: ``(flat_cells, weights_or_None, n_cells) -> (counts, sums_or_None)``
#: or ``None`` to decline and run the local scatter instead.
ScatterRunner = Callable[
    [np.ndarray, "np.ndarray | None", int],
    "tuple[np.ndarray, np.ndarray | None] | None",
]


def polygon_coverage_cells(
    polygon: Polygon,
    window: BoundingBox,
    resolution: Resolution,
    device: Device = DEFAULT_DEVICE,
) -> PolygonCoverage:
    """Rasterize one polygon's covered cells inside its clipped bbox.

    Uses the same world-to-pixel transform and coverage kernel as
    :meth:`Canvas.draw_polygon`, so the cell set matches a dense
    constraint canvas exactly — without allocating one.
    """
    height, width = _resolve_resolution(window, resolution)
    dx = window.width / width
    dy = window.height / height
    rings = []
    for ring in (polygon.shell, *polygon.holes):
        arr = ring.vertex_array()
        px = (arr[:, 0] - window.xmin) / dx
        py = (arr[:, 1] - window.ymin) / dy
        rings.append(np.stack([px, py], axis=1))
    r0, c0, covered, _, _ = polygon_coverage(rings, height, width, device=device)
    rr, cc = np.nonzero(covered)
    flat = (rr.astype(np.int64) + r0) * width + (cc.astype(np.int64) + c0)
    return PolygonCoverage(flat=flat, height=height, width=width)


def _validated_ids(
    polygons: Sequence[Polygon], polygon_ids: Sequence[int] | None
) -> list[int]:
    """Group ids for the polygon list, validated.

    Raises a clear ``ValueError`` on a length mismatch or duplicate
    ids — a duplicate would silently merge two polygons into one group.
    """
    if polygon_ids is None:
        return list(range(len(polygons)))
    ids = [int(i) for i in polygon_ids]
    if len(ids) != len(polygons):
        raise ValueError(
            f"polygon_ids has {len(ids)} entries for {len(polygons)} "
            "polygons; they must pair one-to-one"
        )
    if len(set(ids)) != len(ids):
        seen: set[int] = set()
        dupes = sorted({i for i in ids if i in seen or seen.add(i)})
        raise ValueError(
            f"duplicate polygon_ids {dupes}: each polygon needs a "
            "distinct group id (duplicates would silently merge groups)"
        )
    return ids


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
def raster_join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    coverage_provider: CoverageProvider | None = None,
    scatter_runner: ScatterRunner | None = None,
) -> AggregateResult:
    """Aggregate points per polygon via the RasterJoin plan.

    Approximate by design at a given resolution, like the original
    system: each point is attributed to the polygon(s) covering its
    pixel, and the texture size bounds the error (Section 5's
    "approximate result" remark).  Use
    :func:`repro.core.queries.join_aggregate` for the exact plan.

    *coverage_provider*, when given, supplies each polygon's
    :class:`PolygonCoverage` (the engine passes a canvas-cache-backed
    builder so repeated constraints skip rasterization entirely).  The
    provider must rasterize for the same window/resolution — a shape
    mismatch raises ``ValueError``.

    *scatter_runner*, when given, may execute stage 1's bincount
    scatter sharded by pixel range (the engine passes a
    process-backend runner).  It receives ``(flat_cells, weights,
    n_cells)`` — *weights* is ``None`` for count queries — and returns
    ``(counts, sums)`` or ``None`` to decline, in which case the local
    scatter runs.  np.bincount accumulates in input order and a
    pixel-range shard preserves that order, so a sharded scatter is
    bit-identical to the local one.
    """
    if aggregate not in ("count", "sum", "avg"):
        raise ValueError(
            "raster_join_aggregate supports count/sum/avg aggregates"
        )
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    ids = _validated_ids(polys, polygon_ids)
    if window is None:
        window = default_window(xs, ys, polys)
    height, width = _resolve_resolution(window, resolution)

    # Stage 1 — B*[+](CP): scatter all points into per-pixel partial
    # aggregates (count and value sums), kept sparse: one bincount
    # replaces the dense accumulator canvas.  The value-sum side is
    # skipped entirely for count queries — it would never be read.
    need_sums = aggregate in ("sum", "avg")
    rows, cols, inside = world_points_to_cells(xs, ys, window, height, width)
    flat_pts = rows[inside] * width + cols[inside]
    n_cells = height * width
    weights = None
    if need_sums:
        vals = (
            np.asarray(values, dtype=np.float64)
            if values is not None
            else np.zeros(len(xs), dtype=np.float64)
        )
        weights = vals[inside]
    sharded = (
        scatter_runner(flat_pts, weights, n_cells)
        if scatter_runner is not None
        else None
    )
    if sharded is not None:
        cnt_grid, sum_grid = sharded
    else:
        cnt_grid = np.bincount(flat_pts, minlength=n_cells)
        sum_grid = (
            np.bincount(flat_pts, weights=weights, minlength=n_cells)
            if need_sums
            else None
        )
    occ = np.nonzero(cnt_grid)[0]  # sorted == row-major pixel order
    occ_cnt = cnt_grid[occ].astype(np.float64)
    occ_sum = sum_grid[occ] if need_sums else None

    # Stage 2 — CY as a shared label grid: one bbox-clipped fill per
    # polygon claims its cells; overlap cells spill to a per-pixel
    # overflow list so every covering polygon still sees them.
    if coverage_provider is None:
        def coverage_provider(poly: Polygon, pid: int) -> PolygonCoverage:
            return polygon_coverage_cells(poly, window, resolution, device)

    label = np.full(n_cells, -1, dtype=np.int64)
    over_flat: list[np.ndarray] = []
    over_label: list[np.ndarray] = []
    for j, (poly, pid) in enumerate(zip(polys, ids)):
        coverage = coverage_provider(poly, pid)
        if (coverage.height, coverage.width) != (height, width):
            raise ValueError(
                "coverage provider rasterized for "
                f"{coverage.height}x{coverage.width}, expected "
                f"{height}x{width}"
            )
        cells = coverage.flat
        taken = label[cells] >= 0
        label[cells[~taken]] = j
        clashes = cells[taken]
        if len(clashes):
            over_flat.append(clashes)
            over_label.append(np.full(len(clashes), j, dtype=np.int64))

    # Stages 3-4 — M[Mp] + D*[γc] + B*[+] collapsed into one gather:
    # pair every point-occupied pixel with each covering polygon, then
    # reduce the partial aggregates per polygon.  Pairs are kept in
    # row-major pixel order so each reduction sums the exact pixel
    # sequence the per-polygon masked reduction would.
    occ_label = label[occ]
    primary = occ_label >= 0
    pair_pix = [np.nonzero(primary)[0]]
    pair_label = [occ_label[primary]]
    if over_flat:
        of = np.concatenate(over_flat)
        ol = np.concatenate(over_label)
        pos = np.searchsorted(occ, of)
        pos_ok = pos < len(occ)
        hit = np.zeros(len(of), dtype=bool)
        hit[pos_ok] = occ[pos[pos_ok]] == of[pos_ok]
        pair_pix.append(pos[hit])
        pair_label.append(ol[hit])
    pix = np.concatenate(pair_pix)
    lab = np.concatenate(pair_label)

    counts = np.zeros(len(polys), dtype=np.float64)
    sums = np.zeros(len(polys), dtype=np.float64)
    if len(pix):
        order = np.lexsort((pix, lab))
        pix, lab = pix[order], lab[order]
        seg_labels, seg_starts = np.unique(lab, return_index=True)
        seg_ends = np.append(seg_starts[1:], len(lab))
        for seg_label, start, end in zip(seg_labels, seg_starts, seg_ends):
            counts[seg_label] = occ_cnt[pix[start:end]].sum()
            if need_sums:
                sums[seg_label] = occ_sum[pix[start:end]].sum()

    ids_arr = np.asarray(ids, dtype=np.int64)
    order = np.argsort(ids_arr)  # ids are unique, so this is total
    groups = ids_arr[order]
    if aggregate == "count":
        out_values = counts[order]
    elif aggregate == "sum":
        out_values = sums[order]
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        out_values = avg[order]
    return AggregateResult(groups=groups, values=out_values, aggregate=aggregate)


# ----------------------------------------------------------------------
# Reference implementation (the literal per-polygon plan)
# ----------------------------------------------------------------------
def raster_join_aggregate_legacy(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
) -> AggregateResult:
    """The literal Figure 8(c) plan: one dense blend+mask per polygon.

    ``O(P * H * W)`` — every polygon pays a full-frame blend, mask and
    reduction over the dense accumulator canvas.  Retained as the
    bit-exact reference for the scatter-gather implementation
    (equivalence tests, ``bench_pr2_hotpaths``); production callers use
    :func:`raster_join_aggregate`.
    """
    if aggregate not in ("count", "sum", "avg"):
        raise ValueError(
            "raster_join_aggregate supports count/sum/avg aggregates"
        )
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    ids = _validated_ids(polys, polygon_ids)
    if window is None:
        window = default_window(xs, ys, polys)

    points_canvas = Canvas.from_points(
        xs, ys, window, resolution, values=values, device=device
    )

    groups = np.asarray(sorted(set(ids)), dtype=np.int64)
    max_id = int(groups.max()) if len(groups) else 0
    counts = np.zeros(max_id + 1, dtype=np.float64)
    sums = np.zeros(max_id + 1, dtype=np.float64)

    cnt_ch = channel(DIM_POINT, FIELD_COUNT)
    val_ch = channel(DIM_POINT, FIELD_VALUE)

    for poly, pid in zip(polys, ids):
        constraint = Canvas.from_polygon(
            poly, window, resolution, record_id=pid, device=device
        )
        blended = algebra.blend(points_canvas, constraint, PIP_MERGE)
        assert isinstance(blended, Canvas)
        masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        assert isinstance(masked, Canvas)
        covered = masked.valid(DIM_POINT)
        counts[pid] += masked.texture.data[:, :, cnt_ch][covered].sum()
        sums[pid] += masked.texture.data[:, :, val_ch][covered].sum()

    if aggregate == "count":
        out_values = counts[groups]
    elif aggregate == "sum":
        out_values = sums[groups]
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        out_values = avg[groups]
    return AggregateResult(groups=groups, values=out_values, aggregate=aggregate)
