"""RasterJoin as an algebraic plan (Section 5.2, Figure 8(c)).

RasterJoin [Tzirita Zacharatou et al., PVLDB'17] evaluates spatial
join-aggregations by first merging *all* input points into a single
canvas of per-pixel partial aggregates, then joining that one canvas
with the polygons and re-merging.  The paper shows it is exactly the
expression::

    Ccount <- B*[+]( D*[γc]( M[Mp]( B[⊙]( B*[+](CP), CY ) ) ) )

The advantage over the join-then-aggregate plan of Section 4.3: the
blend's left side shrinks from n point canvases to one accumulator, so
per-polygon work is bounded by the texture size instead of the point
count — the trade the optimizer ablation (A3/E15) measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas, Resolution
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    channel,
)
from repro.core.queries import AggregateResult, default_window


def raster_join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
) -> AggregateResult:
    """Aggregate points per polygon via the RasterJoin plan.

    Approximate by design at a given resolution, like the original
    system: each point is attributed to the polygon(s) covering its
    pixel, and the texture size bounds the error (Section 5's
    "approximate result" remark).  Use
    :func:`repro.core.queries.join_aggregate` for the exact plan.
    """
    if aggregate not in ("count", "sum", "avg"):
        raise ValueError(
            "raster_join_aggregate supports count/sum/avg aggregates"
        )
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    ids = (
        list(polygon_ids)
        if polygon_ids is not None
        else list(range(len(polys)))
    )
    if window is None:
        window = default_window(xs, ys, polys)

    # Stage 1 — B*[+](CP): all points merge into one canvas of partial
    # aggregates (per-pixel count and value sums).
    points_canvas = Canvas.from_points(
        xs, ys, window, resolution, values=values, device=device
    )

    groups = np.asarray(sorted(set(int(i) for i in ids)), dtype=np.int64)
    max_id = int(groups.max()) if len(groups) else 0
    counts = np.zeros(max_id + 1, dtype=np.float64)
    sums = np.zeros(max_id + 1, dtype=np.float64)

    cnt_ch = channel(DIM_POINT, FIELD_COUNT)
    val_ch = channel(DIM_POINT, FIELD_VALUE)

    # Stages 2-4 per polygon canvas in CY: blend ⊙, mask Mp, then
    # D*[γc] + B*[+] — realized as a masked reduction over the partial
    # aggregates (each covered pixel is one dissected canvas; γc sends
    # it to slot (polygon_id, 0); the + blend sums them).
    for poly, pid in zip(polys, ids):
        constraint = Canvas.from_polygon(
            poly, window, resolution, record_id=pid, device=device
        )
        blended = algebra.blend(points_canvas, constraint, PIP_MERGE)
        assert isinstance(blended, Canvas)
        masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        assert isinstance(masked, Canvas)
        covered = masked.valid(DIM_POINT)
        counts[pid] += masked.texture.data[:, :, cnt_ch][covered].sum()
        sums[pid] += masked.texture.data[:, :, val_ch][covered].sum()

    if aggregate == "count":
        out_values = counts[groups]
    elif aggregate == "sum":
        out_values = sums[groups]
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        out_values = avg[groups]
    return AggregateResult(groups=groups, values=out_values, aggregate=aggregate)
