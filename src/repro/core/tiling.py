"""Tiled canvas execution: lattice-aligned tiles and per-tile builders.

The canvas algebra is pixel-local — blends, masks and value transforms
combine a pixel's triples using that pixel alone — so every dense
canvas a plan materializes can be sharded into tiles and rebuilt
piecewise, bit-identically to the whole-frame pass.  This module holds
the geometry of that sharding plus the per-tile raster builders; the
engine (:mod:`repro.engine.executor`) keys the tiles into its
:class:`~repro.engine.cache.CanvasCache` so a panned or zoomed window
re-rasterizes only the newly exposed tiles.

Two properties carry the correctness argument:

- **Frame-based arithmetic.**  Every builder evaluates the *frame's*
  expressions on index subranges (``np.arange(c0, c1) + 0.5`` instead
  of ``np.arange(W)[c0:c1] + 0.5`` — bitwise equal), or slices a
  memoized frame-level coverage mask.  A tile's pixels are therefore
  bit-identical to the corresponding slice of the whole-frame raster,
  unconditionally.
- **Global lattice alignment.**  Tile boundaries sit on a lattice
  anchored at world coordinates that are integer multiples of the
  pixel size, not at the window origin.  Two windows with the same
  pixel size and the same lattice phase (an integer-pixel pan) share
  interior tiles, so their cache keys — which embed the *global* tile
  coordinates, the pixel size and the phase — collide exactly when
  the tiles' contents agree.  Cross-window reuse is exact whenever
  the pan arithmetic is (e.g. power-of-two windows panned by whole
  pixels, the dashboard case); windows whose floats disagree in the
  last ulp simply get distinct keys and rebuild.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.rasterizer import coverage_tile_slice, polygon_coverage
from repro.gpu.texture import Texture
from repro.core.canvas import clipped_pixel_bbox
from repro.testing.faults import maybe_fire
from repro.core.objectinfo import (
    DIM_AREA,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    N_CHANNELS,
    N_GROUPS,
    channel,
)


@dataclass(frozen=True)
class Tile:
    """One tile of a :class:`TileGrid`.

    ``r0/r1/c0/c1`` are frame-local half-open pixel bounds; ``gr0``
    etc. are the same bounds on the global pixel lattice (frame-local
    plus the window's lattice offset) — the coordinates cache keys use
    so integer-pixel pans share tiles.
    """

    r0: int
    r1: int
    c0: int
    c1: int
    gr0: int
    gr1: int
    gc0: int
    gc1: int

    @property
    def height(self) -> int:
        return self.r1 - self.r0

    @property
    def width(self) -> int:
        return self.c1 - self.c0


def _lattice_starts(g0: int, n: int, t: int) -> np.ndarray:
    """Frame-local start offsets of lattice-aligned tiles.

    Global pixel indices divisible by *t* open a tile; *g0* is the
    global index of frame-local pixel 0.  The first (and last) tile may
    be partial, so a K-way split yields K or K+1 tiles per axis.
    """
    b = (-g0) % t
    first = b if b else t
    return np.asarray([0] + list(range(first, n, t)), dtype=np.int64)


class TileGrid:
    """Lattice-aligned tiling of one canvas frame.

    *tiling* asks for a K×K split; edge tiles shrink (and one extra
    partial tile per axis may appear) so interior tile boundaries land
    on the global lattice ``{i * tile_span_px}`` regardless of where
    the window starts.
    """

    def __init__(
        self,
        window: BoundingBox,
        height: int,
        width: int,
        tiling: int,
    ) -> None:
        if tiling < 1:
            raise ValueError("tiling must be at least 1")
        self.window = window
        self.height = height
        self.width = width
        self.tiling = tiling
        # Same expressions as Canvas.dx/.dy — keys must match frames.
        self.dx = window.width / width
        self.dy = window.height / height
        self.g0x = int(math.floor(window.xmin / self.dx))
        self.g0y = int(math.floor(window.ymin / self.dy))
        #: Sub-pixel offset of the window origin from the lattice; part
        #: of every tile key, so only windows on the same lattice share.
        self.phase_x = window.xmin - self.g0x * self.dx
        self.phase_y = window.ymin - self.g0y * self.dy
        self.tile_h = -(-height // tiling)
        self.tile_w = -(-width // tiling)
        self.row_starts = _lattice_starts(self.g0y, height, self.tile_h)
        self.col_starts = _lattice_starts(self.g0x, width, self.tile_w)
        self.n_tile_rows = len(self.row_starts)
        self.n_tile_cols = len(self.col_starts)
        row_ends = np.append(self.row_starts[1:], height)
        col_ends = np.append(self.col_starts[1:], width)
        self._tiles: list[Tile] = []
        for i in range(self.n_tile_rows):
            r0, r1 = int(self.row_starts[i]), int(row_ends[i])
            for j in range(self.n_tile_cols):
                c0, c1 = int(self.col_starts[j]), int(col_ends[j])
                self._tiles.append(Tile(
                    r0=r0, r1=r1, c0=c0, c1=c1,
                    gr0=self.g0y + r0, gr1=self.g0y + r1,
                    gc0=self.g0x + c0, gc1=self.g0x + c1,
                ))

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    def tiles(self) -> list[Tile]:
        """All tiles, row-major."""
        return list(self._tiles)

    def tile_at(self, i: int, j: int) -> Tile:
        return self._tiles[i * self.n_tile_cols + j]

    def row_tile_of(self, rows: np.ndarray) -> np.ndarray:
        """Tile-row index of each frame-local pixel row."""
        return np.searchsorted(self.row_starts, rows, side="right") - 1

    def col_tile_of(self, cols: np.ndarray) -> np.ndarray:
        """Tile-column index of each frame-local pixel column."""
        return np.searchsorted(self.col_starts, cols, side="right") - 1


def tile_key(
    recipe, digest: str, tile: Tile, grid: TileGrid, device: Device
) -> tuple:
    """Cache key of one tile of one raster recipe.

    Global lattice coordinates + pixel size + lattice phase identify
    the tile's world footprint exactly; *recipe*/*digest* identify what
    is drawn on it.  Integer-pixel pans of the same-resolution window
    preserve every component, so unchanged tiles hit.
    """
    return (
        "tile", recipe, digest,
        tile.gr0, tile.gr1, tile.gc0, tile.gc1,
        grid.dx, grid.dy, grid.phase_x, grid.phase_y,
        device,
    )


class TileCanvas:
    """A tile-sized dense raster: texture channels + boundary flags.

    Duck-types the slice of :class:`~repro.core.canvas.Canvas` the
    gather path reads (``texture.data``, ``texture.valid``,
    ``boundary``) — and the slice the cache's sizer and freezer touch —
    without a window of its own: the owning :class:`TileGrid` supplies
    world placement.
    """

    __slots__ = ("texture", "boundary")

    def __init__(self, height: int, width: int) -> None:
        self.texture = Texture(height, width, N_CHANNELS, N_GROUPS)
        self.boundary = np.zeros((height, width), dtype=bool)


class ArgminTile:
    """One tile of the blocked-argmin Voronoi sweep (owner + running d²)."""

    __slots__ = ("owner", "best_d2", "cache_nbytes")

    def __init__(self, owner: np.ndarray, best_d2: np.ndarray) -> None:
        self.owner = owner
        self.best_d2 = best_d2
        #: Explicit byte size for the cache's byte-bounded LRU (the
        #: default sizer only understands texture-shaped values).
        self.cache_nbytes = int(owner.nbytes + best_d2.nbytes)


def array_digest(arr: np.ndarray) -> str:
    """Content digest of a float array (tile-recipe identity)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return h.hexdigest()


def circle_digest(center: tuple[float, float], radius: float) -> str:
    """Digest of a ``Circ[(x, y), r]`` recipe."""
    return array_digest(np.array([center[0], center[1], radius]))


class CoverageMemo:
    """Per-query memo of frame-level polygon coverage and pixel bboxes.

    Tile builders slice a *frame-level* coverage mask so every tile is
    bit-identical to the whole-frame fill by construction; the memo
    computes that mask once per polygon per query, however many tiles
    consume it.  Keyed by caller-assigned integer slots (polygon order),
    so equal polygons in different roles stay distinct.
    """

    def __init__(
        self,
        window: BoundingBox,
        height: int,
        width: int,
        device: Device = DEFAULT_DEVICE,
    ) -> None:
        self.window = window
        self.height = height
        self.width = width
        self.device = device
        # Same expressions as Canvas.dx/.dy (bit-identity requires it).
        self.dx = window.width / width
        self.dy = window.height / height
        self._coverage: dict[int, tuple] = {}
        self._bbox: dict[int, tuple[int, int, int, int] | None] = {}

    def _ring_pixels(self, ring) -> np.ndarray:
        arr = ring.vertex_array()
        px = (arr[:, 0] - self.window.xmin) / self.dx
        py = (arr[:, 1] - self.window.ymin) / self.dy
        return np.stack([px, py], axis=1)

    def coverage(self, slot: int, polygon: Polygon) -> tuple:
        """``(r0, c0, covered, brows, bcols)`` of *polygon* on the frame."""
        got = self._coverage.get(slot)
        if got is None:
            rings = [self._ring_pixels(polygon.shell)]
            rings.extend(self._ring_pixels(h) for h in polygon.holes)
            got = polygon_coverage(
                rings, self.height, self.width, device=self.device
            )
            self._coverage[slot] = got
        return got

    def bbox(self, slot: int, polygon: Polygon):
        """Inclusive conservative pixel bbox of *polygon* (or ``None``)."""
        if slot not in self._bbox:
            self._bbox[slot] = clipped_pixel_bbox(
                polygon, self.window, self.height, self.width
            )
        return self._bbox[slot]


def bbox_intersects_tile(
    bbox: tuple[int, int, int, int] | None, tile: Tile
) -> bool:
    """Does an inclusive pixel bbox overlap a (half-open) tile span?"""
    if bbox is None:
        return False
    r0, r1, c0, c1 = bbox
    return (
        r1 >= tile.r0 and r0 < tile.r1 and c1 >= tile.c0 and c0 < tile.c1
    )


def build_polygon_tile(
    tile: Tile,
    entries: list[tuple[int, int, Polygon, float]],
    memo: CoverageMemo,
    accumulate_count: bool = False,
) -> TileCanvas:
    """Rasterize polygons onto one tile, bit-identical to the frame.

    *entries* is ``[(slot, record_id, polygon, value), ...]`` in draw
    order; each polygon's memoized frame-level coverage is sliced to
    the tile and written with exactly the per-pixel operations of
    :meth:`~repro.core.canvas.Canvas.draw_polygon` (last id wins,
    counts accumulate or overwrite, validity ORs) — slicing commutes
    with all of them.
    """
    maybe_fire("tile.build")
    out = TileCanvas(tile.height, tile.width)
    id_ch = channel(DIM_AREA, FIELD_ID)
    cnt_ch = channel(DIM_AREA, FIELD_COUNT)
    val_ch = channel(DIM_AREA, FIELD_VALUE)
    data = out.texture.data
    valid = out.texture.valid
    for slot, record_id, polygon, value in entries:
        if not bbox_intersects_tile(memo.bbox(slot, polygon), tile):
            continue
        r0, c0, covered, brows, bcols = memo.coverage(slot, polygon)
        sliced = coverage_tile_slice(
            r0, c0, covered, tile.r0, tile.r1, tile.c0, tile.c1
        )
        if sliced is not None:
            ir0, ic0, sub = sliced
            tr = slice(ir0 - tile.r0, ir0 - tile.r0 + sub.shape[0])
            tc = slice(ic0 - tile.c0, ic0 - tile.c0 + sub.shape[1])
            data[tr, tc, id_ch][sub] = float(record_id)
            if accumulate_count:
                data[tr, tc, cnt_ch][sub] += 1.0
            else:
                data[tr, tc, cnt_ch][sub] = 1.0
            data[tr, tc, val_ch][sub] = value
            valid[tr, tc, DIM_AREA] |= sub
        if len(brows):
            keep = (
                (brows >= tile.r0) & (brows < tile.r1)
                & (bcols >= tile.c0) & (bcols < tile.c1)
            )
            if keep.any():
                out.boundary[
                    brows[keep] - tile.r0, bcols[keep] - tile.c0
                ] = True
    return out


def circle_tile_bbox(
    center: tuple[float, float],
    radius: float,
    grid: TileGrid,
    pad: int = 2,
) -> tuple[int, int, int, int] | None:
    """Inclusive pixel bbox containing a circle's cover-or-near ribbon.

    Conservative analogue of :func:`~repro.core.canvas.clipped_pixel_bbox`
    for ``Canvas.circle``: the *near* test admits pixels out to
    normalized distance ``1 + cell_margin``, so the box extends the
    pixel radius by that factor (plus *pad* for the center-sampling
    half-pixel).
    """
    cx, cy = center
    pcx = (cx - grid.window.xmin) / grid.dx
    pcy = (cy - grid.window.ymin) / grid.dy
    pr_x = radius / grid.dx
    pr_y = radius / grid.dy
    cell_margin = 1.0 / pr_x + 1.0 / pr_y
    ex = pr_x * (1.0 + cell_margin)
    ey = pr_y * (1.0 + cell_margin)
    c0 = int(math.floor(pcx - ex)) - pad
    c1 = int(math.floor(pcx + ex)) + pad
    r0 = int(math.floor(pcy - ey)) - pad
    r1 = int(math.floor(pcy + ey)) + pad
    if c1 < 0 or r1 < 0 or c0 > grid.width - 1 or r0 > grid.height - 1:
        return None
    return (
        max(r0, 0), min(r1, grid.height - 1),
        max(c0, 0), min(c1, grid.width - 1),
    )


def build_circle_tile(
    tile: Tile,
    center: tuple[float, float],
    radius: float,
    grid: TileGrid,
    record_id: int = 1,
) -> TileCanvas:
    """One tile of ``Circ[(x, y), r]()``, bit-identical to the frame.

    Evaluates :meth:`~repro.core.canvas.Canvas.circle`'s expressions on
    the tile's index subrange: the pixel-center coordinates, the
    normalized distance, the cover and near masks and every channel
    write are elementwise, so the subrange result equals the full-frame
    slice bit for bit.
    """
    maybe_fire("tile.build")
    out = TileCanvas(tile.height, tile.width)
    cx, cy = center
    pcx = (cx - grid.window.xmin) / grid.dx
    pcy = (cy - grid.window.ymin) / grid.dy
    pr_x = radius / grid.dx
    pr_y = radius / grid.dy
    ys = np.arange(tile.r0, tile.r1, dtype=np.float64) + 0.5
    xs = np.arange(tile.c0, tile.c1, dtype=np.float64) + 0.5
    norm = (
        ((xs[None, :] - pcx) / pr_x) ** 2
        + ((ys[:, None] - pcy) / pr_y) ** 2
    )
    covered = norm <= 1.0
    cell_margin = (1.0 / pr_x + 1.0 / pr_y)
    near = np.abs(np.sqrt(norm) - 1.0) <= cell_margin
    id_ch = channel(DIM_AREA, FIELD_ID)
    cnt_ch = channel(DIM_AREA, FIELD_COUNT)
    cover_or_near = covered | near
    out.texture.data[:, :, id_ch][cover_or_near] = float(record_id)
    out.texture.data[:, :, cnt_ch][cover_or_near] = 1.0
    out.texture.valid[:, :, DIM_AREA] |= cover_or_near
    out.boundary |= near
    return out


def build_argmin_tile(
    tile: Tile,
    points: np.ndarray,
    grid: TileGrid,
    block: int = 8,
) -> ArgminTile:
    """One tile of the blocked-argmin Voronoi sweep.

    Mirrors the executor's whole-frame loop on the tile's pixel-center
    subrange: same chunking, same strict-``<`` claim rule, same float
    expressions — so the stitched owner/d² planes are bit-identical.
    """
    maybe_fire("tile.build")
    xs = grid.window.xmin + (
        np.arange(tile.c0, tile.c1, dtype=np.float64) + 0.5
    ) * grid.dx
    ys = grid.window.ymin + (
        np.arange(tile.r0, tile.r1, dtype=np.float64) + 0.5
    ) * grid.dy
    gx = np.broadcast_to(xs, (tile.height, tile.width))
    gy = np.broadcast_to(ys[:, None], (tile.height, tile.width))
    best_d2 = np.full((tile.height, tile.width), np.inf)
    owner = np.zeros((tile.height, tile.width))
    for start in range(0, len(points), block):
        chunk = points[start:start + block]
        d2 = (
            (gx[None, :, :] - chunk[:, 0, None, None]) ** 2
            + (gy[None, :, :] - chunk[:, 1, None, None]) ** 2
        )
        idx = np.argmin(d2, axis=0)
        dmin = np.min(d2, axis=0)
        closer = dmin < best_d2
        owner = np.where(closer, (start + idx).astype(np.float64), owner)
        best_d2 = np.where(closer, dmin, best_d2)
    return ArgminTile(owner, best_d2)
