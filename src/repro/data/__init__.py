"""Workload generators and data-set IO.

The paper evaluates on NYC taxi trips filtered to a query MBR, with
hand-drawn constraint polygons normalized to a common MBR and spanning
selectivities from ~3% to ~83% (Section 6).  This package synthesizes
equivalent workloads:

- :mod:`repro.data.synthetic` — point-cloud generators (uniform,
  Gaussian mixtures) with realistic skew;
- :mod:`repro.data.polygons` — "hand-drawn-like" star polygons,
  polygons with holes, and selectivity calibration against a point set;
- :mod:`repro.data.taxi` — an origin-destination trip generator shaped
  like the NYC taxi data (hotspots, time stamps, fares);
- :mod:`repro.data.datasets` — CSV (with WKT geometry) and GeoJSON
  round-trips.
"""

from repro.data.synthetic import gaussian_mixture_points, uniform_points
from repro.data.polygons import (
    calibrate_selectivity,
    hand_drawn_polygon,
    polygon_with_holes,
    rescale_to_box,
)
from repro.data.taxi import TaxiTrips, generate_taxi_trips

__all__ = [
    "TaxiTrips",
    "calibrate_selectivity",
    "gaussian_mixture_points",
    "generate_taxi_trips",
    "hand_drawn_polygon",
    "polygon_with_holes",
    "rescale_to_box",
    "uniform_points",
]
