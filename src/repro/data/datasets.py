"""Data-set IO: CSV with WKT geometry columns, and GeoJSON files.

The lightweight stand-in for the geopandas layer: spatial tables
round-trip through plain files with no third-party dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

from repro.geometry.geojson import (
    feature,
    feature_collection,
    from_geojson,
)
from repro.geometry.primitives import Geometry
from repro.geometry.wkt import from_wkt, to_wkt


def write_csv(
    path: str | Path,
    geometries: Sequence[Geometry],
    properties: Sequence[dict[str, Any]] | None = None,
    geometry_column: str = "geometry",
) -> None:
    """Write geometries (as WKT) plus property columns to a CSV file."""
    props = list(properties) if properties is not None else [{}] * len(geometries)
    if len(props) != len(geometries):
        raise ValueError("properties length must match geometry count")
    keys: list[str] = []
    for p in props:
        for key in p:
            if key not in keys:
                keys.append(key)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow([geometry_column, *keys])
        for geom, p in zip(geometries, props):
            writer.writerow([to_wkt(geom), *[p.get(k, "") for k in keys]])


def read_csv(
    path: str | Path,
    geometry_column: str = "geometry",
) -> tuple[list[Geometry], list[dict[str, str]]]:
    """Read a CSV written by :func:`write_csv`."""
    geometries: list[Geometry] = []
    properties: list[dict[str, str]] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or geometry_column not in reader.fieldnames:
            raise ValueError(f"CSV lacks a {geometry_column!r} column")
        for row in reader:
            geometries.append(from_wkt(row.pop(geometry_column)))
            properties.append(dict(row))
    return geometries, properties


def write_geojson(
    path: str | Path,
    geometries: Sequence[Geometry],
    properties: Sequence[dict[str, Any]] | None = None,
) -> None:
    """Write geometries as a GeoJSON FeatureCollection."""
    props = list(properties) if properties is not None else [{}] * len(geometries)
    doc = feature_collection(
        [feature(g, p) for g, p in zip(geometries, props)]
    )
    with open(path, "w") as f:
        json.dump(doc, f)


def read_geojson(
    path: str | Path,
) -> tuple[list[Geometry], list[dict[str, Any]]]:
    """Read a GeoJSON FeatureCollection (or bare geometry) file."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("type") == "FeatureCollection":
        geometries = [from_geojson(ft["geometry"]) for ft in doc["features"]]
        properties = [ft.get("properties") or {} for ft in doc["features"]]
        return geometries, properties
    if doc.get("type") == "Feature":
        return [from_geojson(doc["geometry"])], [doc.get("properties") or {}]
    return [from_geojson(doc)], [{}]
