"""Constraint-polygon generators.

Section 6: "all the query polygons used in these queries were
'hand-drawn' using a visual interface and adjusted to have the same
MBR", with selectivities from roughly 3% to 83%.  The generators here
produce the equivalent: star-shaped simple polygons with controllable
complexity (vertex count) and irregularity, rescaled to a common MBR,
and a calibration helper that searches for a polygon hitting a target
selectivity against a given point set.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import LinearRing, Polygon
from repro.geometry.transforms import AffineTransform


def hand_drawn_polygon(
    n_vertices: int = 24,
    irregularity: float = 0.45,
    seed: int = 0,
    center: tuple[float, float] = (0.0, 0.0),
    radius: float = 1.0,
) -> Polygon:
    """A star-shaped simple polygon that looks hand-drawn.

    Vertices sit at stratified random angles (one per angular sector,
    jittered within it) with radii jittered by *irregularity* (0 =
    regular n-gon, -> 1 = very spiky).  Stratified sampling keeps every
    angular gap below pi, so the anchor stays inside the hull and the
    angular-sort construction is guaranteed simple.
    """
    if n_vertices < 3:
        raise ValueError("a polygon needs at least 3 vertices")
    if not 0.0 <= irregularity < 1.0:
        raise ValueError("irregularity must be in [0, 1)")
    rng = np.random.default_rng(seed)
    sector = 2.0 * np.pi / n_vertices
    angles = (
        np.arange(n_vertices) + rng.uniform(0.05, 0.95, n_vertices)
    ) * sector
    # Base radius traces the boundary of the bounding square, so an
    # irregularity of 0 fills the whole MBR (selectivity -> 1 after
    # rescaling) and large irregularity yields spiky low-selectivity
    # shapes — together spanning the paper's 3%..83% range.
    cos_a = np.cos(angles)
    sin_a = np.sin(angles)
    base = radius / np.maximum(np.abs(cos_a), np.abs(sin_a))
    # The jitter is skewed toward deep cuts (u^0.25 concentrates near
    # 1) so high irregularity reaches genuinely low selectivities.
    jitter = rng.uniform(0.0, 1.0, n_vertices) ** 0.25
    radii = base * (1.0 - irregularity * jitter)
    cx, cy = center
    coords = [
        (cx + r * float(np.cos(a)), cy + r * float(np.sin(a)))
        for r, a in zip(radii, angles)
    ]
    return Polygon(coords)


def polygon_with_holes(
    seed: int = 0,
    center: tuple[float, float] = (0.0, 0.0),
    radius: float = 1.0,
    n_holes: int = 2,
) -> Polygon:
    """A hand-drawn-like polygon with interior holes.

    Holes are small star polygons placed at interior positions,
    shrunken until fully inside the shell.
    """
    rng = np.random.default_rng(seed)
    shell = hand_drawn_polygon(
        n_vertices=20, irregularity=0.25, seed=seed,
        center=center, radius=radius,
    )
    holes: list[LinearRing] = []
    attempts = 0
    while len(holes) < n_holes and attempts < 64:
        attempts += 1
        hx = center[0] + rng.uniform(-0.4, 0.4) * radius
        hy = center[1] + rng.uniform(-0.4, 0.4) * radius
        hole_poly = hand_drawn_polygon(
            n_vertices=8, irregularity=0.2, seed=seed + attempts,
            center=(hx, hy), radius=0.15 * radius,
        )
        inside = all(
            shell.contains_point(x, y) and not shell.on_boundary(x, y)
            for x, y in hole_poly.shell.coords
        )
        overlaps = any(
            existing_inside(hole_poly, LinearRing(h.coords))
            for h in holes
        )
        if inside and not overlaps:
            holes.append(hole_poly.shell)
    return Polygon(shell.shell, holes)


def existing_inside(poly: Polygon, ring: LinearRing) -> bool:
    """``True`` when *ring*'s bounds intersect *poly*'s bounds (coarse)."""
    return poly.bounds.intersects(ring.bounds)


def rescale_to_box(polygon: Polygon, box: BoundingBox) -> Polygon:
    """Rescale a polygon so its MBR equals *box* (the paper's
    equal-MBR normalization across query polygons)."""
    src = polygon.bounds
    transform = AffineTransform.window_to_window(
        (src.xmin, src.ymin, src.xmax, src.ymax),
        (box.xmin, box.ymin, box.xmax, box.ymax),
    )
    result = transform.apply_geometry(polygon)
    assert isinstance(result, Polygon)
    return result


def calibrate_selectivity(
    xs: np.ndarray,
    ys: np.ndarray,
    target: float,
    mbr: BoundingBox,
    n_vertices: int = 24,
    seed: int = 0,
    tolerance: float = 0.02,
    max_attempts: int = 48,
) -> tuple[Polygon, float]:
    """Search for a hand-drawn polygon with the target selectivity.

    The polygon always has MBR equal to *mbr* (rescaled after shaping),
    so selectivity is tuned through irregularity — spikier polygons
    cover less of their MBR.  Returns the best polygon found and its
    achieved selectivity over the given points.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target selectivity must be in (0, 1)")
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    n = len(xs)
    if n == 0:
        raise ValueError("cannot calibrate against zero points")

    best: tuple[Polygon, float] | None = None
    # Irregularity sweeps from full coverage (0) to very sparse (0.95).
    lo_irr, hi_irr = 0.0, 0.99
    for attempt in range(max_attempts):
        irregularity = (lo_irr + hi_irr) / 2.0
        poly = rescale_to_box(
            hand_drawn_polygon(
                n_vertices=n_vertices,
                irregularity=irregularity,
                seed=seed + attempt % 7,
            ),
            mbr,
        )
        selectivity = float(points_in_polygon(xs, ys, poly).sum()) / n
        if best is None or abs(selectivity - target) < abs(best[1] - target):
            best = (poly, selectivity)
        if abs(selectivity - target) <= tolerance:
            return poly, selectivity
        if selectivity > target:
            lo_irr = irregularity
        else:
            hi_irr = irregularity
    assert best is not None
    return best
