"""Synthetic point-cloud generators."""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox


def uniform_points(
    n: int,
    window: BoundingBox,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """*n* points uniform over *window* (deterministic per *seed*)."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(window.xmin, window.xmax, n)
    ys = rng.uniform(window.ymin, window.ymax, n)
    return xs, ys


def gaussian_mixture_points(
    n: int,
    window: BoundingBox,
    n_clusters: int = 8,
    spread: float = 0.08,
    uniform_fraction: float = 0.15,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Skewed points: a Gaussian mixture clipped to *window*.

    Real urban point data (taxi pickups, restaurants) is heavily
    clustered around hotspots with a diffuse background; this generator
    reproduces that shape.  *spread* is the cluster sigma as a fraction
    of the window diagonal; *uniform_fraction* of the points form the
    background.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be at least 1")
    rng = np.random.default_rng(seed)
    n_uniform = int(n * uniform_fraction)
    n_clustered = n - n_uniform

    centers_x = rng.uniform(window.xmin, window.xmax, n_clusters)
    centers_y = rng.uniform(window.ymin, window.ymax, n_clusters)
    weights = rng.dirichlet(np.full(n_clusters, 1.5))
    assignment = rng.choice(n_clusters, size=n_clustered, p=weights)

    diag = float(np.hypot(window.width, window.height))
    sigma = spread * diag
    xs = centers_x[assignment] + rng.normal(0.0, sigma, n_clustered)
    ys = centers_y[assignment] + rng.normal(0.0, sigma, n_clustered)

    ux = rng.uniform(window.xmin, window.xmax, n_uniform)
    uy = rng.uniform(window.ymin, window.ymax, n_uniform)
    xs = np.concatenate([xs, ux])
    ys = np.concatenate([ys, uy])

    # Clip strays back into the window (reflect once, then clamp).
    xs = np.clip(xs, window.xmin, window.xmax)
    ys = np.clip(ys, window.ymin, window.ymax)
    perm = rng.permutation(n)
    return xs[perm], ys[perm]
