"""Synthetic NYC-taxi-like trip data.

The paper's evaluation selects taxi trips by pickup location, varying
input size "using the pickup time range of the taxi trips"
(Section 6).  :func:`generate_taxi_trips` produces an
origin-destination trip table with the same knobs:

- pickups drawn from a Gaussian-mixture over a Manhattan-like window
  (dense midtown/downtown hotspots, diffuse background);
- dropoffs displaced from pickups by skewed trip vectors;
- pickup times uniform over a configurable range, so time-range
  filtering scales the input exactly as in the paper;
- a fare attribute correlated with trip distance for SUM/AVG
  aggregation queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.data.synthetic import gaussian_mixture_points

#: A Manhattan-like world window (abstract units ~ kilometers).
NYC_WINDOW = BoundingBox(0.0, 0.0, 20.0, 40.0)


@dataclass
class TaxiTrips:
    """A columnar origin-destination trip table."""

    pickup_x: np.ndarray
    pickup_y: np.ndarray
    dropoff_x: np.ndarray
    dropoff_y: np.ndarray
    pickup_time: np.ndarray
    fare: np.ndarray

    def __len__(self) -> int:
        return len(self.pickup_x)

    @property
    def ids(self) -> np.ndarray:
        return np.arange(len(self), dtype=np.int64)

    def filter_time_range(self, t0: float, t1: float) -> "TaxiTrips":
        """Trips with pickup time in ``[t0, t1)`` — the paper's
        input-size knob."""
        keep = (self.pickup_time >= t0) & (self.pickup_time < t1)
        return TaxiTrips(
            self.pickup_x[keep], self.pickup_y[keep],
            self.dropoff_x[keep], self.dropoff_y[keep],
            self.pickup_time[keep], self.fare[keep],
        )

    def head(self, n: int) -> "TaxiTrips":
        """The first *n* trips (deterministic subsetting for sweeps)."""
        return TaxiTrips(
            self.pickup_x[:n], self.pickup_y[:n],
            self.dropoff_x[:n], self.dropoff_y[:n],
            self.pickup_time[:n], self.fare[:n],
        )


def generate_taxi_trips(
    n: int,
    window: BoundingBox = NYC_WINDOW,
    time_range: tuple[float, float] = (0.0, 24.0),
    n_hotspots: int = 12,
    seed: int = 7,
) -> TaxiTrips:
    """Generate *n* synthetic trips over *window*.

    Pickup locations follow a hotspot mixture; dropoffs add a
    log-normal trip length in a direction biased along the window's
    long axis (Manhattan's avenue flow), clipped to the window.
    """
    rng = np.random.default_rng(seed)
    px, py = gaussian_mixture_points(
        n, window, n_clusters=n_hotspots, spread=0.05,
        uniform_fraction=0.1, seed=seed,
    )

    trip_len = rng.lognormal(mean=0.3, sigma=0.6, size=n)
    trip_len *= 0.04 * float(np.hypot(window.width, window.height))
    # Direction: biased toward the long axis of the window.
    long_axis = 0.5 * np.pi if window.height >= window.width else 0.0
    theta = rng.normal(long_axis, 0.9, size=n)
    sign = rng.choice([-1.0, 1.0], size=n)
    dx = trip_len * np.cos(theta) * sign
    dy = trip_len * np.sin(theta) * sign
    qx = np.clip(px + dx, window.xmin, window.xmax)
    qy = np.clip(py + dy, window.ymin, window.ymax)

    t0, t1 = time_range
    pickup_time = rng.uniform(t0, t1, n)
    actual_len = np.hypot(qx - px, qy - py)
    fare = 2.5 + 1.8 * actual_len + rng.normal(0.0, 0.5, n)
    fare = np.maximum(fare, 2.5)

    order = np.argsort(pickup_time, kind="stable")
    return TaxiTrips(
        px[order], py[order], qx[order], qy[order],
        pickup_time[order], fare[order],
    )
