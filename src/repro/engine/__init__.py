"""Plan-driven execution engine: planner + executor + canvas cache.

This package turns the three previously disconnected layers of the
reproduction into one pipeline:

- :mod:`repro.core.expressions` / :mod:`repro.core.plans` supply the
  *logical* plan trees (the paper's Figures 5–8);
- :mod:`repro.core.optimizer` prices equivalent physical strategies
  (Section 7);
- :mod:`repro.engine.planner` chooses the strategy to run;
- :mod:`repro.engine.executor` evaluates it, serving constraint
  canvases from :mod:`repro.engine.cache` and recording an
  :class:`~repro.engine.executor.ExecutionReport` per query.

The public query functions in :mod:`repro.queries` all route through
the module-level default engine.  Tests and benchmarks can steer plan
choice by installing an engine with a custom cost model::

    from repro.core.optimizer import CostModel
    from repro.engine import QueryEngine, use_engine

    with use_engine(QueryEngine(CostModel(edge_test=1e6))):
        result = polygonal_select_points(xs, ys, polygon)
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.engine.cache import CanvasCache, CacheStats, geometries_digest, geometry_digest
from repro.engine.executor import (
    AggregationOutcome,
    BatchMember,
    BatchOutcome,
    BatchQuery,
    BatchReport,
    ExecutionReport,
    QueryEngine,
    SelectionOutcome,
    VoronoiOutcome,
    aggregate_samples,
    unique_ids,
)
from repro.engine.process_pool import (
    ProcessBackend,
    WorkerLost,
    WorkerTaskError,
)
from repro.engine.planner import (
    AGG_JOIN_THEN_AGG,
    AGG_RASTERJOIN,
    DISTANCE_CANVAS,
    DISTANCE_DIRECT,
    GEOM_BLEND,
    GEOM_PREDICATE,
    KNN_KDTREE,
    KNN_PROBES,
    OD_CANVAS,
    OD_PIP,
    SELECTION_BLENDED,
    SELECTION_PIP,
    VORONOI_ARGMIN,
    VORONOI_ITERATED,
    PlanChoice,
    Planner,
)

__all__ = [
    "AGG_JOIN_THEN_AGG",
    "AGG_RASTERJOIN",
    "AggregationOutcome",
    "BatchMember",
    "BatchOutcome",
    "BatchQuery",
    "BatchReport",
    "CacheStats",
    "CanvasCache",
    "DISTANCE_CANVAS",
    "DISTANCE_DIRECT",
    "ExecutionReport",
    "GEOM_BLEND",
    "GEOM_PREDICATE",
    "KNN_KDTREE",
    "KNN_PROBES",
    "OD_CANVAS",
    "OD_PIP",
    "PlanChoice",
    "Planner",
    "ProcessBackend",
    "QueryEngine",
    "SELECTION_BLENDED",
    "SELECTION_PIP",
    "SelectionOutcome",
    "VORONOI_ARGMIN",
    "VORONOI_ITERATED",
    "VoronoiOutcome",
    "WorkerLost",
    "WorkerTaskError",
    "aggregate_samples",
    "explain",
    "geometries_digest",
    "geometry_digest",
    "get_engine",
    "set_engine",
    "unique_ids",
    "use_engine",
]

_default_engine: QueryEngine | None = None


def get_engine() -> QueryEngine:
    """The process-wide default engine serving the query API."""
    global _default_engine
    if _default_engine is None:
        _default_engine = QueryEngine()
    return _default_engine


def set_engine(engine: QueryEngine) -> QueryEngine:
    """Install *engine* as the default; returns the previous one."""
    global _default_engine
    previous = get_engine()
    _default_engine = engine
    return previous


@contextmanager
def use_engine(engine: QueryEngine):
    """Temporarily route the query API through *engine*."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)


def explain(last: int = 1) -> str:
    """``explain()`` on the default engine (chosen plan, cost, cache)."""
    return get_engine().explain(last=last)
