"""Canvas/rasterization cache for the plan-driven execution engine.

Rasterizing constraint geometry is the dominant fixed cost of every
canvas plan (Section 5.1 renders canvases "on the fly"), and real
workloads repeat constraints: a dashboard re-issues the same polygon at
every refresh, a benchmark sweep re-rasterizes the same hand-drawn
constraint per input size, and a join builds one canvas per polygon per
query.  The cache memoizes finished constraint canvases keyed on

    (build recipe, geometry digest, window, resolution, device)

so a repeated constraint costs one dictionary lookup instead of a full
raster pass.  Cached canvases are treated as immutable by every
consumer (blends only *gather* from the dense right-hand operand), so
entries are shared, not copied.

Misses are *single-flight*: when several threads miss the same key at
once (a parallel batch whose members share a constraint set), exactly
one of them runs the builder while the rest wait on the in-flight
build and share its frozen result — a raster pass never runs twice for
one key, no matter how many threads race to it.

Eviction is LRU with a bounded entry count; statistics (hits, misses,
evictions, builds, single-flight waits) feed the engine's ``explain()``
reports and the ablation benchmarks.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.geometry.primitives import Geometry, Polygon
from repro.testing.faults import maybe_fire

CacheKey = tuple


def geometry_digest(geometry: Geometry) -> str:
    """Stable content digest of a geometry's exact vector form.

    Polygons hash shell plus holes; every other geometry hashes its
    vertex array.  Two geometries with identical coordinates share a
    digest, so equal constraints hit the cache even when they are
    distinct Python objects.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(type(geometry).__name__.encode())
    if isinstance(geometry, Polygon):
        h.update(geometry.shell.vertex_array().tobytes())
        for hole in geometry.holes:
            h.update(b"|hole|")
            h.update(hole.vertex_array().tobytes())
    else:
        h.update(geometry.vertex_array().tobytes())
    return h.hexdigest()


def geometries_digest(geometries: Sequence[Geometry]) -> str:
    """Order-sensitive combined digest of a geometry sequence."""
    h = hashlib.blake2b(digest_size=16)
    for geom in geometries:
        h.update(geometry_digest(geom).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of cache counters (cumulative since last ``clear``)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    bytes_used: int = 0
    max_bytes: int = 0
    #: Builder invocations — with single-flight misses this equals the
    #: number of *unique* keys ever built, however many threads raced.
    builds: int = 0
    #: Misses that waited on another thread's in-flight build instead
    #: of running the builder themselves.
    single_flight_waits: int = 0
    #: Built values returned to the caller but not parked in the store
    #: because the MemoryGovernor refused admission under pressure.
    admission_skips: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "builds": self.builds,
            "single_flight_waits": self.single_flight_waits,
            "admission_skips": self.admission_skips,
            "hit_rate": round(self.hit_rate, 4),
        }


def estimate_canvas_bytes(value) -> int:
    """Array payload of a dense canvas (texture data + validity + flags).

    Values that declare an explicit ``cache_nbytes`` (e.g. the sparse
    :class:`~repro.core.rasterjoin.PolygonCoverage` footprints the
    rasterjoin plan caches) report that; other non-canvas values fall
    back to 0 — they still count toward the entry bound, just not the
    byte budget.
    """
    explicit = getattr(value, "cache_nbytes", None)
    if explicit is not None:
        return int(explicit)
    total = 0
    texture = getattr(value, "texture", None)
    if texture is not None:
        for attr in ("data", "valid"):
            arr = getattr(texture, attr, None)
            total += getattr(arr, "nbytes", 0)
    total += getattr(getattr(value, "boundary", None), "nbytes", 0)
    return total


#: Default byte budget: ~12 full-resolution (1024x1024) canvases — room
#: for the motivating multi-polygon joins to repeat without LRU churn,
#: while still bounding steady-state memory.
DEFAULT_MAX_BYTES = 1024 * 1024 * 1024


def freeze_cached_value(value) -> None:
    """Make a cached value's array payload read-only, in place.

    Cache entries are shared, never copied, so a consumer writing into
    one (e.g. passing a cached canvas as an algebra operator's ``out=``
    target, or drawing onto it) would silently corrupt every later hit.
    Flipping ``numpy``'s writeable flag turns that latent aliasing
    hazard into an immediate ``ValueError`` at the offending write.

    Covers dense canvases (texture data/valid + boundary flags),
    sparse :class:`~repro.core.rasterjoin.PolygonCoverage` footprints
    (``flat``) and per-tile rasters —
    :class:`~repro.core.tiling.TileCanvas` shares the texture/boundary
    attributes and :class:`~repro.core.tiling.ArgminTile` carries
    ``owner``/``best_d2`` planes; unknown value shapes are left as
    they are.
    """
    texture = getattr(value, "texture", None)
    if texture is not None:
        for attr in ("data", "valid"):
            arr = getattr(texture, attr, None)
            if hasattr(arr, "setflags"):
                arr.setflags(write=False)
    for attr in ("boundary", "flat", "owner", "best_d2"):
        arr = getattr(value, attr, None)
        if hasattr(arr, "setflags"):
            arr.setflags(write=False)


class _InFlightBuild:
    """One key's in-progress build: an event the waiters block on plus
    the slot the leader publishes its result (or failure) into.

    Waiters read the value from the slot, not the store — even if LRU
    pressure evicts the entry the instant it lands, every thread that
    raced the miss still shares the one built value.
    """

    __slots__ = ("event", "value", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object | None = None
        self.failed = False


class CanvasCache:
    """LRU cache of rasterized canvases, bounded by entries *and* bytes.

    A 1024x1024 canvas weighs ~80 MB, so an entry count alone would let
    routine joins pin gigabytes; eviction runs until both the entry
    cap and the byte budget hold (an oversized single entry is still
    admitted — it evicts everything else and is dropped on the next
    insert).  Values are whatever the builder returns; the cache never
    copies them — consumers must not mutate entries.

    Thread-safe, with *single-flight* misses: concurrent misses on one
    key elect a leader that runs the builder (outside the lock — raster
    passes are long) while every other thread waits and shares the
    frozen result.  A failing builder releases its waiters, which then
    re-elect and retry.
    """

    def __init__(
        self,
        capacity: int = 64,
        max_bytes: int = DEFAULT_MAX_BYTES,
        sizer: Callable[[object], int] = estimate_canvas_bytes,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if max_bytes < 1:
            raise ValueError("cache byte budget must be positive")
        self.capacity = capacity
        self.max_bytes = max_bytes
        #: Optional MemoryGovernor (set via ``governor.attach``); when
        #: present it gates admission and triggers cross-cache
        #: rebalancing.  Always consulted OUTSIDE ``self._lock`` —
        #: its usage scan takes each component's lock.
        self.governor = None
        self._sizer = sizer
        self._store: OrderedDict[CacheKey, tuple[object, int]] = OrderedDict()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._inflight: dict[CacheKey, _InFlightBuild] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._builds = 0
        self._single_flight_waits = 0
        self._admission_skips = 0

    @property
    def bytes_used(self) -> int:
        """Current byte footprint of the store (governor's usage hook)."""
        with self._lock:
            return self._bytes

    def keys(self) -> list:
        """Snapshot of the stored keys, LRU-first.

        The process backend's warm-key harvest diffs this around a
        worker-side run to learn which constraint canvases the run
        materialized; entries, not contents, so it is cheap.
        """
        with self._lock:
            return list(self._store)

    def evict_lru(self) -> int:
        """Evict the least-recently-used entry; bytes freed (0 if empty).

        The MemoryGovernor's shrink hook: unlike internal eviction it
        may empty the cache entirely — under process-wide pressure an
        empty cache beats an OOM.
        """
        with self._lock:
            if not self._store:
                return 0
            _, (_, nbytes) = self._store.popitem(last=False)
            self._bytes -= nbytes
            self._evictions += 1
            return nbytes

    def thread_counters(self) -> tuple[int, int]:
        """(hits, misses) recorded by the calling thread only.

        Monotonic per thread; snapshot before/after an execution to get
        a per-query delta that concurrent queries cannot pollute.
        """
        return (
            getattr(self._local, "hits", 0),
            getattr(self._local, "misses", 0),
        )

    def _count_locked(self, hit: bool) -> None:
        # *_locked suffix: callers hold self._lock (the lock-discipline
        # lint's caller-holds-the-lock convention).
        if hit:
            self._hits += 1
            self._local.hits = getattr(self._local, "hits", 0) + 1
        else:
            self._misses += 1
            self._local.misses = getattr(self._local, "misses", 0) + 1

    def get_or_build(self, key: CacheKey, builder: Callable[[], object]):
        """Return the cached value for *key*, building it on a miss.

        The builder runs outside the lock (raster passes are long) but
        under a per-key single-flight guard: concurrent misses on the
        same key build exactly once, with every waiter sharing the one
        frozen value.  Waiters count as cache hits (they paid a wait,
        not a raster pass), so serial and parallel runs of the same
        workload report the same hit/miss split.
        """
        while True:
            with self._lock:
                if key in self._store:
                    self._count_locked(hit=True)
                    self._store.move_to_end(key)
                    return self._store[key][0]
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlightBuild()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
                    self._single_flight_waits += 1
            if not leader:
                flight.event.wait()
                if not flight.failed:
                    with self._lock:
                        self._count_locked(hit=True)
                    return flight.value
                continue  # the leader's builder raised: re-elect and retry
            try:
                maybe_fire("cache.builder")
                value = builder()
                # Entries are shared, never copied: freeze the array
                # payload so a consumer mutating the entry raises
                # instead of corrupting every later hit.  Freeze and
                # sizing stay inside the guarded region — a raising
                # sizer must release the waiters too, not wedge the
                # key forever.
                freeze_cached_value(value)
                nbytes = self._sizer(value)
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.failed = True
                flight.event.set()
                raise
            # Governor admission is decided outside self._lock: its
            # usage scan takes every attached component's lock.
            governor = self.governor
            admit = governor is None or governor.admit(nbytes)
            with self._lock:
                self._count_locked(hit=False)
                self._builds += 1
                if admit:
                    if key in self._store:
                        self._bytes -= self._store[key][1]
                    self._store[key] = (value, nbytes)
                    self._store.move_to_end(key)
                    self._bytes += nbytes
                    while len(self._store) > 1 and (
                        len(self._store) > self.capacity
                        or self._bytes > self.max_bytes
                    ):
                        _, (_, evicted_bytes) = self._store.popitem(last=False)
                        self._bytes -= evicted_bytes
                        self._evictions += 1
                else:
                    # Under pressure the built value still answers this
                    # request (and its single-flight waiters) — it just
                    # never parks in the store.
                    self._admission_skips += 1
                self._inflight.pop(key, None)
            flight.value = value
            flight.event.set()
            if governor is not None and admit:
                governor.rebalance()
            return value

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._store),
                capacity=self.capacity,
                bytes_used=self._bytes,
                max_bytes=self.max_bytes,
                builds=self._builds,
                single_flight_waits=self._single_flight_waits,
                admission_skips=self._admission_skips,
            )

    def clear(self) -> None:
        """Drop all entries and reset counters (in-flight builds keep
        their guards: a build racing a clear still completes once)."""
        with self._lock:
            self._store.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._builds = 0
            self._single_flight_waits = 0
            self._admission_skips = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._store
