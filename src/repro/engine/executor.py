"""Plan-driven query executor with canvas caching and explain reports.

The executor is the single place where a chosen physical plan becomes
work.  Query frontends (:mod:`repro.queries`) describe *what* to
compute; :class:`Planner` decides *how* (cost-based, Section 7); this
module runs the winning strategy:

- ``blended-canvas`` selections build the Figure 8(b) expression tree
  with :mod:`repro.core.expressions` nodes and evaluate it through the
  algebra, pulling constraint canvases from the :class:`CanvasCache`;
- ``per-polygon-pip`` selections run the traditional vectorized
  point-in-polygon kernel (the paper's baseline strategy) — exact by
  construction, cheapest for small inputs;
- ``join-then-aggregate`` aggregations run the Section 4.3 plan with
  per-polygon cached constraint canvases, a bbox-prefiltered gather
  and exact refinement;
- ``rasterjoin`` aggregations delegate to the Figure 8(c) plan;
- distance, kNN, Voronoi, OD and geometry-record selections each run
  their canvas realization or the competing exact kernel
  (:meth:`QueryEngine.select_distance`, :meth:`QueryEngine.knn`,
  :meth:`QueryEngine.voronoi`, :meth:`QueryEngine.od_select`,
  :meth:`QueryEngine.select_geometry_records`).

Expression trees evaluate under an ownership-aware
:class:`~repro.core.expressions.EvalContext` sharing the engine's
:class:`~repro.core.expressions.BufferPool`: owned intermediates run
in place (zero full-texture copies), cached leaves are gathered from
untouched, and the buffer counters land in the report.
:meth:`QueryEngine.execute_batch` plans a list of queries together so
shared constraint canvases rasterize once per batch.

Every execution produces an :class:`ExecutionReport` — chosen plan,
estimated cost, full candidate table, cache-hit delta, buffer
counters, timings, and the rendered plan tree — which
:meth:`QueryEngine.explain` formats for humans and the CLI ``explain``
subcommand prints.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import (
    linestring_intersects_polygon,
    points_in_polygon,
    polygon_intersects_polygon,
)
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.index.kdtree import KDTree
from repro.core import algebra, optimizer
from repro.core.accuracy import refine_point_samples
from repro.core.blendfuncs import LINE_MERGE, PIP_MERGE, POLY_MERGE
from repro.core.canvas import (
    Canvas,
    Resolution,
    _circle_polygon,
    _resolve_resolution,
    clipped_pixel_bbox,
    world_points_to_cells,
)
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import (
    BufferPool,
    EvalContext,
    EvalCounters,
    InputNode,
    TiledGatherNode,
    UtilityNode,
    ValueTransformNode,
    render_plan,
)
from repro.core.masks import (
    FieldCompare,
    NotNull,
    mask_point_in_all_polygons,
    mask_point_in_any_polygon,
    mask_polygon_intersection,
)
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    channel,
)
from repro.core.optimizer import CostModel, PlanEstimate
from repro.core.tiling import (
    CoverageMemo,
    TileGrid,
    array_digest,
    bbox_intersects_tile,
    build_argmin_tile,
    build_circle_tile,
    build_polygon_tile,
    circle_digest,
    circle_tile_bbox,
    tile_key,
)
from repro.engine.cache import CanvasCache, geometries_digest, geometry_digest
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
)
from repro.engine.planner import (
    AGG_JOIN_THEN_AGG_TILED,
    AGG_RASTERJOIN,
    DISTANCE_CANVAS,
    DISTANCE_CANVAS_TILED,
    GEOM_BLEND_TILED,
    GEOM_PREDICATE,
    KNN_KDTREE,
    OD_CANVAS_TILED,
    OD_PIP,
    SELECTION_BLENDED,
    SELECTION_BLENDED_TILED,
    SELECTION_PIP,
    VORONOI_ARGMIN_TILED,
    VORONOI_ITERATED,
    Planner,
)


#: Batchable query kind -> QueryEngine method name.  The single source
#: of truth for both :meth:`QueryEngine.execute_batch` and the spec
#: layer's batch description (repro.api.session).
BATCH_KINDS = {
    "selection": "select_points",
    "aggregation": "aggregate_points",
    "distance": "select_distance",
    "knn": "knn",
    "od": "od_select",
    "voronoi": "voronoi",
}


def unique_ids(keys: np.ndarray) -> np.ndarray:
    """``np.unique`` with a fast path for already-sorted-unique keys.

    Point canvas sets carry one sample per record in id order, so
    selection results are usually strictly increasing already; the
    linear monotonicity check then skips the full unique machinery.
    """
    if len(keys) < 2:
        return keys.copy()
    diffs = np.diff(keys)
    if (diffs > 0).all():
        return keys.copy()
    return np.unique(keys)


def _group_gamma(data: np.ndarray, valid: np.ndarray):
    """The paper's ``γc(s) = (s[2][0], 0)`` — group by containing polygon."""
    gx = data[:, channel(DIM_AREA, FIELD_ID)] + 0.5
    gy = np.full_like(gx, 0.5)
    return gx, gy


def aggregate_samples(
    samples: CanvasSet,
    group_ids: Sequence[int],
    aggregate: str,
    attr_channel: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``B*[+](G[γc](samples))`` read back per group id.

    The accumulator canvas spans the id range ``[0, max_id + 1)`` with
    one pixel per id — the "unique location per object" the paper's
    value-driven transform targets.  Returns ``(groups, values)``.
    """
    if attr_channel is None:
        attr_channel = channel(DIM_POINT, FIELD_VALUE)
    groups = np.asarray(sorted(set(int(g) for g in group_ids)), dtype=np.int64)
    if samples.is_empty():
        fill = math.inf if aggregate == "min" else (-math.inf if aggregate == "max" else 0.0)
        values = np.full(
            len(groups),
            0.0 if aggregate in ("count", "sum", "avg") else fill,
        )
        return groups, values
    max_id = int(max(groups.max(), samples.field(DIM_AREA, FIELD_ID).max()))
    window = BoundingBox(0.0, 0.0, float(max_id + 1), 1.0)
    resolution = (1, max_id + 1)

    if aggregate in ("count", "sum", "avg"):
        acc = algebra.aggregate_canvas_set(
            samples, _group_gamma, window, resolution
        )
        counts = acc.field(DIM_POINT, FIELD_COUNT)[0, :]
        sums = acc.field(DIM_POINT, FIELD_VALUE)[0, :]
        if aggregate == "count":
            return groups, counts[groups]
        if aggregate == "sum":
            return groups, sums[groups]
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        return groups, avg[groups]

    if aggregate in ("min", "max"):
        # The paper: "the + function can be modified appropriately" for
        # other distributive aggregates — scatter-min/max is the GPU
        # blend-equation MIN/MAX equivalent.
        gx, _ = _group_gamma(samples.data, samples.valid)
        slot = np.floor(gx).astype(np.int64)
        init = math.inf if aggregate == "min" else -math.inf
        acc_arr = np.full(max_id + 1, init, dtype=np.float64)
        attr = samples.data[:, attr_channel]
        ok = (slot >= 0) & (slot <= max_id)
        if aggregate == "min":
            np.minimum.at(acc_arr, slot[ok], attr[ok])
        else:
            np.maximum.at(acc_arr, slot[ok], attr[ok])
        return groups, acc_arr[groups]

    raise ValueError(f"unsupported aggregate {aggregate!r}")


# ----------------------------------------------------------------------
# Reports and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionReport:
    """What one engine execution did and why."""

    query: str
    plan: str
    estimated_cost: float
    candidates: tuple[PlanEstimate, ...]
    forced: str | None
    cache_hits: int
    cache_misses: int
    planning_s: float
    execution_s: float
    plan_tree: str | None
    #: Dense-buffer traffic of the ownership-aware evaluator: copies the
    #: execution could not elide, fresh allocations, pooled reuses, and
    #: operators that ran in place on owned intermediates.
    copies: int = 0
    allocations: int = 0
    pool_reuses: int = 0
    inplace_ops: int = 0
    #: Tiled-plan detail: lattice tiles the plan spanned and how the
    #: tile cache split them (hits reuse a cached tile raster, misses
    #: rasterize one).  All zero for whole-frame plans.
    tiles: int = 0
    tile_hits: int = 0
    tile_misses: int = 0

    def describe(self) -> str:
        lines = [
            f"query: {self.query}",
            f"chosen plan: {self.plan} (estimated cost {self.estimated_cost:.4g})",
        ]
        if self.forced:
            lines.append(f"choice forced: {self.forced}")
        if self.candidates:
            lines.append("candidate plans:")
            lines.extend(
                "  " + row
                for row in optimizer.explain(list(self.candidates)).splitlines()
            )
        if self.plan_tree:
            lines.append("plan tree:")
            lines.extend("  " + row for row in self.plan_tree.splitlines())
        lines.append(
            f"canvas cache: {self.cache_hits} hits, "
            f"{self.cache_misses} misses during this query"
        )
        if self.tiles > 0:
            lines.append(
                f"tile cache: {self.tile_hits} warm / "
                f"{self.tile_misses} cold of {self.tiles} lattice tiles"
            )
        lines.append(
            f"buffers: {self.copies} full-texture copies, "
            f"{self.allocations} allocations, "
            f"{self.pool_reuses} pool reuses, "
            f"{self.inplace_ops} in-place ops"
        )
        lines.append(
            f"timings: planning {self.planning_s * 1e6:.1f} us, "
            f"execution {self.execution_s * 1e3:.3f} ms"
        )
        return "\n".join(lines)


@dataclass
class SelectionOutcome:
    """Raw executor output for a selection (frontends wrap this)."""

    ids: np.ndarray
    n_candidates: int
    n_exact_tests: int
    samples: CanvasSet
    report: ExecutionReport


@dataclass
class AggregationOutcome:
    """Raw executor output for an aggregation (frontends wrap this)."""

    groups: np.ndarray
    values: np.ndarray
    aggregate: str
    report: ExecutionReport


@dataclass
class VoronoiOutcome:
    """Raw executor output for the Voronoi stored procedure."""

    canvas: Canvas
    report: ExecutionReport


@dataclass(frozen=True)
class BatchQuery:
    """One query of an :meth:`QueryEngine.execute_batch` submission.

    *kind* selects the engine entry point; *kwargs* are its keyword
    arguments (positional data arrays included).  The classmethod
    constructors spell the supported kinds.

    *parallel* is the member-level opt-out of threaded batch
    execution: a ``False`` member always runs on the submitting thread
    after the parallel wave completes, even when the engine executes
    the rest of the batch on a worker pool.
    """

    kind: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    parallel: bool = True

    @classmethod
    def selection(cls, xs, ys, polygons, **kwargs) -> "BatchQuery":
        return cls("selection", dict(kwargs, xs=xs, ys=ys, polygons=polygons))

    @classmethod
    def aggregation(cls, xs, ys, polygons, **kwargs) -> "BatchQuery":
        return cls("aggregation", dict(kwargs, xs=xs, ys=ys, polygons=polygons))

    @classmethod
    def distance(cls, xs, ys, center, radius, **kwargs) -> "BatchQuery":
        return cls(
            "distance",
            dict(kwargs, xs=xs, ys=ys, center=center, radius=radius),
        )

    @classmethod
    def knn(cls, xs, ys, query_point, k, **kwargs) -> "BatchQuery":
        return cls(
            "knn", dict(kwargs, xs=xs, ys=ys, query_point=query_point, k=k)
        )

    @classmethod
    def od(cls, origin_xs, origin_ys, dest_xs, dest_ys, q1, q2,
           **kwargs) -> "BatchQuery":
        return cls(
            "od",
            dict(kwargs, origin_xs=origin_xs, origin_ys=origin_ys,
                 dest_xs=dest_xs, dest_ys=dest_ys, q1=q1, q2=q2),
        )

    @classmethod
    def voronoi(cls, points, window, **kwargs) -> "BatchQuery":
        return cls("voronoi", dict(kwargs, points=points, window=window))


@dataclass(frozen=True)
class BatchMember:
    """One batch member's execution record: where and how long it ran.

    *worker* is the executing thread's name — the submitting thread for
    serial batches and opt-out members, a pool thread otherwise — so a
    report can show which members actually overlapped.
    """

    index: int
    kind: str
    plan: str
    execution_s: float
    worker: str


@dataclass(frozen=True)
class BatchReport:
    """What one batched execution shared across its member queries."""

    n_queries: int
    plans: tuple[tuple[str, str], ...]  #: (query kind, chosen plan) pairs
    cache_hits: int
    cache_misses: int
    shared_constraint_sets: int  #: distinct constraint recipes reused >= twice
    counters: EvalCounters
    planning_s: float
    execution_s: float
    #: Per-member timing + worker attribution, in submission order.
    members: tuple[BatchMember, ...] = ()
    #: Worker threads this batch was allowed to spread over (1 = serial).
    max_workers: int = 1

    def describe(self) -> str:
        lines = [
            f"batch: {self.n_queries} queries "
            f"({self.max_workers} worker(s))",
            "plans: " + ", ".join(f"{q}:{p}" for q, p in self.plans),
            (
                f"canvas cache: {self.cache_hits} hits, "
                f"{self.cache_misses} misses across the batch "
                f"({self.shared_constraint_sets} constraint set(s) shared)"
            ),
            (
                f"buffers: {self.counters.full_copies} full-texture copies, "
                f"{self.counters.allocations} allocations, "
                f"{self.counters.pool_reuses} pool reuses, "
                f"{self.counters.inplace_ops} in-place ops"
            ),
            (
                f"timings: planning {self.planning_s * 1e3:.3f} ms, "
                f"execution {self.execution_s * 1e3:.3f} ms"
            ),
        ]
        for member in self.members:
            lines.append(
                f"  member[{member.index}] {member.kind}:{member.plan} "
                f"{member.execution_s * 1e3:.3f} ms on {member.worker}"
            )
        return "\n".join(lines)


@dataclass
class BatchOutcome:
    """Per-query outcomes plus the batch-level sharing report."""

    results: list
    report: BatchReport


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class QueryEngine:
    """Planner + executor + canvas cache behind the query API.

    One engine instance owns one cost model and one cache; the
    module-level default engine (see :mod:`repro.engine`) serves the
    public query functions, while tests and benchmarks may instantiate
    engines with custom cost models to steer plan choice.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        cache_capacity: int = 64,
        cache_max_bytes: int | None = None,
        history: int = 32,
        buffer_pool_size: int = 8,
        max_workers: int = 1,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.planner = Planner(cost_model or CostModel())
        if cache_max_bytes is None:
            self.cache = CanvasCache(cache_capacity)
        else:
            self.cache = CanvasCache(cache_capacity, max_bytes=cache_max_bytes)
        self.reports: deque[ExecutionReport] = deque(maxlen=history)
        #: Monotonic count of every report ever recorded — the bounded
        #: deque above forgets, so consumers tracking "reports since X"
        #: (Session.take_reports) need the true tally.
        self.report_count = 0
        #: Default worker-thread cap for :meth:`execute_batch` (1 keeps
        #: the pre-concurrency serial behaviour).
        self.max_workers = max_workers
        self._history = history
        self._report_lock = threading.Lock()
        #: Per-thread report history mirror: parallel batch members and
        #: threaded serve workers record from many threads at once, so
        #: "reports since X" attribution (Session.take_reports) reads
        #: the calling thread's own stream, never a neighbour's.
        self._report_local = threading.local()
        #: Dense buffers recycled across executions by the
        #: ownership-aware expression evaluator.
        self.buffer_pool = BufferPool(buffer_pool_size)
        #: Optional :class:`~repro.engine.process_pool.ProcessBackend`.
        #: When attached (by a ``Session(process_workers=…)`` or
        #: :meth:`execute_batch`'s ``process_workers``), batch members
        #: and tiled builds fan out to worker processes; ``None`` (the
        #: default) keeps every execution in-process.
        self._process_backend = None

    # ------------------------------------------------------------------
    # Process backend plumbing
    # ------------------------------------------------------------------
    @property
    def process_backend(self):
        return self._process_backend

    def attach_process_backend(self, backend) -> None:
        """Route batch members and tiled builds through *backend*.

        The backend is caller-owned (the session that published the
        shared plane closes it); attaching only changes *where* work
        executes — planning, cache-aware pricing, and report
        bookkeeping stay on this engine, which is what keeps process
        runs bit-identical to serial ones.
        """
        self._process_backend = backend

    def detach_process_backend(self) -> None:
        self._process_backend = None

    def _ensure_own_backend(self, workers: int):
        """Engine-owned backend for direct ``execute_batch`` callers.

        No shared plane (the engine has no registry): member kwargs
        ship whole by pickle — correct, just without the zero-copy
        fast path a Session-published plane provides.
        """
        from repro.engine.process_pool import ProcessBackend

        backend = self._process_backend
        if backend is not None and not backend.closed:
            if backend.workers != workers:
                raise ValueError(
                    f"a process backend with {backend.workers} worker(s) "
                    f"is already attached; detach it before asking for "
                    f"{workers}"
                )
            return backend
        backend = ProcessBackend(
            workers,
            settings={
                "cost_model": self.cost_model,
                "cache_capacity": self.cache.capacity,
                "cache_max_bytes": self.cache.max_bytes,
            },
        )
        self._process_backend = backend
        return backend

    def close_process_backend(self) -> None:
        """Close and detach the engine's backend (if any)."""
        backend = self._process_backend
        self._process_backend = None
        if backend is not None:
            backend.close()

    def _member_affinity(
        self, kind: str, kwargs: dict, recipe_key: tuple | None
    ) -> int:
        """Stable slot-routing digest for one batch member.

        A function of the member's cache determinants (constraint
        recipe, polygon set, circle, OD pair, site array), so members
        that would share canvas-cache entries land on the same worker
        and warm the same worker-private cache — the routing that keeps
        process hit/miss splits identical to serial's shared cache.
        """
        if recipe_key is not None:
            basis = ("recipe", recipe_key)
        elif kind == "aggregation" and "polygons" in kwargs:
            basis = ("agg", geometries_digest(list(kwargs["polygons"])))
        elif kind == "distance" and "center" in kwargs:
            basis = (
                "dist", repr(kwargs.get("center")),
                repr(kwargs.get("radius")),
            )
        elif kind == "od":
            basis = ("od", repr(kwargs.get("q1")), repr(kwargs.get("q2")))
        else:
            basis = (kind,)
        digest = hashlib.blake2b(
            repr(basis).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def _dispatch_member(
        self, backend, kind: str, kwargs: dict, affinity: int
    ):
        """Ship one described member to its affinity slot.

        Dataset arrays the backend's plane exported travel as
        shared-memory references (attached zero-copy worker-side); a
        coordinator Deadline is converted to its remaining budget and
        rebuilt fresh in the worker so checkpoints keep working.
        """
        from repro.api.shm import encode_payload
        from repro.engine.process_worker import run_member_task

        kwargs = dict(kwargs)
        deadline = kwargs.pop("deadline", None)
        payload = {
            "generation": backend.generation,
            "kind": kind,
            "kwargs": encode_payload(kwargs, backend.plane),
        }
        if deadline is not None:
            check_deadline(deadline, "process-dispatch")
            payload["deadline_budget_s"] = max(
                deadline.remaining_s(), 1e-4
            )
        return backend.dispatch(affinity, run_member_task, payload)

    def run_member_process(self, kind: str, kwargs: dict, backend):
        """Run one described member on the process backend.

        The session's single-spec path for batchable families.  The
        cache-aware ``constraint_cached`` pricing flag is resolved
        here from the backend's warm-key map (the process analogue of
        ``key in self.cache``), and a blended selection's key is noted
        back so later predictions replay serial cache state.
        """
        kwargs = dict(kwargs)
        key = None
        if kind == "selection" and "window" in kwargs:
            key = self._constraint_key(
                list(kwargs["polygons"]),
                kwargs["window"],
                kwargs.get("resolution", 1024),
                kwargs.get("device", DEFAULT_DEVICE),
            )
            if (
                kwargs.get("constraint_cached") is None
                and kwargs.get("constraint_canvas") is None
            ):
                kwargs["constraint_cached"] = key in backend.warm_keys
        call = self._dispatch_member(
            backend, kind, kwargs,
            self._member_affinity(kind, kwargs, key),
        )
        outcome = call.result()
        self.record_report(outcome.report)
        if (
            key is not None
            and outcome.report.plan == SELECTION_BLENDED
            and kwargs.get("constraint_canvas") is None
        ):
            backend.note_warm(key, call.worker)
        return outcome

    def _process_scatter_runner(self, deadline: Deadline | None):
        """Rasterjoin stage-1 scatter sharded across the worker fleet.

        ``None`` without a multi-worker backend.  The runner itself
        returns ``None`` (declining, local scatter runs) on any worker
        trouble — sharding is an optimization seam, not a correctness
        one — but lets the deadline family propagate.
        """
        backend = self._process_backend
        if backend is None or backend.workers < 2:
            return None

        def runner(flat, weights, n_cells):
            from repro.engine.process_worker import scatter_shard_task

            shards = backend.workers
            if n_cells < shards or len(flat) == 0:
                return None
            bounds = [
                n_cells * s // shards for s in range(shards + 1)
            ]
            try:
                check_deadline(deadline, "scatter-dispatch")
                calls = []
                for s in range(shards):
                    lo, hi = bounds[s], bounds[s + 1]
                    mask = (flat >= lo) & (flat < hi)
                    payload = {
                        "generation": backend.generation,
                        "flat": flat[mask],
                        "weights": (
                            weights[mask] if weights is not None else None
                        ),
                        "lo": lo,
                        "hi": hi,
                    }
                    calls.append(backend.dispatch_to(
                        s, scatter_shard_task, payload
                    ))
                parts = [call.result() for call in calls]
            except DeadlineExceeded:
                raise
            except Exception:  # noqa: BLE001 — decline, scatter locally
                return None
            counts = np.concatenate([p["counts"] for p in parts])
            sums = (
                np.concatenate([p["sums"] for p in parts])
                if weights is not None
                else None
            )
            return counts, sums

        return runner

    def _thread_report_state(self) -> tuple[deque, int]:
        """(bounded report deque, monotonic count) of the calling thread."""
        local = self._report_local
        if not hasattr(local, "reports"):
            local.reports = deque(maxlen=self._history)
            local.count = 0
        return local.reports, local.count

    def thread_report_count(self) -> int:
        """Reports the calling thread has recorded on this engine."""
        return self._thread_report_state()[1]

    def thread_reports(self) -> deque:
        """The calling thread's bounded report history (own stream only)."""
        return self._thread_report_state()[0]

    def record_report(self, report: ExecutionReport) -> None:
        """Append to the bounded report history, keeping the true count.

        Thread-safe: the global deque/tally mutate under a lock, and
        the report is mirrored into the calling thread's own stream for
        cross-thread-pollution-free attribution.
        """
        with self._report_lock:
            self.reports.append(report)
            self.report_count += 1
        local_reports, _ = self._thread_report_state()
        local_reports.append(report)
        self._report_local.count += 1

    def _context(self, deadline: Deadline | None = None) -> EvalContext:
        """A fresh ownership ledger sharing the engine's buffer pool.

        *deadline* rides along on the context so every buffer
        acquisition inside the evaluation doubles as a cooperative
        checkpoint."""
        return EvalContext(self.buffer_pool, deadline)

    @property
    def cost_model(self) -> CostModel:
        return self.planner.cost_model

    @property
    def last_report(self) -> ExecutionReport | None:
        with self._report_lock:
            return self.reports[-1] if self.reports else None

    # ------------------------------------------------------------------
    # Cached canvas construction (the GPU-facing seam)
    # ------------------------------------------------------------------
    def constraint_canvas(
        self,
        polygons: Sequence[Polygon],
        window: BoundingBox,
        resolution: Resolution,
        device: Device = DEFAULT_DEVICE,
    ) -> Canvas:
        """``B*[⊕]`` over the constraint canvases, memoized.

        Each polygon is rendered with count accumulation so the blended
        canvas's area slot carries the per-pixel coverage count used by
        the masks ``Mp'`` (>= 1) and its conjunctive variant (== n).
        """
        # Deferred import: the shared builder lives in the query layer.
        from repro.queries.common import build_constraint_canvas

        polys = list(polygons)
        key = (
            "constraint-blend",
            geometries_digest(polys),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: build_constraint_canvas(polys, window, resolution, device),
        )

    def polygon_canvas(
        self,
        polygon: Polygon,
        window: BoundingBox,
        resolution: Resolution,
        record_id: int = 1,
        device: Device = DEFAULT_DEVICE,
    ) -> Canvas:
        """Single-polygon query canvas (``CQ`` / one member of ``CY``), memoized."""
        key = (
            "polygon",
            geometry_digest(polygon),
            int(record_id),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: Canvas.from_polygon(
                polygon, window, resolution, record_id=record_id, device=device
            ),
        )

    def rasterjoin_coverage(
        self,
        polygon: Polygon,
        window: BoundingBox,
        resolution: Resolution,
        device: Device = DEFAULT_DEVICE,
    ):
        """Clipped coverage footprint of one rasterjoin constraint, memoized.

        This is the canvas-provider seam of the rasterjoin plan: the
        scatter-gather execution only consumes each constraint's
        covered-cell set, so the cache stores that sparse footprint
        (a few KB) instead of an 80 MB dense canvas.  The key omits the
        record id — the footprint is id-independent, so re-running the
        join with a different group labelling still hits.
        """
        from repro.core.rasterjoin import polygon_coverage_cells

        key = (
            "rasterjoin-coverage",
            geometry_digest(polygon),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: polygon_coverage_cells(polygon, window, resolution, device),
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _report(
        self,
        query: str,
        choice,
        tree_text: str | None,
        counters_before: tuple[int, int],
        timings: tuple[float, float, float],
        ctx: EvalContext | None = None,
        tile_stats: tuple[int, int, int] | None = None,
    ) -> ExecutionReport:
        """Assemble, record and return one execution's report.

        *tile_stats* is the tiled plans' ``(tiles, hits, misses)``
        triple; tile lookups also count into the overall cache delta
        (they are cache traffic), the triple is the per-tile split.
        """
        after_hits, after_misses = self.cache.thread_counters()
        t0, t1, t2 = timings
        counters = ctx.take_counters() if ctx is not None else EvalCounters()
        tiles, tile_hits, tile_misses = tile_stats or (0, 0, 0)
        report = ExecutionReport(
            query=query,
            plan=choice.chosen.name,
            estimated_cost=choice.chosen.cost,
            candidates=choice.candidates,
            forced=choice.forced,
            cache_hits=after_hits - counters_before[0],
            cache_misses=after_misses - counters_before[1],
            planning_s=t1 - t0,
            execution_s=t2 - t1,
            plan_tree=tree_text,
            copies=counters.full_copies,
            allocations=counters.allocations,
            pool_reuses=counters.pool_reuses,
            inplace_ops=counters.inplace_ops,
            tiles=tiles,
            tile_hits=tile_hits,
            tile_misses=tile_misses,
        )
        self.record_report(report)
        return report

    # ------------------------------------------------------------------
    # Tiled execution plumbing (PR 6)
    # ------------------------------------------------------------------
    def _count_warm_tiles(
        self,
        grid: TileGrid,
        recipe,
        digest: str,
        device: Device,
    ) -> int:
        """How many of *grid*'s tiles for one recipe are already cached.

        A pre-planning probe (``in`` is lock-guarded but counter-free),
        so the cost model can price the tiled candidate's cold
        fraction without perturbing hit/miss statistics.
        """
        return sum(
            1 for tile in grid.tiles()
            if tile_key(recipe, digest, tile, grid, device) in self.cache
        )

    def _polygon_tile_lookup(
        self,
        recipe,
        digest: str,
        entries: list,
        memo: CoverageMemo,
        grid: TileGrid,
        device: Device,
        accumulate_count: bool = False,
        deadline: Deadline | None = None,
    ):
        """``tile -> TileCanvas | None`` closure over the tile cache.

        Tiles outside every entry's conservative pixel bbox are
        provably blank — the gather skips them without a cache entry
        (``None`` fetches null, exactly what a blank frame pixel
        gathers).  The skip is a function of the recipe digest alone,
        so it is deterministic across queries sharing the key.

        Each lookup is a deadline checkpoint: tiled plans abort within
        one tile of their budget.

        With a process backend attached, the cold tiles fan out to the
        workers up front and land here through the same single-flight
        ``get_or_build`` seam a local build would use — hit/miss
        accounting and stitch order are untouched, only the builder's
        CPU moves.
        """
        def hits(tile) -> bool:
            return any(
                bbox_intersects_tile(memo.bbox(slot, poly), tile)
                for slot, _, poly, _ in entries
            )

        prefetched: dict = {}
        if self._process_backend is not None:
            from repro.api.shm import encode_payload

            backend = self._process_backend
            cold = [
                tile for tile in grid.tiles()
                if hits(tile)
                and tile_key(recipe, digest, tile, grid, device)
                not in self.cache
            ]
            prefetched = self._prefetch_tiles(
                backend, cold,
                {
                    "kind": "polygon",
                    "entries": encode_payload(
                        list(entries), backend.plane
                    ),
                    "grid": grid,
                    "device": device,
                    "accumulate_count": accumulate_count,
                },
                deadline,
            )

        def lookup(tile):
            check_deadline(deadline, "tile-build")
            if not hits(tile):
                return None
            key = tile_key(recipe, digest, tile, grid, device)
            built = prefetched.pop((tile.r0, tile.c0), None)
            if built is not None:
                return self.cache.get_or_build(key, lambda: built)
            return self.cache.get_or_build(
                key,
                lambda: build_polygon_tile(
                    tile, entries, memo, accumulate_count
                ),
            )
        return lookup

    def _prefetch_tiles(
        self,
        backend,
        cold_tiles: list,
        base_payload: dict,
        deadline: Deadline | None,
    ) -> dict:
        """Fan a tiled plan's cold builds out to the worker fleet.

        Returns ``{(r0, c0): built_tile}`` for whatever the workers
        delivered; anything missing (a dead worker, a stale plane, an
        injected worker fault) silently falls back to a local build —
        the builders are pure, so the fallback is bit-identical.  Only
        the deadline family propagates: an expired budget must abort
        the request whether its tiles were local or remote.
        """
        if not cold_tiles or len(cold_tiles) < 2:
            return {}
        check_deadline(deadline, "tile-prefetch")
        from repro.engine.process_worker import build_tiles_task

        shards = min(backend.workers, len(cold_tiles))
        chunks = [cold_tiles[s::shards] for s in range(shards)]
        calls = []
        try:
            for slot, chunk in enumerate(chunks):
                payload = dict(base_payload)
                payload["tiles"] = chunk
                payload["generation"] = backend.generation
                calls.append(
                    (chunk, backend.dispatch_to(
                        slot, build_tiles_task, payload
                    ))
                )
        except Exception:  # noqa: BLE001 — prefetch is best-effort
            return {}
        out: dict = {}
        for chunk, call in calls:
            try:
                built = call.result()
            except DeadlineExceeded:
                raise
            except Exception:  # noqa: BLE001 — fall back to local builds
                continue
            for tile, value in zip(chunk, built):
                out[(tile.r0, tile.c0)] = value
        return out

    def _constraint_key(
        self,
        polys: list[Polygon],
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
    ) -> tuple:
        """Cache key of the blended constraint canvas for *polys*."""
        return (
            "constraint-blend",
            geometries_digest(polys),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )

    def select_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polygons: Sequence[Polygon],
        *,
        ids: np.ndarray | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        mode: str = "any",
        exact: bool = True,
        constraint_canvas: Canvas | None = None,
        force_plan: str | None = None,
        constraint_cached: bool | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> SelectionOutcome:
        """Plan and run a multi-constraint point selection.

        *constraint_cached* overrides the planner's knowledge of
        whether the blended constraint canvas is already materialized;
        ``None`` auto-detects from the engine's canvas cache (a warm
        cache drops the blended plan's raster cost, which can flip the
        choice away from the PIP plan on repeat queries).

        *tiling* runs the blended plan tile-sharded on a K×K lattice
        with per-tile cache entries — bit-identical results, but a
        panned window re-rasterizes only its cold tiles.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        polys = list(polygons)
        if not polys:
            raise ValueError("at least one constraint polygon is required")
        resolution_hw = _resolve_resolution(window, resolution)

        if len(xs) == 0:
            return self._empty_selection("selection: empty input")
        if constraint_cached is None:
            constraint_cached = (
                self._constraint_key(polys, window, resolution, device)
                in self.cache
            )

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = grid.n_tiles
            warm = self._count_warm_tiles(
                grid, "constraint", geometries_digest(polys), device
            )
        choice = self.planner.plan_selection(
            len(xs), polys, resolution_hw, exact=exact,
            prebuilt_canvas=constraint_canvas is not None,
            force=force_plan, window=window,
            constraint_cached=constraint_cached or constraint_canvas is not None,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == SELECTION_PIP:
            result = self._run_selection_pip(
                xs, ys, polys, ids, window, resolution_hw, mode, deadline
            )
            tree_text = (
                "PIP kernel: crossing-count per (point, polygon) pair "
                f"({len(polys)} polygons)"
            )
        elif choice.chosen.name == SELECTION_BLENDED_TILED:
            assert grid is not None
            result, tree_text, tile_stats = self._run_selection_blended_tiled(
                xs, ys, polys, ids, grid, device, mode, exact, ctx
            )
        else:
            result, tree = self._run_selection_blended(
                xs, ys, polys, ids, window, resolution, device, mode, exact,
                constraint_canvas, ctx,
            )
            tree_text = render_plan(tree)
        t2 = time.perf_counter()

        report = self._report(
            "selection", choice, tree_text, before, (t0, t1, t2), ctx,
            tile_stats=tile_stats,
        )
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out,
            n_candidates=n_candidates,
            n_exact_tests=n_tests,
            samples=samples,
            report=report,
        )

    def _run_selection_blended(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        mode: str,
        exact: bool,
        prebuilt: Canvas | None,
        ctx: EvalContext | None = None,
    ):
        """``M[Mp'](B[⊙](CP, B*[⊕](CQ)))`` as an expression tree."""
        point_set = CanvasSet.from_points(xs, ys, ids=ids)
        cp = InputNode(point_set, name="CP")
        if prebuilt is not None:
            cq: InputNode | UtilityNode = InputNode(prebuilt, name="B*[⊕](CQ)")
        else:
            cq = UtilityNode(
                "B*[⊕]",
                factory=lambda: self.constraint_canvas(
                    polys, window, resolution, device
                ),
                params=f"CQ1..CQ{len(polys)}",
            )
        predicate = (
            mask_point_in_any_polygon(1.0)
            if mode == "any"
            else mask_point_in_all_polygons(float(len(polys)))
        )
        tree = cp.blend(cq, PIP_MERGE).mask(predicate)
        masked = tree.evaluate(ctx)
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = 0
        if exact:
            min_containing = 1 if mode == "any" else len(polys)
            masked, n_tests = refine_point_samples(
                masked, polys, min_containing=min_containing
            )
        return (unique_ids(masked.keys), n_candidates, n_tests, masked), tree

    def _run_selection_blended_tiled(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: np.ndarray | None,
        grid: TileGrid,
        device: Device,
        mode: str,
        exact: bool,
        ctx: EvalContext | None = None,
    ):
        """Tile-sharded blended selection over a K×K lattice.

        Same algebra as :meth:`_run_selection_blended`, but the
        constraint raster is built per lattice tile under tile-granular
        cache keys and the gather reads each point's S^3 triple straight
        from its owning tile — bit-identical to the whole-frame blend,
        while a panned/zoomed window re-rasterizes only its cold tiles.
        """
        point_set = CanvasSet.from_points(xs, ys, ids=ids)
        cp = InputNode(point_set, name="CP")
        digest = geometries_digest(polys)
        memo = CoverageMemo(grid.window, grid.height, grid.width, device)
        entries = [(i, i, poly, 0.0) for i, poly in enumerate(polys, start=1)]
        lookup = self._polygon_tile_lookup(
            "constraint", digest, entries, memo, grid, device,
            accumulate_count=True,
            deadline=ctx.deadline if ctx is not None else None,
        )
        provided = {i: poly for i, poly in enumerate(polys, start=1)}
        label = (
            f"TiledGather[⊙ {grid.n_tile_rows}x{grid.n_tile_cols}]"
            f"(CP, B*[⊕](CQ1..CQ{len(polys)}))"
        )

        def gather(left):
            return algebra.blend_tiled(
                left, grid, lookup, PIP_MERGE, geometries=provided
            )

        predicate = (
            mask_point_in_any_polygon(1.0)
            if mode == "any"
            else mask_point_in_all_polygons(float(len(polys)))
        )
        tree = TiledGatherNode(cp, gather, label).mask(predicate)
        before = self.cache.thread_counters()
        masked = tree.evaluate(ctx)
        after = self.cache.thread_counters()
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = 0
        if exact:
            min_containing = 1 if mode == "any" else len(polys)
            masked, n_tests = refine_point_samples(
                masked, polys, min_containing=min_containing
            )
        tile_stats = (
            grid.n_tiles, after[0] - before[0], after[1] - before[1]
        )
        return (
            (unique_ids(masked.keys), n_candidates, n_tests, masked),
            render_plan(tree),
            tile_stats,
        )

    def _run_selection_pip(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution_hw: tuple[int, int],
        mode: str,
        deadline: Deadline | None = None,
    ):
        """Exact per-polygon PIP testing (the traditional plan).

        Points outside the query window are dropped first, matching the
        raster plan's gather semantics (out-of-window samples blend to
        null); the crossing-count test then runs per polygon.  The
        surviving samples carry the same constraint-side S^3 triple the
        blended plan would have gathered — ``s[2] = (id of the last
        covering constraint, coverage count, 0)`` — so downstream
        composition (group-by containing polygon, OD-style transforms)
        is plan-independent.
        """
        height, width = resolution_hw
        dx = window.width / width
        dy = window.height / height
        cols = np.floor((xs - window.xmin) / dx).astype(np.int64)
        rows = np.floor((ys - window.ymin) / dy).astype(np.int64)
        in_frame = (
            (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
        )
        keys = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(len(xs), dtype=np.int64)
        )
        fx, fy = xs[in_frame], ys[in_frame]
        counts = np.zeros(len(fx), dtype=np.int64)
        last_id = np.zeros(len(fx), dtype=np.float64)
        # deadline-seam: polygon-sweep
        for i, poly in enumerate(polys, start=1):
            check_deadline(deadline, "polygon-sweep")
            inside = points_in_polygon(fx, fy, poly)
            counts += inside
            # Constraint canvases draw in order with ids 1..n, so the
            # last covering polygon owns the pixel's id channel.
            last_id[inside] = float(i)
        need = 1 if mode == "any" else len(polys)
        hit = counts >= need
        sel_keys = keys[in_frame][hit]
        samples = CanvasSet.from_points(fx[hit], fy[hit], ids=sel_keys)
        samples.data[:, channel(DIM_AREA, FIELD_ID)] = last_id[hit]
        samples.data[:, channel(DIM_AREA, FIELD_COUNT)] = counts[hit]
        samples.valid[:, DIM_AREA] = True
        n_tests = int(in_frame.sum()) * len(polys)
        return unique_ids(sel_keys), int(hit.sum()), n_tests, samples

    def _empty_selection(self, label: str) -> SelectionOutcome:
        report = ExecutionReport(
            query=label, plan="empty-input", estimated_cost=0.0,
            candidates=(), forced="no input points", cache_hits=0,
            cache_misses=0, planning_s=0.0, execution_s=0.0, plan_tree=None,
        )
        self.record_report(report)
        return SelectionOutcome(
            ids=np.empty(0, dtype=np.int64), n_candidates=0, n_exact_tests=0,
            samples=CanvasSet.empty(), report=report,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polygons: Sequence[Polygon],
        *,
        values: np.ndarray | None = None,
        aggregate: str = "count",
        polygon_ids: Sequence[int] | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        exact: bool = True,
        force_plan: str | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> AggregationOutcome:
        """Plan and run a group-by-over-join aggregation."""
        if aggregate not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        polys = list(polygons)
        # Validate ids up front so the outcome cannot depend on which
        # physical plan the cost model picks (rasterjoin would reject
        # duplicates, join-then-aggregate would silently merge groups).
        from repro.core.rasterjoin import _validated_ids

        ids = _validated_ids(polys, polygon_ids)
        resolution_hw = _resolve_resolution(window, resolution)

        if not polys or len(xs) == 0:
            groups, out_values = aggregate_samples(
                CanvasSet.empty(), ids, aggregate
            )
            report = ExecutionReport(
                query="join-aggregate: empty input", plan="empty-input",
                estimated_cost=0.0, candidates=(), forced="no input",
                cache_hits=0, cache_misses=0, planning_s=0.0,
                execution_s=0.0, plan_tree=None,
            )
            self.record_report(report)
            return AggregationOutcome(groups, out_values, aggregate, report)

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = grid.n_tiles * len(polys)
            warm = sum(
                self._count_warm_tiles(
                    grid, ("polygon", pid), geometry_digest(poly), device
                )
                for poly, pid in zip(polys, ids)
            )
        choice = self.planner.plan_aggregation(
            len(xs), polys, resolution_hw, exact=exact, aggregate=aggregate,
            force=force_plan, window=window,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == AGG_RASTERJOIN:
            # Deferred import: rasterjoin sits above the query layer.
            from repro.core.rasterjoin import raster_join_aggregate

            def coverage_provider(poly, pid):
                # One checkpoint per constraint — the rasterjoin's
                # natural polygon-sweep granularity.
                check_deadline(deadline, "polygon-sweep")
                return self.rasterjoin_coverage(
                    poly, window, resolution, device
                )

            result = raster_join_aggregate(
                xs, ys, polys, values=values, aggregate=aggregate,
                polygon_ids=ids, window=window, resolution=resolution,
                device=device,
                coverage_provider=coverage_provider,
                scatter_runner=self._process_scatter_runner(deadline),
            )
            groups, out_values = result.groups, result.values
            tree_text = (
                "B*[+](D*[γc](M[Mp](B[⊙](B*[+](CP), CY)))) — "
                f"scatter-gather RasterJoin over {len(polys)} polygons "
                "(constraint coverage served by the canvas cache)"
            )
        elif choice.chosen.name == AGG_JOIN_THEN_AGG_TILED:
            assert grid is not None
            groups, out_values, tree_text, tile_stats = (
                self._run_join_then_aggregate_tiled(
                    xs, ys, polys, ids, values, aggregate, grid, device,
                    exact, ctx,
                )
            )
        else:
            groups, out_values, tree_text = self._run_join_then_aggregate(
                xs, ys, polys, ids, values, aggregate, window, resolution,
                device, exact, ctx,
            )
        t2 = time.perf_counter()

        report = self._report(
            "join-aggregate", choice, tree_text, before, (t0, t1, t2), ctx,
            tile_stats=tile_stats,
        )
        return AggregationOutcome(groups, out_values, aggregate, report)

    def _run_join_then_aggregate(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: list[int],
        values: np.ndarray | None,
        aggregate: str,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        exact: bool,
        ctx: EvalContext | None = None,
    ):
        """``B*[+](G[γc](M[Mp](B[⊙](CP, CY))))`` per polygon, then merge.

        The per-polygon gather is *bbox-prefiltered*: only points
        inside the polygon's clipped pixel bounding box (padded to
        cover the conservative boundary ribbon) enter the blend — a
        point outside the box can never gather the polygon's coverage,
        so dropping it first is exact and compounds with the clipped
        rasterization (the gather now scales with ``Σ points-in-bbox``
        instead of ``P * N``).
        """
        height, width = _resolve_resolution(window, resolution)
        rows, cols, inside = world_points_to_cells(
            xs, ys, window, height, width
        )
        point_set = CanvasSet.from_points(xs, ys, values=values)
        collected: CanvasSet | None = None
        branch_tree = None
        # deadline-seam: polygon-sweep
        for poly, pid in zip(polys, ids):
            check_deadline(
                ctx.deadline if ctx is not None else None, "polygon-sweep"
            )
            bbox = clipped_pixel_bbox(poly, window, height, width)
            if bbox is None:
                continue  # constraint misses the frame: no samples
            r0, r1, c0, c1 = bbox
            in_bbox = (
                inside
                & (rows >= r0) & (rows <= r1)
                & (cols >= c0) & (cols <= c1)
            )
            if not in_bbox.any():
                continue
            subset = point_set.filter_rows(in_bbox)
            cp = InputNode(subset, name=f"CP∩bbox(id={pid})")
            cq = UtilityNode(
                "CY",
                factory=lambda p=poly, r=pid: self.polygon_canvas(
                    p, window, resolution, record_id=r, device=device
                ),
                params=f"id={pid}",
            )
            tree = cp.blend(cq, PIP_MERGE).mask(mask_point_in_any_polygon(1.0))
            branch_tree = tree
            masked = tree.evaluate(ctx)
            assert isinstance(masked, CanvasSet)
            if exact:
                masked, _ = refine_point_samples(masked, [poly])
            collected = masked if collected is None else collected.concat(masked)

        groups, out_values = aggregate_samples(
            collected if collected is not None else CanvasSet.empty(),
            ids, aggregate,
        )
        tree_text = ""
        if branch_tree is not None:
            tree_text = (
                f"B*[+] ∘ G[γc] over {len(polys)} bbox-prefiltered "
                "branches of:\n"
                + render_plan(branch_tree)
            )
        return groups, out_values, tree_text

    def _run_join_then_aggregate_tiled(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: list[int],
        values: np.ndarray | None,
        aggregate: str,
        grid: TileGrid,
        device: Device,
        exact: bool,
        ctx: EvalContext | None = None,
    ):
        """Tile-sharded join-then-aggregate: per-polygon tiled gathers.

        Each polygon branch keeps the untiled plan's bbox prefilter and
        exact refinement, but its constraint raster is served per
        lattice tile under ``("polygon", pid)`` cache keys — a repeated
        join over a panned window rebuilds only the tiles the pan
        exposed.
        """
        rows, cols, inside = world_points_to_cells(
            xs, ys, grid.window, grid.height, grid.width
        )
        point_set = CanvasSet.from_points(xs, ys, values=values)
        memo = CoverageMemo(grid.window, grid.height, grid.width, device)
        collected: CanvasSet | None = None
        branch_text = None
        before = self.cache.thread_counters()
        # deadline-seam: polygon-sweep
        for poly, pid in zip(polys, ids):
            check_deadline(
                ctx.deadline if ctx is not None else None, "polygon-sweep"
            )
            bbox = clipped_pixel_bbox(poly, grid.window, grid.height,
                                      grid.width)
            if bbox is None:
                continue  # constraint misses the frame: no samples
            r0, r1, c0, c1 = bbox
            in_bbox = (
                inside
                & (rows >= r0) & (rows <= r1)
                & (cols >= c0) & (cols <= c1)
            )
            if not in_bbox.any():
                continue
            subset = point_set.filter_rows(in_bbox)
            cp = InputNode(subset, name=f"CP∩bbox(id={pid})")
            lookup = self._polygon_tile_lookup(
                ("polygon", pid), geometry_digest(poly),
                [(pid, pid, poly, 0.0)], memo, grid, device,
                deadline=ctx.deadline if ctx is not None else None,
            )

            def gather(left, lk=lookup, p=poly, r=pid):
                return algebra.blend_tiled(
                    left, grid, lk, PIP_MERGE, geometries={r: p}
                )

            label = (
                f"TiledGather[⊙ {grid.n_tile_rows}x{grid.n_tile_cols}]"
                f"(CP∩bbox, CY id={pid})"
            )
            tree = TiledGatherNode(cp, gather, label).mask(
                mask_point_in_any_polygon(1.0)
            )
            branch_text = render_plan(tree)
            masked = tree.evaluate(ctx)
            assert isinstance(masked, CanvasSet)
            if exact:
                masked, _ = refine_point_samples(masked, [poly])
            collected = masked if collected is None else collected.concat(masked)
        after = self.cache.thread_counters()

        groups, out_values = aggregate_samples(
            collected if collected is not None else CanvasSet.empty(),
            ids, aggregate,
        )
        tree_text = ""
        if branch_text is not None:
            tree_text = (
                f"B*[+] ∘ G[γc] over {len(polys)} bbox-prefiltered "
                "tiled branches of:\n"
                + branch_text
            )
        tile_stats = (
            grid.n_tiles * len(polys),
            after[0] - before[0],
            after[1] - before[1],
        )
        return groups, out_values, tree_text, tile_stats

    # ------------------------------------------------------------------
    # Distance selection (Section 4.1, the Circ utility constraint)
    # ------------------------------------------------------------------
    def select_distance(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        center: tuple[float, float],
        radius: float,
        *,
        ids: np.ndarray | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        exact: bool = True,
        force_plan: str | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> SelectionOutcome:
        """Plan and run a within-radius point selection."""
        if radius <= 0:
            # Early, plan-independent: the direct kernel would silently
            # return nothing while the canvas plan would raise deep in
            # Canvas.circle.
            raise ValueError("distance-selection radius must be positive")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if len(xs) == 0:
            return self._empty_selection("distance-selection: empty input")
        resolution_hw = _resolve_resolution(window, resolution)

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = grid.n_tiles
            warm = self._count_warm_tiles(
                grid, "circle", circle_digest(center, radius), device
            )
        choice = self.planner.plan_distance(
            len(xs), radius, resolution_hw, exact=exact, force=force_plan,
            window=window,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == DISTANCE_CANVAS:
            result, tree_text = self._run_distance_canvas(
                xs, ys, center, radius, ids, window, resolution, device,
                exact, ctx,
            )
        elif choice.chosen.name == DISTANCE_CANVAS_TILED:
            assert grid is not None
            result, tree_text, tile_stats = self._run_distance_canvas_tiled(
                xs, ys, center, radius, ids, grid, device, exact, ctx
            )
        else:
            result = self._run_distance_direct(
                xs, ys, center, radius, ids, window, resolution_hw
            )
            tree_text = "direct kernel: exact distance compare per point"
        t2 = time.perf_counter()

        report = self._report(
            "distance-selection", choice, tree_text, before, (t0, t1, t2), ctx,
            tile_stats=tile_stats,
        )
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out, n_candidates=n_candidates, n_exact_tests=n_tests,
            samples=samples, report=report,
        )

    def _run_distance_canvas(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        center: tuple[float, float],
        radius: float,
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """``M[Mp'](B[⊙](CP, Circ[(x, y), d]()))`` with boundary refinement.

        Radius probes never repeat a circle (kNN bisects fresh radii),
        so the circle canvas is never cached; under an ownership
        context it rasterizes *into a recycled pooled frame*
        (``Canvas.circle(out=...)``): the blend consumes the owned disk
        and releases its buffer, so a kNN bisection run pays one
        allocation on the first probe and a pool reuse per probe after
        that — visible in the report's buffer counters.
        """
        if ctx is not None:
            # acquire_frame marks the buffer owned and counts the
            # reuse/allocation itself, so the node must not re-count.
            factory = lambda: Canvas.circle(  # noqa: E731
                center, radius, window, resolution, 1, device,
                out=ctx.acquire_frame(window, resolution, device),
            )
            owned = False
        else:
            factory = lambda: Canvas.circle(  # noqa: E731
                center, radius, window, resolution, 1, device
            )
            owned = True
        circ = UtilityNode(
            "Circ",
            factory=factory,
            params=f"({center[0]:g}, {center[1]:g}), d={radius:g}",
            owned=owned,
        )
        point_set = CanvasSet.from_points(xs, ys, ids=ids)
        tree = InputNode(point_set, name="CP").blend(circ, PIP_MERGE).mask(
            mask_point_in_any_polygon(1.0)
        )
        masked = tree.evaluate(ctx)
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = 0
        if exact:
            on_boundary = masked.boundary
            n_tests = int(on_boundary.sum())
            if n_tests:
                d = np.hypot(
                    masked.xs[on_boundary] - center[0],
                    masked.ys[on_boundary] - center[1],
                )
                keep = np.ones(masked.n_samples, dtype=bool)
                keep[np.nonzero(on_boundary)[0]] = d <= radius
                masked = masked.filter_rows(keep)
        return (
            (unique_ids(masked.keys), n_candidates, n_tests, masked),
            render_plan(tree),
        )

    def _run_distance_canvas_tiled(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        center: tuple[float, float],
        radius: float,
        ids: np.ndarray | None,
        grid: TileGrid,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """Tile-sharded ``Circ`` constraint with the same boundary
        refinement as :meth:`_run_distance_canvas`.

        Unlike kNN's one-shot radius probes, an interactive
        within-radius query *does* repeat (the same facility circle over
        a panned window), so here the disk raster is cached per lattice
        tile under a ``circle_digest`` key; tiles outside the disk's
        conservative pixel bbox stay un-built.
        """
        point_set = CanvasSet.from_points(xs, ys, ids=ids)
        cp = InputNode(point_set, name="CP")
        digest = circle_digest(center, radius)
        circle_bbox = circle_tile_bbox(center, radius, grid)

        prefetched: dict = {}
        if self._process_backend is not None and circle_bbox is not None:
            cold = [
                tile for tile in grid.tiles()
                if bbox_intersects_tile(circle_bbox, tile)
                and tile_key("circle", digest, tile, grid, device)
                not in self.cache
            ]
            prefetched = self._prefetch_tiles(
                self._process_backend, cold,
                {
                    "kind": "circle",
                    "center": center,
                    "radius": radius,
                    "grid": grid,
                },
                ctx.deadline if ctx is not None else None,
            )

        def lookup(tile):
            check_deadline(
                ctx.deadline if ctx is not None else None, "tile-build"
            )
            if circle_bbox is None or not bbox_intersects_tile(
                circle_bbox, tile
            ):
                return None
            key = tile_key("circle", digest, tile, grid, device)
            built = prefetched.pop((tile.r0, tile.c0), None)
            if built is not None:
                return self.cache.get_or_build(key, lambda: built)
            return self.cache.get_or_build(
                key,
                lambda: build_circle_tile(tile, center, radius, grid),
            )

        provided = {1: _circle_polygon(center[0], center[1], radius)}
        label = (
            f"TiledGather[⊙ {grid.n_tile_rows}x{grid.n_tile_cols}]"
            f"(CP, Circ[({center[0]:g}, {center[1]:g}), d={radius:g}])"
        )

        def gather(left):
            return algebra.blend_tiled(
                left, grid, lookup, PIP_MERGE, geometries=provided
            )

        tree = TiledGatherNode(cp, gather, label).mask(
            mask_point_in_any_polygon(1.0)
        )
        before = self.cache.thread_counters()
        masked = tree.evaluate(ctx)
        after = self.cache.thread_counters()
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = 0
        if exact:
            on_boundary = masked.boundary
            n_tests = int(on_boundary.sum())
            if n_tests:
                d = np.hypot(
                    masked.xs[on_boundary] - center[0],
                    masked.ys[on_boundary] - center[1],
                )
                keep = np.ones(masked.n_samples, dtype=bool)
                keep[np.nonzero(on_boundary)[0]] = d <= radius
                masked = masked.filter_rows(keep)
        tile_stats = (
            grid.n_tiles, after[0] - before[0], after[1] - before[1]
        )
        return (
            (unique_ids(masked.keys), n_candidates, n_tests, masked),
            render_plan(tree),
            tile_stats,
        )

    def _run_distance_direct(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        center: tuple[float, float],
        radius: float,
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution_hw: tuple[int, int],
    ):
        """One vectorized exact distance compare per in-frame point.

        Matches the raster plan's gather semantics (out-of-window
        samples blend to null, surviving samples carry the disk's
        constraint-side S^3 triple).
        """
        height, width = resolution_hw
        _, _, inside = world_points_to_cells(xs, ys, window, height, width)
        keys = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(len(xs), dtype=np.int64)
        )
        fx, fy, fkeys = xs[inside], ys[inside], keys[inside]
        d = np.hypot(fx - center[0], fy - center[1])
        hit = d <= radius
        samples = CanvasSet.from_points(fx[hit], fy[hit], ids=fkeys[hit])
        samples.data[:, channel(DIM_AREA, FIELD_ID)] = 1.0
        samples.data[:, channel(DIM_AREA, FIELD_COUNT)] = 1.0
        samples.valid[:, DIM_AREA] = True
        return (
            unique_ids(fkeys[hit]), int(hit.sum()), int(inside.sum()), samples
        )

    # ------------------------------------------------------------------
    # k nearest neighbors (Section 4.4)
    # ------------------------------------------------------------------
    def knn(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        query_point: tuple[float, float],
        k: int,
        *,
        ids: np.ndarray | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        max_iterations: int = 64,
        force_plan: str | None = None,
        deadline: Deadline | None = None,
    ) -> SelectionOutcome:
        """Plan and run a k-nearest-neighbor query (both plans exact)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if k < 1 or k > len(xs):
            raise ValueError("k must be between 1 and the number of points")
        resolution_hw = _resolve_resolution(window, resolution)

        t0 = time.perf_counter()
        choice = self.planner.plan_knn(
            len(xs), k, resolution_hw, force=force_plan, window=window
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)

        if choice.chosen.name == KNN_KDTREE:
            result = self._run_knn_kdtree(
                xs, ys, query_point, k, ids, window, resolution_hw
            )
            tree_text = (
                f"k-d tree probe: k={k} over {len(xs)} points "
                "(exact index refinement)"
            )
        else:
            result = self._run_knn_probes(
                xs, ys, query_point, k, ids, window, resolution, device,
                max_iterations, ctx,
            )
            tree_text = (
                f"bisected Circ[(x, y), r]() probes to the count-{k} "
                "radius, each probe a full distance selection"
            )
        t2 = time.perf_counter()

        report = self._report(
            "knn", choice, tree_text, before, (t0, t1, t2), ctx
        )
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out, n_candidates=n_candidates, n_exact_tests=n_tests,
            samples=samples, report=report,
        )

    def _run_knn_kdtree(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        query_point: tuple[float, float],
        k: int,
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution_hw: tuple[int, int],
    ):
        """Exact kNN through the k-d tree index (the oracle plan).

        Out-of-window points are dropped first, matching the canvas
        plan's gather semantics — both plans answer kNN over the
        in-frame points, so plan choice stays invisible in the output.
        """
        height, width = resolution_hw
        _, _, inside = world_points_to_cells(xs, ys, window, height, width)
        keys = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(len(xs), dtype=np.int64)
        )
        fx, fy, fkeys = xs[inside], ys[inside], keys[inside]
        tree = KDTree(np.stack([fx, fy], axis=1), items=fkeys.tolist())
        qx, qy = query_point
        found = tree.nearest(float(qx), float(qy), k=k)
        sel = np.asarray(sorted(int(item) for item, _ in found),
                         dtype=np.int64)
        member = np.isin(fkeys, sel)
        samples = CanvasSet.from_points(fx[member], fy[member],
                                        ids=fkeys[member])
        return sel, len(sel), tree.last_visited, samples

    def _run_knn_probes(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        query_point: tuple[float, float],
        k: int,
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        max_iterations: int,
        ctx: EvalContext | None,
    ):
        """Concentric-circle counting: bisect the radius whose disk
        holds exactly k points, falling back to an exact trim on ties
        (the paper's ϵ-perturbation)."""
        total_tests = 0

        def probe(radius: float):
            nonlocal total_tests
            check_deadline(
                ctx.deadline if ctx is not None else None, "knn-probe"
            )
            result, _ = self._run_distance_canvas(
                xs, ys, query_point, radius, ids, window, resolution,
                device, True, ctx,
            )
            total_tests += result[2]
            return result

        lo = 0.0
        # The largest query-point-to-corner distance bounds the distance
        # to every in-frame point, even when the query point lies far
        # outside the window (the window diagonal alone would not).
        qx, qy = query_point
        hi = max(
            math.hypot(cx - qx, cy - qy)
            for cx in (window.xmin, window.xmax)
            for cy in (window.ymin, window.ymax)
        )
        hi = max(hi, math.hypot(window.width, window.height))
        # Safety net: grow hi until at least k points are inside.
        iterations = 0
        while len(probe(hi)[0]) < k and iterations < 8:
            hi *= 2.0
            iterations += 1

        result_at_hi = None
        for _ in range(max_iterations):
            mid = (lo + hi) / 2.0
            result = probe(mid)
            n = len(result[0])
            if n == k:
                return (result[0], result[1], total_tests, result[3])
            if n < k:
                lo = mid
            else:
                hi = mid
                result_at_hi = result
        # Ties or resolution floor: trim the smallest enclosing probe by
        # exact distance.
        if result_at_hi is None:
            result_at_hi = probe(hi)
        sel = result_at_hi[3]
        d = np.hypot(sel.xs - query_point[0], sel.ys - query_point[1])
        order = np.argsort(d, kind="stable")[:k]
        trimmed = sel.filter_rows(np.isin(np.arange(sel.n_samples), order))
        total_tests += sel.n_samples
        return (
            unique_ids(trimmed.keys), result_at_hi[1], total_tests, trimmed
        )

    # ------------------------------------------------------------------
    # Voronoi (Section 4.5)
    # ------------------------------------------------------------------
    def voronoi(
        self,
        points: np.ndarray,
        window: BoundingBox,
        resolution: Resolution = 512,
        device: Device = DEFAULT_DEVICE,
        force_plan: str | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> VoronoiOutcome:
        """Plan and run ``ComputeVoronoi`` (bit-identical plans)."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array")
        resolution_hw = _resolve_resolution(window, resolution)
        if len(pts) == 0:
            report = ExecutionReport(
                query="voronoi: empty input", plan="empty-input",
                estimated_cost=0.0, candidates=(), forced="no sites",
                cache_hits=0, cache_misses=0, planning_s=0.0,
                execution_s=0.0, plan_tree=None,
            )
            self.record_report(report)
            return VoronoiOutcome(Canvas.empty(window, resolution, device),
                                  report)

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = grid.n_tiles
            warm = self._count_warm_tiles(
                grid, ("argmin", 8), array_digest(pts), device
            )
        choice = self.planner.plan_voronoi(
            len(pts), resolution_hw, force=force_plan,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == VORONOI_ITERATED:
            canvas, tree_text = self._run_voronoi_iterated(
                pts, window, resolution, device, ctx
            )
        elif choice.chosen.name == VORONOI_ARGMIN_TILED:
            assert grid is not None
            canvas, tree_text, tile_stats = self._run_voronoi_argmin_tiled(
                pts, grid, device, ctx
            )
        else:
            canvas, tree_text = self._run_voronoi_argmin(
                pts, window, resolution, device, ctx
            )
        t2 = time.perf_counter()

        report = self._report(
            "voronoi", choice, tree_text, before, (t0, t1, t2), ctx,
            tile_stats=tile_stats,
        )
        return VoronoiOutcome(canvas, report)

    @staticmethod
    def _voronoi_site_transform(site: int, px: float, py: float):
        """The paper's ``f``: claim pixels whose d² beats the stored one."""
        id_ch = channel(DIM_AREA, FIELD_ID)
        d2_ch = channel(DIM_AREA, FIELD_COUNT)

        def f(gx, gy, data, valid):
            d2 = (gx - px) ** 2 + (gy - py) ** 2
            out_data = data.copy()
            out_valid = valid.copy()
            was_null = ~valid[..., DIM_AREA]
            closer = d2 < data[..., d2_ch]
            claim = was_null | closer
            out_data[..., id_ch] = np.where(claim, float(site),
                                            data[..., id_ch])
            out_data[..., d2_ch] = np.where(claim, d2, data[..., d2_ch])
            out_valid[..., DIM_AREA] = True
            return out_data, out_valid

        return f

    def _run_voronoi_iterated(
        self,
        pts: np.ndarray,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        ctx: EvalContext | None,
    ):
        """One ``V[f]`` full-screen pass per site, in place on the owned
        accumulator (zero copies: the chain's only buffer is the frame)."""
        canvas = Canvas.empty(window, resolution, device)
        if ctx is not None:
            ctx.counters.allocations += 1
            ctx.mark_owned(canvas)
        # deadline-seam: voronoi-site
        for i in range(len(pts)):
            check_deadline(
                ctx.deadline if ctx is not None else None, "voronoi-site"
            )
            f = self._voronoi_site_transform(
                i, float(pts[i, 0]), float(pts[i, 1])
            )
            node = ValueTransformNode(
                f, InputNode(canvas, name="C", owned=True),
                name=f"f_site{i}",
            )
            result = node.evaluate(ctx) if ctx is not None else (
                algebra.value_transform(canvas, f, out=canvas)
            )
            assert isinstance(result, Canvas)
            canvas = result
        tree_text = (
            f"V[f_site0] ∘ ... ∘ V[f_site{len(pts) - 1}] "
            f"(n={len(pts)} full-screen passes, in place on the owned "
            "accumulator)"
        )
        return canvas, tree_text

    def _run_voronoi_argmin(
        self,
        pts: np.ndarray,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        ctx: EvalContext | None,
        block: int = 8,
    ):
        """Blocked argmin over site chunks — bit-identical to the
        iterated plan (same d² arithmetic; strict-< keeps the earliest
        site on ties, matching ``np.argmin``'s first-minimum rule)."""
        canvas = Canvas.empty(window, resolution, device)
        if ctx is not None:
            ctx.counters.allocations += 1
            ctx.mark_owned(canvas)
        gx, gy = canvas.pixel_center_grids()
        best_d2 = np.full((canvas.height, canvas.width), np.inf)
        owner = np.zeros((canvas.height, canvas.width))
        # deadline-seam: voronoi-chunk
        for start in range(0, len(pts), block):
            check_deadline(
                ctx.deadline if ctx is not None else None, "voronoi-chunk"
            )
            chunk = pts[start:start + block]
            d2 = (
                (gx[None, :, :] - chunk[:, 0, None, None]) ** 2
                + (gy[None, :, :] - chunk[:, 1, None, None]) ** 2
            )
            idx = np.argmin(d2, axis=0)
            dmin = np.min(d2, axis=0)
            closer = dmin < best_d2
            owner = np.where(closer, (start + idx).astype(np.float64), owner)
            best_d2 = np.where(closer, dmin, best_d2)
        canvas.texture.data[:, :, channel(DIM_AREA, FIELD_ID)] = owner
        canvas.texture.data[:, :, channel(DIM_AREA, FIELD_COUNT)] = best_d2
        canvas.texture.valid[:, :, DIM_AREA] = True
        tree_text = (
            f"blocked argmin over {len(pts)} sites "
            f"(chunks of {block}, running nearest per pixel)"
        )
        return canvas, tree_text

    def _run_voronoi_argmin_tiled(
        self,
        pts: np.ndarray,
        grid: TileGrid,
        device: Device,
        ctx: EvalContext | None,
        block: int = 8,
    ):
        """Blocked argmin computed per lattice tile, stitched into one
        owned frame — the lone tiled plan that materializes a full
        canvas (Voronoi's output *is* the frame).  Each tile's
        owner/d² planes cache under an ``("argmin", block)`` key, so a
        repeated diagram over a panned window recomputes only the
        newly exposed tiles."""
        canvas = Canvas.empty(
            grid.window, (grid.height, grid.width), device
        )
        if ctx is not None:
            ctx.counters.allocations += 1
            ctx.mark_owned(canvas)
        digest = array_digest(pts)
        prefetched: dict = {}
        if self._process_backend is not None:
            from repro.api.shm import encode_payload

            backend = self._process_backend
            cold = [
                tile for tile in grid.tiles()
                if tile_key(("argmin", block), digest, tile, grid, device)
                not in self.cache
            ]
            prefetched = self._prefetch_tiles(
                backend, cold,
                {
                    "kind": "argmin",
                    "points": encode_payload(pts, backend.plane),
                    "grid": grid,
                    "block": block,
                },
                ctx.deadline if ctx is not None else None,
            )
        before = self.cache.thread_counters()
        owner = np.zeros((grid.height, grid.width))
        best_d2 = np.full((grid.height, grid.width), np.inf)
        # deadline-seam: tile-argmin
        for tile in grid.tiles():
            check_deadline(
                ctx.deadline if ctx is not None else None, "tile-build"
            )
            built = prefetched.pop((tile.r0, tile.c0), None)
            key = tile_key(("argmin", block), digest, tile, grid, device)
            if built is not None:
                part = self.cache.get_or_build(key, lambda: built)
            else:
                part = self.cache.get_or_build(
                    key,
                    lambda t=tile: build_argmin_tile(t, pts, grid, block),
                )
            owner[tile.r0:tile.r1, tile.c0:tile.c1] = part.owner
            best_d2[tile.r0:tile.r1, tile.c0:tile.c1] = part.best_d2
        after = self.cache.thread_counters()
        canvas.texture.data[:, :, channel(DIM_AREA, FIELD_ID)] = owner
        canvas.texture.data[:, :, channel(DIM_AREA, FIELD_COUNT)] = best_d2
        canvas.texture.valid[:, :, DIM_AREA] = True
        tree_text = (
            f"blocked argmin over {len(pts)} sites, sharded on a "
            f"{grid.n_tile_rows}x{grid.n_tile_cols} lattice "
            f"(chunks of {block}, per-tile owner/d² planes cached)"
        )
        tile_stats = (
            grid.n_tiles, after[0] - before[0], after[1] - before[1]
        )
        return canvas, tree_text, tile_stats

    # ------------------------------------------------------------------
    # Origin-destination double selection (Section 4.6, Figure 8(a))
    # ------------------------------------------------------------------
    def od_select(
        self,
        origin_xs: np.ndarray,
        origin_ys: np.ndarray,
        dest_xs: np.ndarray,
        dest_ys: np.ndarray,
        q1: Polygon,
        q2: Polygon,
        *,
        ids: np.ndarray | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        exact: bool = True,
        force_plan: str | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> SelectionOutcome:
        """Plan and run ``Origin INSIDE Q1 AND Destination INSIDE Q2``."""
        origin_xs = np.asarray(origin_xs, dtype=np.float64)
        origin_ys = np.asarray(origin_ys, dtype=np.float64)
        dest_xs = np.asarray(dest_xs, dtype=np.float64)
        dest_ys = np.asarray(dest_ys, dtype=np.float64)
        n = len(origin_xs)
        key_ids = (
            np.asarray(ids, dtype=np.int64) if ids is not None
            else np.arange(n, dtype=np.int64)
        )
        if n == 0:
            return self._empty_selection("od-selection: empty input")
        resolution_hw = _resolve_resolution(window, resolution)

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = 2 * grid.n_tiles
            warm = self._count_warm_tiles(
                grid, "constraint", geometries_digest([q1]), device
            ) + self._count_warm_tiles(
                grid, ("polygon", 2), geometry_digest(q2), device
            )
        choice = self.planner.plan_od(
            n, q1, q2, resolution_hw, exact=exact, force=force_plan,
            window=window,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == OD_PIP:
            result = self._run_od_pip(
                origin_xs, origin_ys, dest_xs, dest_ys, q1, q2, key_ids,
                window, resolution_hw,
            )
            tree_text = (
                "PIP kernel: Q1 on origins, Q2 on surviving destinations"
            )
        elif choice.chosen.name == OD_CANVAS_TILED:
            assert grid is not None
            result, tree_text, tile_stats = self._run_od_canvas_tiled(
                origin_xs, origin_ys, dest_xs, dest_ys, q1, q2, key_ids,
                grid, device, exact, ctx,
            )
        else:
            result, tree_text = self._run_od_canvas(
                origin_xs, origin_ys, dest_xs, dest_ys, q1, q2, key_ids,
                window, resolution, device, exact, ctx,
            )
        t2 = time.perf_counter()

        report = self._report(
            "od-selection", choice, tree_text, before, (t0, t1, t2), ctx,
            tile_stats=tile_stats,
        )
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out, n_candidates=n_candidates, n_exact_tests=n_tests,
            samples=samples, report=report,
        )

    def _run_od_canvas(
        self,
        origin_xs: np.ndarray,
        origin_ys: np.ndarray,
        dest_xs: np.ndarray,
        dest_ys: np.ndarray,
        q1: Polygon,
        q2: Polygon,
        key_ids: np.ndarray,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """``M[Mp'](B[⊙](G[γd](Corigin), CQ2))`` — both constraint
        canvases served by the engine's cache."""
        # Stage 1: origin selection through the blended-canvas pipeline.
        stage1, stage1_tree = self._run_selection_blended(
            origin_xs, origin_ys, [q1], key_ids, window, resolution,
            device, "any", exact, None, ctx,
        )
        _, _, n_tests1, surviving = stage1

        # Stage 2: γd — value-driven transform to the destination
        # (vectorized id -> destination lookup via sorted search).
        order = np.argsort(key_ids, kind="stable")
        sorted_keys = key_ids[order]

        def gamma_dest(data, valid):
            rec = data[:, channel(DIM_POINT, FIELD_ID)].astype(np.int64)
            pos = order[np.searchsorted(sorted_keys, rec)]
            return dest_xs[pos], dest_ys[pos]

        moved = algebra.geometric_transform_by_value(surviving, gamma_dest)
        assert isinstance(moved, CanvasSet)
        # Clear the stage-1 boundary flags: the destination test's
        # uncertainty depends only on Q2's pixels.
        moved.boundary[:] = False

        # Stage 3: blend with CQ2 (cached, id 2 per the paper's CQi).
        cq2 = UtilityNode(
            "CY",
            factory=lambda: self.polygon_canvas(
                q2, window, resolution, record_id=2, device=device
            ),
            params="CQ2 id=2",
        )
        stage2_tree = InputNode(moved, name="G[γd](Corigin)").blend(
            cq2, PIP_MERGE
        ).mask(mask_point_in_any_polygon(1.0))
        masked = stage2_tree.evaluate(ctx)
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = n_tests1
        if exact:
            masked, extra = refine_point_samples(masked, [q2])
            n_tests += extra
        tree_text = (
            render_plan(stage2_tree)
            + "\nwhere G[γd](Corigin) jumps the survivors of:\n"
            + render_plan(stage1_tree)
        )
        return (
            (unique_ids(masked.keys), n_candidates, n_tests, masked),
            tree_text,
        )

    def _run_od_canvas_tiled(
        self,
        origin_xs: np.ndarray,
        origin_ys: np.ndarray,
        dest_xs: np.ndarray,
        dest_ys: np.ndarray,
        q1: Polygon,
        q2: Polygon,
        key_ids: np.ndarray,
        grid: TileGrid,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """Two-stage OD selection with both constraint rasters served
        per lattice tile (stage 1 under the ``constraint`` recipe,
        stage 2's CQ2 under ``("polygon", 2)``)."""
        # Stage 1: tiled origin selection.
        stage1, stage1_text, stats1 = self._run_selection_blended_tiled(
            origin_xs, origin_ys, [q1], key_ids, grid, device, "any",
            exact, ctx,
        )
        _, _, n_tests1, surviving = stage1

        # Stage 2: γd — value-driven transform to the destination.
        order = np.argsort(key_ids, kind="stable")
        sorted_keys = key_ids[order]

        def gamma_dest(data, valid):
            rec = data[:, channel(DIM_POINT, FIELD_ID)].astype(np.int64)
            pos = order[np.searchsorted(sorted_keys, rec)]
            return dest_xs[pos], dest_ys[pos]

        moved = algebra.geometric_transform_by_value(surviving, gamma_dest)
        assert isinstance(moved, CanvasSet)
        # Clear the stage-1 boundary flags: the destination test's
        # uncertainty depends only on Q2's pixels.
        moved.boundary[:] = False

        # Stage 3: tiled blend with CQ2 (id 2 per the paper's CQi).
        memo = CoverageMemo(grid.window, grid.height, grid.width, device)
        lookup = self._polygon_tile_lookup(
            ("polygon", 2), geometry_digest(q2), [(2, 2, q2, 0.0)],
            memo, grid, device,
            deadline=ctx.deadline if ctx is not None else None,
        )

        def gather(left):
            return algebra.blend_tiled(
                left, grid, lookup, PIP_MERGE, geometries={2: q2}
            )

        label = (
            f"TiledGather[⊙ {grid.n_tile_rows}x{grid.n_tile_cols}]"
            "(G[γd](Corigin), CQ2 id=2)"
        )
        stage2_tree = TiledGatherNode(
            InputNode(moved, name="G[γd](Corigin)"), gather, label
        ).mask(mask_point_in_any_polygon(1.0))
        before = self.cache.thread_counters()
        masked = stage2_tree.evaluate(ctx)
        after = self.cache.thread_counters()
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = n_tests1
        if exact:
            masked, extra = refine_point_samples(masked, [q2])
            n_tests += extra
        tree_text = (
            render_plan(stage2_tree)
            + "\nwhere G[γd](Corigin) jumps the survivors of:\n"
            + stage1_text
        )
        tile_stats = (
            stats1[0] + grid.n_tiles,
            stats1[1] + after[0] - before[0],
            stats1[2] + after[1] - before[1],
        )
        return (
            (unique_ids(masked.keys), n_candidates, n_tests, masked),
            tree_text,
            tile_stats,
        )

    def _run_od_pip(
        self,
        origin_xs: np.ndarray,
        origin_ys: np.ndarray,
        dest_xs: np.ndarray,
        dest_ys: np.ndarray,
        q1: Polygon,
        q2: Polygon,
        key_ids: np.ndarray,
        window: BoundingBox,
        resolution_hw: tuple[int, int],
    ):
        """Exact PIP per stage, mirroring the canvas plan's window
        semantics (out-of-window origins/destinations drop)."""
        height, width = resolution_hw
        _, _, in_origin = world_points_to_cells(
            origin_xs, origin_ys, window, height, width
        )
        sel1 = np.zeros(len(origin_xs), dtype=bool)
        sel1[in_origin] = points_in_polygon(
            origin_xs[in_origin], origin_ys[in_origin], q1
        )
        _, _, in_dest = world_points_to_cells(
            dest_xs, dest_ys, window, height, width
        )
        cand = sel1 & in_dest
        hit = np.zeros(len(origin_xs), dtype=bool)
        hit[cand] = points_in_polygon(dest_xs[cand], dest_ys[cand], q2)
        sel_keys = key_ids[hit]
        samples = CanvasSet.from_points(
            dest_xs[hit], dest_ys[hit], ids=sel_keys
        )
        samples.data[:, channel(DIM_AREA, FIELD_ID)] = 2.0
        samples.data[:, channel(DIM_AREA, FIELD_COUNT)] = 1.0
        samples.valid[:, DIM_AREA] = True
        n_tests = int(in_origin.sum()) + int(cand.sum())
        return unique_ids(sel_keys), int(hit.sum()), n_tests, samples

    # ------------------------------------------------------------------
    # Geometry-record selections (Section 4.1, Figure 6)
    # ------------------------------------------------------------------
    _GEOMETRY_KINDS: dict[str, dict[str, Any]] = {
        "polygons": dict(
            blend_mode=POLY_MERGE,
            predicate=lambda: mask_polygon_intersection(2.0),
            build=CanvasSet.from_polygons,
            exact_test=lambda geom, query: polygon_intersects_polygon(
                geom, query
            ),
            label="CY (data polygons)",
        ),
        "lines": dict(
            blend_mode=LINE_MERGE,
            predicate=lambda: NotNull(DIM_LINE) & FieldCompare(
                DIM_AREA, FIELD_COUNT, ">=", 1.0
            ),
            build=CanvasSet.from_linestrings,
            exact_test=lambda geom, query: linestring_intersects_polygon(
                geom.coords, query
            ),
            label="CL (data polylines)",
        ),
    }

    def select_geometry_records(
        self,
        kind: str,
        geometries: Sequence,
        query: Polygon,
        *,
        ids: Sequence[int] | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        exact: bool = True,
        force_plan: str | None = None,
        tiling: int | None = None,
        deadline: Deadline | None = None,
    ) -> SelectionOutcome:
        """Plan and run ``Geometry INTERSECTS Q`` over polygon or
        polyline records.

        The ``canvas-blend`` plan produces the composable sample set;
        the ``per-record-predicate`` plan returns ids only (its result
        set has no raster samples to expose).
        """
        if kind not in self._GEOMETRY_KINDS:
            known = ", ".join(sorted(self._GEOMETRY_KINDS))
            raise ValueError(f"unknown geometry kind {kind!r} (use {known})")
        config = self._GEOMETRY_KINDS[kind]
        geom_list = list(geometries)
        id_list = list(ids) if ids is not None else list(range(len(geom_list)))
        if len(id_list) != len(geom_list):
            raise ValueError("ids must match geometry count")
        if not geom_list:
            return self._empty_selection("geometry-selection: empty input")
        resolution_hw = _resolve_resolution(window, resolution)

        t0 = time.perf_counter()
        grid = None
        warm = total = 0
        if tiling is not None:
            grid = TileGrid(window, *resolution_hw, tiling)
            total = grid.n_tiles
            warm = self._count_warm_tiles(
                grid, ("polygon", 1), geometry_digest(query), device
            )
        choice = self.planner.plan_geometry_selection(
            geom_list, query, resolution_hw, exact=exact, force=force_plan,
            window=window,
            tiling=tiling, warm_tiles=warm, total_tiles=total,
        )
        t1 = time.perf_counter()
        before = self.cache.thread_counters()
        ctx = self._context(deadline)
        tile_stats = None

        if choice.chosen.name == GEOM_PREDICATE:
            result = self._run_geometry_predicate(
                config, geom_list, id_list, query
            )
            tree_text = (
                "exact pairwise intersection test per record "
                f"({len(geom_list)} records)"
            )
        elif choice.chosen.name == GEOM_BLEND_TILED:
            assert grid is not None
            result, tree_text, tile_stats = self._run_geometry_blend_tiled(
                config, geom_list, id_list, query, grid, device, exact, ctx
            )
        else:
            result, tree_text = self._run_geometry_blend(
                config, geom_list, id_list, query, window, resolution,
                device, exact, ctx,
            )
        t2 = time.perf_counter()

        report = self._report(
            "geometry-selection", choice, tree_text, before, (t0, t1, t2),
            ctx, tile_stats=tile_stats,
        )
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out, n_candidates=n_candidates, n_exact_tests=n_tests,
            samples=samples, report=report,
        )

    def _run_geometry_blend(
        self,
        config: dict[str, Any],
        geom_list: list,
        id_list: list[int],
        query: Polygon,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """``M[My](B[⊕](CY, CQ))`` with boundary-only-record refinement."""
        frame = Canvas(window, resolution, device)
        data_set = config["build"](geom_list, frame, ids=id_list)
        cq = UtilityNode(
            "CQ",
            factory=lambda: self.polygon_canvas(
                query, window, resolution, record_id=1, device=device
            ),
            params="query",
        )
        tree = InputNode(data_set, name=config["label"]).blend(
            cq, config["blend_mode"]
        ).mask(config["predicate"]())
        masked = tree.evaluate(ctx)
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_records
        tree_text = render_plan(tree)

        if masked.is_empty():
            return (
                (np.empty(0, dtype=np.int64), 0, 0, masked), tree_text
            )
        if not exact:
            return (
                (np.unique(masked.keys), n_candidates, 0, masked), tree_text
            )

        # A record with a surviving non-boundary sample intersects for
        # sure; boundary-only records need the exact predicate.
        certain = np.unique(masked.keys[~masked.boundary])
        uncertain = np.setdiff1d(np.unique(masked.keys), certain)
        by_id = {rid: geom for rid, geom in zip(id_list, geom_list)}
        confirmed = [
            rid for rid in uncertain
            if config["exact_test"](by_id[int(rid)], query)
        ]
        result_ids = np.unique(
            np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
        )
        keep = np.isin(masked.keys, result_ids)
        return (
            (result_ids, n_candidates, len(uncertain),
             masked.filter_rows(keep)),
            tree_text,
        )

    def _run_geometry_blend_tiled(
        self,
        config: dict[str, Any],
        geom_list: list,
        id_list: list[int],
        query: Polygon,
        grid: TileGrid,
        device: Device,
        exact: bool,
        ctx: EvalContext | None,
    ):
        """``M[My](B[⊕](CY, CQ))`` with the query raster served per
        lattice tile — the record-side sample set still builds whole
        frame (it is the query's *data*, distinct every call), but the
        query constraint caches under ``("polygon", 1)`` tile keys so a
        panned intersection query re-rasterizes only its cold tiles."""
        frame = Canvas(grid.window, (grid.height, grid.width), device)
        data_set = config["build"](geom_list, frame, ids=id_list)
        memo = CoverageMemo(grid.window, grid.height, grid.width, device)
        lookup = self._polygon_tile_lookup(
            ("polygon", 1), geometry_digest(query), [(1, 1, query, 0.0)],
            memo, grid, device,
            deadline=ctx.deadline if ctx is not None else None,
        )

        def gather(left):
            return algebra.blend_tiled(
                left, grid, lookup, config["blend_mode"],
                geometries={1: query},
            )

        label = (
            f"TiledGather[⊕ {grid.n_tile_rows}x{grid.n_tile_cols}]"
            f"({config['label']}, CQ query)"
        )
        tree = TiledGatherNode(
            InputNode(data_set, name=config["label"]), gather, label
        ).mask(config["predicate"]())
        before = self.cache.thread_counters()
        masked = tree.evaluate(ctx)
        after = self.cache.thread_counters()
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_records
        tree_text = render_plan(tree)
        tile_stats = (
            grid.n_tiles, after[0] - before[0], after[1] - before[1]
        )

        if masked.is_empty():
            return (
                (np.empty(0, dtype=np.int64), 0, 0, masked), tree_text,
                tile_stats,
            )
        if not exact:
            return (
                (np.unique(masked.keys), n_candidates, 0, masked), tree_text,
                tile_stats,
            )

        # A record with a surviving non-boundary sample intersects for
        # sure; boundary-only records need the exact predicate.
        certain = np.unique(masked.keys[~masked.boundary])
        uncertain = np.setdiff1d(np.unique(masked.keys), certain)
        by_id = {rid: geom for rid, geom in zip(id_list, geom_list)}
        confirmed = [
            rid for rid in uncertain
            if config["exact_test"](by_id[int(rid)], query)
        ]
        result_ids = np.unique(
            np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
        )
        keep = np.isin(masked.keys, result_ids)
        return (
            (result_ids, n_candidates, len(uncertain),
             masked.filter_rows(keep)),
            tree_text,
            tile_stats,
        )

    @staticmethod
    def _run_geometry_predicate(
        config: dict[str, Any],
        geom_list: list,
        id_list: list[int],
        query: Polygon,
    ):
        """Exact pairwise intersection per record (the traditional plan)."""
        matches = sorted(
            int(rid)
            for rid, geom in zip(id_list, geom_list)
            if config["exact_test"](geom, query)
        )
        result_ids = np.asarray(matches, dtype=np.int64)
        return (
            result_ids, len(result_ids), len(geom_list), CanvasSet.empty()
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _predict_selection_caching(
        self,
        specs: list[BatchQuery],
        recipe_keys: list[tuple | None],
        extra_warm: set | None = None,
    ) -> list[bool | None]:
        """Per-member ``constraint_cached`` flags, resolved up front.

        The serial executor decided each member's flag at execution
        time (earlier members had already run); a parallel batch has no
        "earlier", so the planning sweep replays the serial decision
        deterministically: walk members in submission order, ask the
        planner which plan each selection would choose, and mark its
        constraint key as materialized for everyone after it.  The
        planner is deterministic, so the prediction *is* the serial
        outcome — plan choices and reports match serial execution
        bit-for-bit regardless of worker count or completion order.

        *extra_warm* extends the "already materialized" set beyond this
        engine's own cache: the process backend passes its warm-key map
        (constraint canvases living in affinity-routed worker caches),
        which plays the role ``key in self.cache`` plays in-process.
        """
        will_cache: set[tuple] = set()
        warm = extra_warm if extra_warm is not None else ()
        flags: list[bool | None] = []
        for spec, key in zip(specs, recipe_keys):
            if key is None:
                flags.append(None)
                continue
            kw = spec.kwargs
            explicit = kw.get("constraint_cached")
            flag = (
                explicit if explicit is not None
                else (
                    key in self.cache
                    or key in will_cache
                    or key in warm
                )
            )
            flags.append(flag)
            xs = kw.get("xs")
            if xs is None or len(xs) == 0:
                continue  # empty-input members never plan or rasterize
            prebuilt = kw.get("constraint_canvas") is not None
            try:
                choice = self.planner.plan_selection(
                    len(xs), list(kw["polygons"]),
                    _resolve_resolution(
                        kw["window"], kw.get("resolution", 1024)
                    ),
                    exact=kw.get("exact", True),
                    prebuilt_canvas=prebuilt,
                    force=kw.get("force_plan"),
                    window=kw["window"],
                    constraint_cached=bool(flag) or prebuilt,
                    tiling=kw.get("tiling"),
                )
            except (ValueError, TypeError):
                continue  # the member itself will raise at execution
            if choice.chosen.name == SELECTION_BLENDED and not prebuilt:
                will_cache.add(key)
        return flags

    def execute_batch(
        self,
        queries: Sequence[BatchQuery],
        max_workers: int | None = None,
        deadline: Deadline | None = None,
        process_workers: int | None = None,
    ) -> BatchOutcome:
        """Plan and run a list of queries as one pass.

        Member queries share the engine's canvas cache, so repeated
        constraint sets rasterize once across the whole batch; during
        the shared planning sweep, a selection whose constraint canvas
        another member will materialize is priced cache-aware, letting
        the cost model pick the blended plan for every member after the
        first.  Results come back in submission order next to a
        :class:`BatchReport` of what the batch shared.

        With *max_workers* > 1 (argument or the engine's default),
        independent members execute concurrently on a thread pool:
        shared state (canvas cache, buffer pool, report history) is
        thread-safe, concurrent misses on one constraint single-flight
        into one raster pass, and per-member outcomes are bit-identical
        to serial execution — the planning sweep resolves all
        cache-aware pricing up front, so plan choices cannot depend on
        completion order.  Members constructed with ``parallel=False``
        opt out: they run on the submitting thread after the parallel
        wave.

        With *process_workers* (argument, or a backend already attached
        by a ``Session(process_workers=…)``), independent members ship
        to worker *processes* instead: planning and the cache-aware
        prediction sweep stay here, workers only execute, and
        digest-affinity routing keeps per-member outcomes, plan
        choices, and hit/miss splits bit-identical to serial.  A worker
        death respawns and retries once, then raises
        :class:`~repro.engine.process_pool.WorkerLost`.
        """
        specs = list(queries)
        if max_workers is None:
            max_workers = self.max_workers
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        backend = self._process_backend
        if process_workers is not None:
            if process_workers < 1:
                raise ValueError("process_workers must be at least 1")
            backend = self._ensure_own_backend(process_workers)
        elif backend is not None and backend.closed:
            backend = None
        dispatch = {
            kind: getattr(self, name) for kind, name in BATCH_KINDS.items()
        }
        t0 = time.perf_counter()
        recipe_keys: list[tuple | None] = []
        recipe_counts: dict[tuple, int] = {}
        for spec in specs:
            if spec.kind not in dispatch:
                known = ", ".join(sorted(dispatch))
                raise ValueError(
                    f"unknown batch query kind {spec.kind!r} (use {known})"
                )
            key = None
            if spec.kind == "selection" and "window" in spec.kwargs:
                key = self._constraint_key(
                    list(spec.kwargs["polygons"]),
                    spec.kwargs["window"],
                    spec.kwargs.get("resolution", 1024),
                    spec.kwargs.get("device", DEFAULT_DEVICE),
                )
                recipe_counts[key] = recipe_counts.get(key, 0) + 1
            recipe_keys.append(key)
        shared = sum(1 for count in recipe_counts.values() if count > 1)
        pooled = [i for i, spec in enumerate(specs) if spec.parallel]
        serial_only = [i for i, spec in enumerate(specs) if not spec.parallel]
        use_processes = backend is not None and len(pooled) > 0
        use_pool = (
            not use_processes and max_workers > 1 and len(pooled) > 1
        )
        # The prediction sweep re-prices each selection, so only the
        # pooled path (which has no "earlier member" to learn from)
        # pays it; a serial batch plans each member exactly once, with
        # flags resolved incrementally exactly as before.  The process
        # path always pays it, extended by the backend's warm-key map
        # (worker-resident constraint canvases the coordinator's own
        # cache cannot see).
        if use_processes:
            cached_flags = self._predict_selection_caching(
                specs, recipe_keys, extra_warm=backend.warm_keys
            )
        elif use_pool:
            cached_flags = self._predict_selection_caching(
                specs, recipe_keys
            )
        else:
            cached_flags = [None] * len(specs)
        t1 = time.perf_counter()

        def run_member(index: int) -> tuple[Any, float, str]:
            # One checkpoint per batch member: an expired batch stops
            # launching members (already-running ones abort at their own
            # checkpoints).
            check_deadline(deadline, "batch-member")
            spec = specs[index]
            kwargs = dict(spec.kwargs)
            if cached_flags[index] is not None:
                kwargs.setdefault("constraint_cached", cached_flags[index])
            if deadline is not None:
                kwargs.setdefault("deadline", deadline)
            started = time.perf_counter()
            outcome = dispatch[spec.kind](**kwargs)
            elapsed = time.perf_counter() - started
            return outcome, elapsed, threading.current_thread().name

        executions: list[tuple[Any, float, str] | None] = [None] * len(specs)
        if use_processes:
            workers = backend.workers
            calls: dict[int, tuple[Any, float]] = {}
            # deadline-seam: batch-member
            for i in pooled:
                check_deadline(deadline, "batch-member")
                spec = specs[i]
                kwargs = dict(spec.kwargs)
                if cached_flags[i] is not None:
                    kwargs.setdefault(
                        "constraint_cached", cached_flags[i]
                    )
                if deadline is not None:
                    kwargs.setdefault("deadline", deadline)
                affinity = self._member_affinity(
                    spec.kind, kwargs, recipe_keys[i]
                )
                calls[i] = (
                    self._dispatch_member(
                        backend, spec.kind, kwargs, affinity
                    ),
                    time.perf_counter(),
                )
            for i in pooled:
                call, started = calls[i]
                outcome = call.result()
                executions[i] = (
                    outcome,
                    time.perf_counter() - started,
                    f"proc-{call.worker}",
                )
                # Worker-side reports never reach this engine's stream
                # on their own — re-record them (in submission order)
                # so take_reports/explain see the batch.
                self.record_report(outcome.report)
                key = recipe_keys[i]
                if (
                    key is not None
                    and outcome.report.plan == SELECTION_BLENDED
                    and specs[i].kwargs.get("constraint_canvas") is None
                ):
                    backend.note_warm(key, call.worker)
            for i in serial_only:
                executions[i] = run_member(i)
        elif use_pool:
            workers = min(max_workers, len(pooled))
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-batch"
            ) as pool:
                futures = {i: pool.submit(run_member, i) for i in pooled}
                for i in pooled:
                    executions[i] = futures[i].result()
            for i in serial_only:
                executions[i] = run_member(i)
        else:
            workers = 1
            will_cache: set[tuple] = set()
            for i in sorted(pooled + serial_only):
                key = recipe_keys[i]
                if key is not None:
                    cached_flags[i] = key in self.cache or key in will_cache
                executions[i] = run_member(i)
                if key is not None and (
                    executions[i][0].report.plan == SELECTION_BLENDED
                ):
                    will_cache.add(key)
        t2 = time.perf_counter()

        results: list = []
        plans: list[tuple[str, str]] = []
        members: list[BatchMember] = []
        counters = EvalCounters()
        cache_hits = cache_misses = 0
        for i, execution in enumerate(executions):
            assert execution is not None
            outcome, elapsed, worker = execution
            report = outcome.report
            plans.append((specs[i].kind, report.plan))
            members.append(BatchMember(
                index=i, kind=specs[i].kind, plan=report.plan,
                execution_s=elapsed, worker=worker,
            ))
            counters.full_copies += report.copies
            counters.allocations += report.allocations
            counters.pool_reuses += report.pool_reuses
            counters.inplace_ops += report.inplace_ops
            cache_hits += report.cache_hits
            cache_misses += report.cache_misses
            results.append(outcome)

        report = BatchReport(
            n_queries=len(specs),
            plans=tuple(plans),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            shared_constraint_sets=shared,
            counters=counters,
            planning_s=t1 - t0,
            execution_s=t2 - t1,
            members=tuple(members),
            max_workers=workers,
        )
        return BatchOutcome(results, report)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, last: int = 1) -> str:
        """Human-readable report of the most recent execution(s).

        Shows, per query: the chosen physical plan, its estimated cost,
        the full candidate table, the rendered plan tree, and the
        cache-hit delta — then the cumulative cache statistics.
        """
        # Snapshot under the lock: iterating the shared deque while a
        # pool/serve thread records a report raises RuntimeError.
        with self._report_lock:
            shown = list(self.reports)[-max(1, last):]
        if not shown:
            return "no queries executed yet"
        return self.format_reports(shown)

    def format_reports(self, reports: Sequence[ExecutionReport]) -> str:
        """Render *reports* in ``explain``'s format (callers that track
        their own report streams — Session's per-thread attribution —
        pass exactly the reports they mean, never the global tail)."""
        blocks = [report.describe() for report in reports]
        stats = self.cache.stats()
        blocks.append(
            "cumulative canvas cache: "
            f"{stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.1%}), "
            f"{stats.size}/{stats.capacity} entries"
        )
        return ("\n" + "-" * 60 + "\n").join(blocks)
