"""Plan-driven query executor with canvas caching and explain reports.

The executor is the single place where a chosen physical plan becomes
work.  Query frontends (:mod:`repro.queries`) describe *what* to
compute; :class:`Planner` decides *how* (cost-based, Section 7); this
module runs the winning strategy:

- ``blended-canvas`` selections build the Figure 8(b) expression tree
  with :mod:`repro.core.expressions` nodes and evaluate it through the
  algebra, pulling constraint canvases from the :class:`CanvasCache`;
- ``per-polygon-pip`` selections run the traditional vectorized
  point-in-polygon kernel (the paper's baseline strategy) — exact by
  construction, cheapest for small inputs;
- ``join-then-aggregate`` aggregations run the Section 4.3 plan with
  per-polygon cached constraint canvases and exact refinement;
- ``rasterjoin`` aggregations delegate to the Figure 8(c) plan.

Every execution produces an :class:`ExecutionReport` — chosen plan,
estimated cost, full candidate table, cache-hit delta, timings, and the
rendered plan tree — which :meth:`QueryEngine.explain` formats for
humans and the CLI ``explain`` subcommand prints.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra, optimizer
from repro.core.accuracy import refine_point_samples
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas, Resolution, _resolve_resolution
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import InputNode, UtilityNode, render_plan
from repro.core.masks import (
    mask_point_in_all_polygons,
    mask_point_in_any_polygon,
)
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    channel,
)
from repro.core.optimizer import CostModel, PlanEstimate
from repro.engine.cache import CanvasCache, geometries_digest, geometry_digest
from repro.engine.planner import (
    AGG_RASTERJOIN,
    SELECTION_PIP,
    Planner,
)


def unique_ids(keys: np.ndarray) -> np.ndarray:
    """``np.unique`` with a fast path for already-sorted-unique keys.

    Point canvas sets carry one sample per record in id order, so
    selection results are usually strictly increasing already; the
    linear monotonicity check then skips the full unique machinery.
    """
    if len(keys) < 2:
        return keys.copy()
    diffs = np.diff(keys)
    if (diffs > 0).all():
        return keys.copy()
    return np.unique(keys)


def _group_gamma(data: np.ndarray, valid: np.ndarray):
    """The paper's ``γc(s) = (s[2][0], 0)`` — group by containing polygon."""
    gx = data[:, channel(DIM_AREA, FIELD_ID)] + 0.5
    gy = np.full_like(gx, 0.5)
    return gx, gy


def aggregate_samples(
    samples: CanvasSet,
    group_ids: Sequence[int],
    aggregate: str,
    attr_channel: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``B*[+](G[γc](samples))`` read back per group id.

    The accumulator canvas spans the id range ``[0, max_id + 1)`` with
    one pixel per id — the "unique location per object" the paper's
    value-driven transform targets.  Returns ``(groups, values)``.
    """
    if attr_channel is None:
        attr_channel = channel(DIM_POINT, FIELD_VALUE)
    groups = np.asarray(sorted(set(int(g) for g in group_ids)), dtype=np.int64)
    if samples.is_empty():
        fill = math.inf if aggregate == "min" else (-math.inf if aggregate == "max" else 0.0)
        values = np.full(
            len(groups),
            0.0 if aggregate in ("count", "sum", "avg") else fill,
        )
        return groups, values
    max_id = int(max(groups.max(), samples.field(DIM_AREA, FIELD_ID).max()))
    window = BoundingBox(0.0, 0.0, float(max_id + 1), 1.0)
    resolution = (1, max_id + 1)

    if aggregate in ("count", "sum", "avg"):
        acc = algebra.aggregate_canvas_set(
            samples, _group_gamma, window, resolution
        )
        counts = acc.field(DIM_POINT, FIELD_COUNT)[0, :]
        sums = acc.field(DIM_POINT, FIELD_VALUE)[0, :]
        if aggregate == "count":
            return groups, counts[groups]
        if aggregate == "sum":
            return groups, sums[groups]
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
        return groups, avg[groups]

    if aggregate in ("min", "max"):
        # The paper: "the + function can be modified appropriately" for
        # other distributive aggregates — scatter-min/max is the GPU
        # blend-equation MIN/MAX equivalent.
        gx, _ = _group_gamma(samples.data, samples.valid)
        slot = np.floor(gx).astype(np.int64)
        init = math.inf if aggregate == "min" else -math.inf
        acc_arr = np.full(max_id + 1, init, dtype=np.float64)
        attr = samples.data[:, attr_channel]
        ok = (slot >= 0) & (slot <= max_id)
        if aggregate == "min":
            np.minimum.at(acc_arr, slot[ok], attr[ok])
        else:
            np.maximum.at(acc_arr, slot[ok], attr[ok])
        return groups, acc_arr[groups]

    raise ValueError(f"unsupported aggregate {aggregate!r}")


# ----------------------------------------------------------------------
# Reports and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionReport:
    """What one engine execution did and why."""

    query: str
    plan: str
    estimated_cost: float
    candidates: tuple[PlanEstimate, ...]
    forced: str | None
    cache_hits: int
    cache_misses: int
    planning_s: float
    execution_s: float
    plan_tree: str | None

    def describe(self) -> str:
        lines = [
            f"query: {self.query}",
            f"chosen plan: {self.plan} (estimated cost {self.estimated_cost:.4g})",
        ]
        if self.forced:
            lines.append(f"choice forced: {self.forced}")
        if self.candidates:
            lines.append("candidate plans:")
            lines.extend(
                "  " + row
                for row in optimizer.explain(list(self.candidates)).splitlines()
            )
        if self.plan_tree:
            lines.append("plan tree:")
            lines.extend("  " + row for row in self.plan_tree.splitlines())
        lines.append(
            f"canvas cache: {self.cache_hits} hits, "
            f"{self.cache_misses} misses during this query"
        )
        lines.append(
            f"timings: planning {self.planning_s * 1e6:.1f} us, "
            f"execution {self.execution_s * 1e3:.3f} ms"
        )
        return "\n".join(lines)


@dataclass
class SelectionOutcome:
    """Raw executor output for a selection (frontends wrap this)."""

    ids: np.ndarray
    n_candidates: int
    n_exact_tests: int
    samples: CanvasSet
    report: ExecutionReport


@dataclass
class AggregationOutcome:
    """Raw executor output for an aggregation (frontends wrap this)."""

    groups: np.ndarray
    values: np.ndarray
    aggregate: str
    report: ExecutionReport


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class QueryEngine:
    """Planner + executor + canvas cache behind the query API.

    One engine instance owns one cost model and one cache; the
    module-level default engine (see :mod:`repro.engine`) serves the
    public query functions, while tests and benchmarks may instantiate
    engines with custom cost models to steer plan choice.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        cache_capacity: int = 64,
        cache_max_bytes: int | None = None,
        history: int = 32,
    ) -> None:
        self.planner = Planner(cost_model or CostModel())
        if cache_max_bytes is None:
            self.cache = CanvasCache(cache_capacity)
        else:
            self.cache = CanvasCache(cache_capacity, max_bytes=cache_max_bytes)
        self.reports: deque[ExecutionReport] = deque(maxlen=history)

    @property
    def cost_model(self) -> CostModel:
        return self.planner.cost_model

    @property
    def last_report(self) -> ExecutionReport | None:
        return self.reports[-1] if self.reports else None

    # ------------------------------------------------------------------
    # Cached canvas construction (the GPU-facing seam)
    # ------------------------------------------------------------------
    def constraint_canvas(
        self,
        polygons: Sequence[Polygon],
        window: BoundingBox,
        resolution: Resolution,
        device: Device = DEFAULT_DEVICE,
    ) -> Canvas:
        """``B*[⊕]`` over the constraint canvases, memoized.

        Each polygon is rendered with count accumulation so the blended
        canvas's area slot carries the per-pixel coverage count used by
        the masks ``Mp'`` (>= 1) and its conjunctive variant (== n).
        """
        # Deferred import: the shared builder lives in the query layer.
        from repro.queries.common import build_constraint_canvas

        polys = list(polygons)
        key = (
            "constraint-blend",
            geometries_digest(polys),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: build_constraint_canvas(polys, window, resolution, device),
        )

    def polygon_canvas(
        self,
        polygon: Polygon,
        window: BoundingBox,
        resolution: Resolution,
        record_id: int = 1,
        device: Device = DEFAULT_DEVICE,
    ) -> Canvas:
        """Single-polygon query canvas (``CQ`` / one member of ``CY``), memoized."""
        key = (
            "polygon",
            geometry_digest(polygon),
            int(record_id),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: Canvas.from_polygon(
                polygon, window, resolution, record_id=record_id, device=device
            ),
        )

    def rasterjoin_coverage(
        self,
        polygon: Polygon,
        window: BoundingBox,
        resolution: Resolution,
        device: Device = DEFAULT_DEVICE,
    ):
        """Clipped coverage footprint of one rasterjoin constraint, memoized.

        This is the canvas-provider seam of the rasterjoin plan: the
        scatter-gather execution only consumes each constraint's
        covered-cell set, so the cache stores that sparse footprint
        (a few KB) instead of an 80 MB dense canvas.  The key omits the
        record id — the footprint is id-independent, so re-running the
        join with a different group labelling still hits.
        """
        from repro.core.rasterjoin import polygon_coverage_cells

        key = (
            "rasterjoin-coverage",
            geometry_digest(polygon),
            tuple(window),
            _resolve_resolution(window, resolution),
            device,
        )
        return self.cache.get_or_build(
            key,
            lambda: polygon_coverage_cells(polygon, window, resolution, device),
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polygons: Sequence[Polygon],
        *,
        ids: np.ndarray | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        mode: str = "any",
        exact: bool = True,
        constraint_canvas: Canvas | None = None,
        force_plan: str | None = None,
    ) -> SelectionOutcome:
        """Plan and run a multi-constraint point selection."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        polys = list(polygons)
        if not polys:
            raise ValueError("at least one constraint polygon is required")
        resolution_hw = _resolve_resolution(window, resolution)

        if len(xs) == 0:
            return self._empty_selection("selection: empty input")

        t0 = time.perf_counter()
        choice = self.planner.plan_selection(
            len(xs), polys, resolution_hw, exact=exact,
            prebuilt_canvas=constraint_canvas is not None,
            force=force_plan, window=window,
        )
        t1 = time.perf_counter()
        before_hits, before_misses = self.cache.thread_counters()

        if choice.chosen.name == SELECTION_PIP:
            result = self._run_selection_pip(
                xs, ys, polys, ids, window, resolution_hw, mode
            )
            tree_text = (
                "PIP kernel: crossing-count per (point, polygon) pair "
                f"({len(polys)} polygons)"
            )
        else:
            result, tree = self._run_selection_blended(
                xs, ys, polys, ids, window, resolution, device, mode, exact,
                constraint_canvas,
            )
            tree_text = render_plan(tree)
        t2 = time.perf_counter()
        after_hits, after_misses = self.cache.thread_counters()

        report = ExecutionReport(
            query="selection",
            plan=choice.chosen.name,
            estimated_cost=choice.chosen.cost,
            candidates=choice.candidates,
            forced=choice.forced,
            cache_hits=after_hits - before_hits,
            cache_misses=after_misses - before_misses,
            planning_s=t1 - t0,
            execution_s=t2 - t1,
            plan_tree=tree_text,
        )
        self.reports.append(report)
        ids_out, n_candidates, n_tests, samples = result
        return SelectionOutcome(
            ids=ids_out,
            n_candidates=n_candidates,
            n_exact_tests=n_tests,
            samples=samples,
            report=report,
        )

    def _run_selection_blended(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        mode: str,
        exact: bool,
        prebuilt: Canvas | None,
    ):
        """``M[Mp'](B[⊙](CP, B*[⊕](CQ)))`` as an expression tree."""
        point_set = CanvasSet.from_points(xs, ys, ids=ids)
        cp = InputNode(point_set, name="CP")
        if prebuilt is not None:
            cq: InputNode | UtilityNode = InputNode(prebuilt, name="B*[⊕](CQ)")
        else:
            cq = UtilityNode(
                "B*[⊕]",
                factory=lambda: self.constraint_canvas(
                    polys, window, resolution, device
                ),
                params=f"CQ1..CQ{len(polys)}",
            )
        predicate = (
            mask_point_in_any_polygon(1.0)
            if mode == "any"
            else mask_point_in_all_polygons(float(len(polys)))
        )
        tree = cp.blend(cq, PIP_MERGE).mask(predicate)
        masked = tree.evaluate()
        assert isinstance(masked, CanvasSet)
        n_candidates = masked.n_samples
        n_tests = 0
        if exact:
            min_containing = 1 if mode == "any" else len(polys)
            masked, n_tests = refine_point_samples(
                masked, polys, min_containing=min_containing
            )
        return (unique_ids(masked.keys), n_candidates, n_tests, masked), tree

    def _run_selection_pip(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: np.ndarray | None,
        window: BoundingBox,
        resolution_hw: tuple[int, int],
        mode: str,
    ):
        """Exact per-polygon PIP testing (the traditional plan).

        Points outside the query window are dropped first, matching the
        raster plan's gather semantics (out-of-window samples blend to
        null); the crossing-count test then runs per polygon.  The
        surviving samples carry the same constraint-side S^3 triple the
        blended plan would have gathered — ``s[2] = (id of the last
        covering constraint, coverage count, 0)`` — so downstream
        composition (group-by containing polygon, OD-style transforms)
        is plan-independent.
        """
        height, width = resolution_hw
        dx = window.width / width
        dy = window.height / height
        cols = np.floor((xs - window.xmin) / dx).astype(np.int64)
        rows = np.floor((ys - window.ymin) / dy).astype(np.int64)
        in_frame = (
            (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
        )
        keys = (
            np.asarray(ids, dtype=np.int64)
            if ids is not None
            else np.arange(len(xs), dtype=np.int64)
        )
        fx, fy = xs[in_frame], ys[in_frame]
        counts = np.zeros(len(fx), dtype=np.int64)
        last_id = np.zeros(len(fx), dtype=np.float64)
        for i, poly in enumerate(polys, start=1):
            inside = points_in_polygon(fx, fy, poly)
            counts += inside
            # Constraint canvases draw in order with ids 1..n, so the
            # last covering polygon owns the pixel's id channel.
            last_id[inside] = float(i)
        need = 1 if mode == "any" else len(polys)
        hit = counts >= need
        sel_keys = keys[in_frame][hit]
        samples = CanvasSet.from_points(fx[hit], fy[hit], ids=sel_keys)
        samples.data[:, channel(DIM_AREA, FIELD_ID)] = last_id[hit]
        samples.data[:, channel(DIM_AREA, FIELD_COUNT)] = counts[hit]
        samples.valid[:, DIM_AREA] = True
        n_tests = int(in_frame.sum()) * len(polys)
        return unique_ids(sel_keys), int(hit.sum()), n_tests, samples

    def _empty_selection(self, label: str) -> SelectionOutcome:
        report = ExecutionReport(
            query=label, plan="empty-input", estimated_cost=0.0,
            candidates=(), forced="no input points", cache_hits=0,
            cache_misses=0, planning_s=0.0, execution_s=0.0, plan_tree=None,
        )
        self.reports.append(report)
        return SelectionOutcome(
            ids=np.empty(0, dtype=np.int64), n_candidates=0, n_exact_tests=0,
            samples=CanvasSet.empty(), report=report,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polygons: Sequence[Polygon],
        *,
        values: np.ndarray | None = None,
        aggregate: str = "count",
        polygon_ids: Sequence[int] | None = None,
        window: BoundingBox,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
        exact: bool = True,
        force_plan: str | None = None,
    ) -> AggregationOutcome:
        """Plan and run a group-by-over-join aggregation."""
        if aggregate not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        polys = list(polygons)
        # Validate ids up front so the outcome cannot depend on which
        # physical plan the cost model picks (rasterjoin would reject
        # duplicates, join-then-aggregate would silently merge groups).
        from repro.core.rasterjoin import _validated_ids

        ids = _validated_ids(polys, polygon_ids)
        resolution_hw = _resolve_resolution(window, resolution)

        if not polys or len(xs) == 0:
            groups, out_values = aggregate_samples(
                CanvasSet.empty(), ids, aggregate
            )
            report = ExecutionReport(
                query="join-aggregate: empty input", plan="empty-input",
                estimated_cost=0.0, candidates=(), forced="no input",
                cache_hits=0, cache_misses=0, planning_s=0.0,
                execution_s=0.0, plan_tree=None,
            )
            self.reports.append(report)
            return AggregationOutcome(groups, out_values, aggregate, report)

        t0 = time.perf_counter()
        choice = self.planner.plan_aggregation(
            len(xs), polys, resolution_hw, exact=exact, aggregate=aggregate,
            force=force_plan, window=window,
        )
        t1 = time.perf_counter()
        before_hits, before_misses = self.cache.thread_counters()

        if choice.chosen.name == AGG_RASTERJOIN:
            # Deferred import: rasterjoin sits above the query layer.
            from repro.core.rasterjoin import raster_join_aggregate

            result = raster_join_aggregate(
                xs, ys, polys, values=values, aggregate=aggregate,
                polygon_ids=ids, window=window, resolution=resolution,
                device=device,
                coverage_provider=lambda poly, pid: self.rasterjoin_coverage(
                    poly, window, resolution, device
                ),
            )
            groups, out_values = result.groups, result.values
            tree_text = (
                "B*[+](D*[γc](M[Mp](B[⊙](B*[+](CP), CY)))) — "
                f"scatter-gather RasterJoin over {len(polys)} polygons "
                "(constraint coverage served by the canvas cache)"
            )
        else:
            groups, out_values, tree_text = self._run_join_then_aggregate(
                xs, ys, polys, ids, values, aggregate, window, resolution,
                device, exact,
            )
        t2 = time.perf_counter()
        after_hits, after_misses = self.cache.thread_counters()

        report = ExecutionReport(
            query="join-aggregate",
            plan=choice.chosen.name,
            estimated_cost=choice.chosen.cost,
            candidates=choice.candidates,
            forced=choice.forced,
            cache_hits=after_hits - before_hits,
            cache_misses=after_misses - before_misses,
            planning_s=t1 - t0,
            execution_s=t2 - t1,
            plan_tree=tree_text,
        )
        self.reports.append(report)
        return AggregationOutcome(groups, out_values, aggregate, report)

    def _run_join_then_aggregate(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        polys: list[Polygon],
        ids: list[int],
        values: np.ndarray | None,
        aggregate: str,
        window: BoundingBox,
        resolution: Resolution,
        device: Device,
        exact: bool,
    ):
        """``B*[+](G[γc](M[Mp](B[⊙](CP, CY))))`` per polygon, then merge."""
        point_set = CanvasSet.from_points(xs, ys, values=values)
        cp = InputNode(point_set, name="CP")
        collected: CanvasSet | None = None
        branch_tree = None
        for poly, pid in zip(polys, ids):
            cq = UtilityNode(
                "CY",
                factory=lambda p=poly, r=pid: self.polygon_canvas(
                    p, window, resolution, record_id=r, device=device
                ),
                params=f"id={pid}",
            )
            tree = cp.blend(cq, PIP_MERGE).mask(mask_point_in_any_polygon(1.0))
            branch_tree = tree
            masked = tree.evaluate()
            assert isinstance(masked, CanvasSet)
            if exact:
                masked, _ = refine_point_samples(masked, [poly])
            collected = masked if collected is None else collected.concat(masked)

        groups, out_values = aggregate_samples(
            collected if collected is not None else CanvasSet.empty(),
            ids, aggregate,
        )
        tree_text = ""
        if branch_tree is not None:
            tree_text = (
                f"B*[+] ∘ G[γc] over {len(polys)} branches of:\n"
                + render_plan(branch_tree)
            )
        return groups, out_values, tree_text

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, last: int = 1) -> str:
        """Human-readable report of the most recent execution(s).

        Shows, per query: the chosen physical plan, its estimated cost,
        the full candidate table, the rendered plan tree, and the
        cache-hit delta — then the cumulative cache statistics.
        """
        if not self.reports:
            return "no queries executed yet"
        shown = list(self.reports)[-max(1, last):]
        blocks = [report.describe() for report in shown]
        stats = self.cache.stats()
        blocks.append(
            "cumulative canvas cache: "
            f"{stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.1%}), "
            f"{stats.size}/{stats.capacity} entries"
        )
        return ("\n" + "-" * 60 + "\n").join(blocks)
