"""Physical-plan enumeration and cost-based choice.

The paper's Section 7 argument — the algebra admits multiple equivalent
plans, and operator-level cost models can rank them — is made
operational here.  For each logical query the planner enumerates the
admissible physical strategies, prices them with
:class:`repro.core.optimizer.CostModel`, and returns a
:class:`PlanChoice` the executor is bound to honor:

- **selection** — ``blended-canvas`` (rasterize the constraints once,
  one texture gather per point, Figure 8(b)) vs ``per-polygon-pip``
  (the traditional vectorized point-in-polygon pass per constraint);
- **aggregation** — ``join-then-aggregate`` (per-polygon gather then
  group-by, Section 4.3) vs ``rasterjoin`` (merge all points first,
  per-polygon work bounded by texture size, Figure 8(c));
- **distance selection** — ``circle-canvas`` (the ``Circ`` utility
  canvas plus gathers) vs ``direct-distance`` (one vectorized exact
  distance compare per point);
- **kNN** — ``canvas-distance-probes`` (bisected concentric-circle
  counting, Section 4.4) vs ``kdtree-refine`` (exact index probe);
- **Voronoi** — ``iterated-value-transform`` (one ``V[f]`` pass per
  site, Section 4.5) vs ``blocked-argmin`` (bit-identical fused sweep);
- **OD selection** — ``two-stage-canvas`` (Figure 8(a)) vs
  ``per-pair-pip`` (exact PIP per stage);
- **geometry selection** — ``canvas-blend`` (Figure 6) vs
  ``per-record-predicate`` (exact pairwise intersection tests).

Admissibility encodes result contracts, not preferences: approximate
selection (``exact=False``) is *defined* as the raster pipeline, exact
aggregation needs the sample-level plan (RasterJoin is approximate by
design), and ``min``/``max`` only exist on the sample-level path.  When
a contract pins the plan, the choice records the reason in ``forced``
so ``explain()`` can say why the cost model was bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.core import optimizer
from repro.core.optimizer import CostModel, PlanEstimate

#: Physical plan names (shared vocabulary with repro.core.optimizer).
SELECTION_BLENDED = "blended-canvas"
SELECTION_PIP = "per-polygon-pip"
AGG_RASTERJOIN = "rasterjoin"
AGG_JOIN_THEN_AGG = "join-then-aggregate"
DISTANCE_CANVAS = "circle-canvas"
DISTANCE_DIRECT = "direct-distance"
KNN_PROBES = "canvas-distance-probes"
KNN_KDTREE = "kdtree-refine"
VORONOI_ITERATED = "iterated-value-transform"
VORONOI_ARGMIN = "blocked-argmin"
OD_CANVAS = "two-stage-canvas"
OD_PIP = "per-pair-pip"
GEOM_BLEND = "canvas-blend"
GEOM_PREDICATE = "per-record-predicate"

#: Tile-sharded variants of the canvas plans (PR 6).  kNN has no tiled
#: variant (its bisection probes use query-specific radii that defeat
#: tile reuse) and neither does rasterjoin (its cached coverage
#: footprints are already sparse and small).
SELECTION_BLENDED_TILED = "blended-canvas-tiled"
AGG_JOIN_THEN_AGG_TILED = "join-then-aggregate-tiled"
DISTANCE_CANVAS_TILED = "circle-canvas-tiled"
VORONOI_ARGMIN_TILED = "blocked-argmin-tiled"
OD_CANVAS_TILED = "two-stage-canvas-tiled"
GEOM_BLEND_TILED = "canvas-blend-tiled"

#: Aggregates computable on each aggregation plan.
_RASTERJOIN_AGGREGATES = frozenset({"count", "sum", "avg"})
_SAMPLE_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class PlanChoice:
    """The planner's verdict for one query.

    Attributes
    ----------
    kind:
        ``"selection"`` or ``"aggregation"``.
    chosen:
        The physical plan the executor must run.
    candidates:
        Every plan the optimizer priced, cheapest first (including
        inadmissible ones, for explain output).
    forced:
        Reason the choice was pinned by a result contract instead of
        the cost model; ``None`` when the cost model decided.
    """

    kind: str
    chosen: PlanEstimate
    candidates: tuple[PlanEstimate, ...]
    forced: str | None = None


@dataclass
class Planner:
    """Cost-based planner parameterized by a :class:`CostModel`.

    Swapping the cost model swaps the executed physical plan — the
    acceptance test of the engine refactor.
    """

    cost_model: CostModel = field(default_factory=CostModel)

    # ------------------------------------------------------------------
    def plan_selection(
        self,
        n_points: int,
        polygons: Sequence[Polygon],
        resolution: tuple[int, int],
        exact: bool = True,
        prebuilt_canvas: bool = False,
        force: str | None = None,
        window: BoundingBox | None = None,
        constraint_cached: bool = False,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to select *n_points* under polygon constraints.

        *force* names a physical plan to run regardless of cost (the
        EXPLAIN-style user override); it still must be a priced
        candidate.  *window*, when known, makes the raster costs
        bbox-aware (clipped rasterization prices small constraints
        below a full-frame sweep).  *constraint_cached* tells the cost
        model the blended plan's constraint canvas is already
        materialized (engine cache hit, or an earlier query in the same
        batch builds it), dropping its raster cost.

        *tiling* (the user's K×K knob) admits and selects the
        tile-sharded blended plan; *warm_tiles*/*total_tiles* — the
        engine's pre-planning tile-cache probe — price how much raster
        work the tile cache already holds.  A prebuilt constraint
        canvas still wins: it is a whole-frame artifact, so tiling is
        ignored for that query.
        """
        candidates = tuple(
            optimizer.selection_plans(
                n_points, polygons, resolution, self.cost_model,
                window=window, constraint_cached=constraint_cached,
                tiling=tiling, warm_tiles=warm_tiles,
                total_tiles=total_tiles,
            )
        )
        if force is not None:
            if force == SELECTION_PIP and not exact:
                raise ValueError(
                    "approximate mode is defined on the raster plan; the "
                    "per-polygon-pip plan is exact — drop exact=False or "
                    "the override"
                )
            if force == SELECTION_PIP and prebuilt_canvas:
                raise ValueError(
                    "a prebuilt constraint canvas requires the "
                    "blended-canvas plan; the per-polygon-pip override "
                    "would discard it"
                )
            return self._pick(
                "selection", candidates, force,
                forced=f"user override {force!r}",
            )
        if prebuilt_canvas:
            return self._pick(
                "selection", candidates, SELECTION_BLENDED,
                forced="caller supplied a prebuilt constraint canvas",
            )
        if not exact:
            # Approximate mode IS the raster pipeline: its error bound
            # (texture size) and its zero-refinement contract only make
            # sense on the blended plan (tiled or whole-frame — the two
            # are bit-identical).
            return self._pick(
                "selection", candidates,
                SELECTION_BLENDED_TILED if tiling is not None
                else SELECTION_BLENDED,
                forced="approximate mode is defined on the raster plan",
            )
        if tiling is not None:
            return self._tiled_choice(
                "selection", candidates, SELECTION_BLENDED_TILED, tiling
            )
        return PlanChoice("selection", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_aggregation(
        self,
        n_points: int,
        polygons: Sequence[Polygon],
        resolution: tuple[int, int],
        exact: bool = True,
        aggregate: str = "count",
        force: str | None = None,
        window: BoundingBox | None = None,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to aggregate points per polygon group.

        *tiling* admits the tile-sharded join-then-aggregate plan
        (rasterjoin has no tiled variant — its cached coverage
        footprints are sparse already).
        """
        candidates = tuple(
            optimizer.aggregation_plans(
                n_points, polygons, resolution, self.cost_model,
                window=window, tiling=tiling, warm_tiles=warm_tiles,
                total_tiles=total_tiles,
            )
        )
        if force is not None:
            if force == AGG_RASTERJOIN and exact:
                raise ValueError(
                    "rasterjoin is approximate by design; pass exact=False "
                    "to force it"
                )
            if force == AGG_RASTERJOIN and aggregate not in _RASTERJOIN_AGGREGATES:
                raise ValueError(
                    f"rasterjoin cannot compute aggregate {aggregate!r}"
                )
            return self._pick(
                "aggregation", candidates, force,
                forced=f"user override {force!r}",
            )
        sample_plan = (
            AGG_JOIN_THEN_AGG_TILED if tiling is not None
            else AGG_JOIN_THEN_AGG
        )
        if exact:
            return self._pick(
                "aggregation", candidates, sample_plan,
                forced="exact results require sample-level refinement",
            )
        if aggregate not in _RASTERJOIN_AGGREGATES:
            return self._pick(
                "aggregation", candidates, sample_plan,
                forced=f"aggregate {aggregate!r} needs the sample-level plan",
            )
        if tiling is not None:
            return self._tiled_choice(
                "aggregation", candidates, AGG_JOIN_THEN_AGG_TILED, tiling
            )
        return PlanChoice("aggregation", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_distance(
        self,
        n_points: int,
        radius: float,
        resolution: tuple[int, int],
        exact: bool = True,
        force: str | None = None,
        window: BoundingBox | None = None,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to select points within *radius* of a center."""
        candidates = tuple(
            optimizer.distance_plans(
                n_points, radius, resolution, self.cost_model, window=window,
                tiling=tiling, warm_tiles=warm_tiles,
                total_tiles=total_tiles,
            )
        )
        if force is not None:
            if force == DISTANCE_DIRECT and not exact:
                raise ValueError(
                    "approximate mode is defined on the raster plan; the "
                    "direct-distance plan is exact — drop exact=False or "
                    "the override"
                )
            return self._pick(
                "distance-selection", candidates, force,
                forced=f"user override {force!r}",
            )
        if not exact:
            return self._pick(
                "distance-selection", candidates,
                DISTANCE_CANVAS_TILED if tiling is not None
                else DISTANCE_CANVAS,
                forced="approximate mode is defined on the raster plan",
            )
        if tiling is not None:
            return self._tiled_choice(
                "distance-selection", candidates, DISTANCE_CANVAS_TILED,
                tiling,
            )
        return PlanChoice("distance-selection", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_knn(
        self,
        n_points: int,
        k: int,
        resolution: tuple[int, int],
        force: str | None = None,
        window: BoundingBox | None = None,
    ) -> PlanChoice:
        """Choose how to find the k nearest neighbors (both plans exact)."""
        candidates = tuple(
            optimizer.knn_plans(
                n_points, k, resolution, self.cost_model, window=window
            )
        )
        if force is not None:
            return self._pick(
                "knn", candidates, force, forced=f"user override {force!r}"
            )
        return PlanChoice("knn", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_voronoi(
        self,
        n_sites: int,
        resolution: tuple[int, int],
        force: str | None = None,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to compute the Voronoi diagram (bit-identical plans)."""
        candidates = tuple(
            optimizer.voronoi_plans(
                n_sites, resolution, self.cost_model, tiling=tiling,
                warm_tiles=warm_tiles, total_tiles=total_tiles,
            )
        )
        if force is not None:
            return self._pick(
                "voronoi", candidates, force, forced=f"user override {force!r}"
            )
        if tiling is not None:
            return self._tiled_choice(
                "voronoi", candidates, VORONOI_ARGMIN_TILED, tiling
            )
        return PlanChoice("voronoi", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_od(
        self,
        n_points: int,
        q1: Polygon,
        q2: Polygon,
        resolution: tuple[int, int],
        exact: bool = True,
        force: str | None = None,
        window: BoundingBox | None = None,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to run the origin-destination double selection."""
        candidates = tuple(
            optimizer.od_plans(
                n_points, q1, q2, resolution, self.cost_model, window=window,
                tiling=tiling, warm_tiles=warm_tiles,
                total_tiles=total_tiles,
            )
        )
        if force is not None:
            if force == OD_PIP and not exact:
                raise ValueError(
                    "approximate mode is defined on the raster plan; the "
                    "per-pair-pip plan is exact — drop exact=False or the "
                    "override"
                )
            return self._pick(
                "od-selection", candidates, force,
                forced=f"user override {force!r}",
            )
        if not exact:
            return self._pick(
                "od-selection", candidates,
                OD_CANVAS_TILED if tiling is not None else OD_CANVAS,
                forced="approximate mode is defined on the raster plan",
            )
        if tiling is not None:
            return self._tiled_choice(
                "od-selection", candidates, OD_CANVAS_TILED, tiling
            )
        return PlanChoice("od-selection", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_geometry_selection(
        self,
        data_geometries: Sequence,
        query: Polygon,
        resolution: tuple[int, int],
        exact: bool = True,
        force: str | None = None,
        window: BoundingBox | None = None,
        tiling: int | None = None,
        warm_tiles: int = 0,
        total_tiles: int = 0,
    ) -> PlanChoice:
        """Choose how to select polygon/polyline records INTERSECTS Q."""
        candidates = tuple(
            optimizer.geometry_selection_plans(
                data_geometries, query, resolution, self.cost_model,
                window=window, tiling=tiling, warm_tiles=warm_tiles,
                total_tiles=total_tiles,
            )
        )
        if force is not None:
            if force == GEOM_PREDICATE and not exact:
                raise ValueError(
                    "approximate mode is defined on the raster plan; the "
                    "per-record-predicate plan is exact — drop exact=False "
                    "or the override"
                )
            return self._pick(
                "geometry-selection", candidates, force,
                forced=f"user override {force!r}",
            )
        if not exact:
            return self._pick(
                "geometry-selection", candidates,
                GEOM_BLEND_TILED if tiling is not None else GEOM_BLEND,
                forced="approximate mode is defined on the raster plan",
            )
        if tiling is not None:
            return self._tiled_choice(
                "geometry-selection", candidates, GEOM_BLEND_TILED, tiling
            )
        return PlanChoice("geometry-selection", candidates[0], candidates)

    # ------------------------------------------------------------------
    @classmethod
    def _tiled_choice(
        cls,
        kind: str,
        candidates: tuple[PlanEstimate, ...],
        name: str,
        tiling: int,
    ) -> PlanChoice:
        """Select the tiled plan a ``tiling=K`` request asks for.

        The knob is a commitment, not a hint — the executor always
        runs the tiled plan so the tile cache warms up for the next
        pan.  ``forced`` stays ``None`` when the cost model agreed
        (warm tiles priced it cheapest); otherwise it records that the
        user's knob overrode a (cold-cache) cost ranking.
        """
        if candidates[0].name == name:
            return PlanChoice(kind, candidates[0], candidates)
        return cls._pick(
            kind, candidates, name,
            forced=f"tiling={tiling} requested (cold tile cache)",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _pick(
        kind: str,
        candidates: tuple[PlanEstimate, ...],
        name: str,
        forced: str,
    ) -> PlanChoice:
        for plan in candidates:
            if plan.name == name:
                return PlanChoice(kind, plan, candidates, forced=forced)
        known = ", ".join(sorted(p.name for p in candidates))
        raise ValueError(f"unknown {kind} plan {name!r} (candidates: {known})")
