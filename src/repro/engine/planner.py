"""Physical-plan enumeration and cost-based choice.

The paper's Section 7 argument — the algebra admits multiple equivalent
plans, and operator-level cost models can rank them — is made
operational here.  For each logical query the planner enumerates the
admissible physical strategies, prices them with
:class:`repro.core.optimizer.CostModel`, and returns a
:class:`PlanChoice` the executor is bound to honor:

- **selection** — ``blended-canvas`` (rasterize the constraints once,
  one texture gather per point, Figure 8(b)) vs ``per-polygon-pip``
  (the traditional vectorized point-in-polygon pass per constraint);
- **aggregation** — ``join-then-aggregate`` (per-polygon gather then
  group-by, Section 4.3) vs ``rasterjoin`` (merge all points first,
  per-polygon work bounded by texture size, Figure 8(c)).

Admissibility encodes result contracts, not preferences: approximate
selection (``exact=False``) is *defined* as the raster pipeline, exact
aggregation needs the sample-level plan (RasterJoin is approximate by
design), and ``min``/``max`` only exist on the sample-level path.  When
a contract pins the plan, the choice records the reason in ``forced``
so ``explain()`` can say why the cost model was bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.core import optimizer
from repro.core.optimizer import CostModel, PlanEstimate

#: Physical plan names (shared vocabulary with repro.core.optimizer).
SELECTION_BLENDED = "blended-canvas"
SELECTION_PIP = "per-polygon-pip"
AGG_RASTERJOIN = "rasterjoin"
AGG_JOIN_THEN_AGG = "join-then-aggregate"

#: Aggregates computable on each aggregation plan.
_RASTERJOIN_AGGREGATES = frozenset({"count", "sum", "avg"})
_SAMPLE_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class PlanChoice:
    """The planner's verdict for one query.

    Attributes
    ----------
    kind:
        ``"selection"`` or ``"aggregation"``.
    chosen:
        The physical plan the executor must run.
    candidates:
        Every plan the optimizer priced, cheapest first (including
        inadmissible ones, for explain output).
    forced:
        Reason the choice was pinned by a result contract instead of
        the cost model; ``None`` when the cost model decided.
    """

    kind: str
    chosen: PlanEstimate
    candidates: tuple[PlanEstimate, ...]
    forced: str | None = None


@dataclass
class Planner:
    """Cost-based planner parameterized by a :class:`CostModel`.

    Swapping the cost model swaps the executed physical plan — the
    acceptance test of the engine refactor.
    """

    cost_model: CostModel = field(default_factory=CostModel)

    # ------------------------------------------------------------------
    def plan_selection(
        self,
        n_points: int,
        polygons: Sequence[Polygon],
        resolution: tuple[int, int],
        exact: bool = True,
        prebuilt_canvas: bool = False,
        force: str | None = None,
        window: BoundingBox | None = None,
    ) -> PlanChoice:
        """Choose how to select *n_points* under polygon constraints.

        *force* names a physical plan to run regardless of cost (the
        EXPLAIN-style user override); it still must be a priced
        candidate.  *window*, when known, makes the raster costs
        bbox-aware (clipped rasterization prices small constraints
        below a full-frame sweep).
        """
        candidates = tuple(
            optimizer.selection_plans(
                n_points, polygons, resolution, self.cost_model,
                window=window,
            )
        )
        if force is not None:
            if force == SELECTION_PIP and not exact:
                raise ValueError(
                    "approximate mode is defined on the raster plan; the "
                    "per-polygon-pip plan is exact — drop exact=False or "
                    "the override"
                )
            if force == SELECTION_PIP and prebuilt_canvas:
                raise ValueError(
                    "a prebuilt constraint canvas requires the "
                    "blended-canvas plan; the per-polygon-pip override "
                    "would discard it"
                )
            return self._pick(
                "selection", candidates, force,
                forced=f"user override {force!r}",
            )
        if prebuilt_canvas:
            return self._pick(
                "selection", candidates, SELECTION_BLENDED,
                forced="caller supplied a prebuilt constraint canvas",
            )
        if not exact:
            # Approximate mode IS the raster pipeline: its error bound
            # (texture size) and its zero-refinement contract only make
            # sense on the blended plan.
            return self._pick(
                "selection", candidates, SELECTION_BLENDED,
                forced="approximate mode is defined on the raster plan",
            )
        return PlanChoice("selection", candidates[0], candidates)

    # ------------------------------------------------------------------
    def plan_aggregation(
        self,
        n_points: int,
        polygons: Sequence[Polygon],
        resolution: tuple[int, int],
        exact: bool = True,
        aggregate: str = "count",
        force: str | None = None,
        window: BoundingBox | None = None,
    ) -> PlanChoice:
        """Choose how to aggregate points per polygon group."""
        candidates = tuple(
            optimizer.aggregation_plans(
                n_points, polygons, resolution, self.cost_model,
                window=window,
            )
        )
        if force is not None:
            if force == AGG_RASTERJOIN and exact:
                raise ValueError(
                    "rasterjoin is approximate by design; pass exact=False "
                    "to force it"
                )
            if force == AGG_RASTERJOIN and aggregate not in _RASTERJOIN_AGGREGATES:
                raise ValueError(
                    f"rasterjoin cannot compute aggregate {aggregate!r}"
                )
            return self._pick(
                "aggregation", candidates, force,
                forced=f"user override {force!r}",
            )
        if exact:
            return self._pick(
                "aggregation", candidates, AGG_JOIN_THEN_AGG,
                forced="exact results require sample-level refinement",
            )
        if aggregate not in _RASTERJOIN_AGGREGATES:
            return self._pick(
                "aggregation", candidates, AGG_JOIN_THEN_AGG,
                forced=f"aggregate {aggregate!r} needs the sample-level plan",
            )
        return PlanChoice("aggregation", candidates[0], candidates)

    # ------------------------------------------------------------------
    @staticmethod
    def _pick(
        kind: str,
        candidates: tuple[PlanEstimate, ...],
        name: str,
        forced: str,
    ) -> PlanChoice:
        for plan in candidates:
            if plan.name == name:
                return PlanChoice(kind, plan, candidates, forced=forced)
        known = ", ".join(sorted(p.name for p in candidates))
        raise ValueError(f"unknown {kind} plan {name!r} (candidates: {known})")
