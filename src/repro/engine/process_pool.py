"""Coordinator side of the process-parallel execution backend.

A :class:`ProcessBackend` is N worker *slots*, each a single-process
``ProcessPoolExecutor`` initialized with the shared-memory dataset
plane's manifest and the coordinator's mirrored session settings.
One-process-per-slot (rather than one N-process pool) is what makes
**digest-affinity routing** possible: a dispatch picks its slot as
``affinity % N``, so every request touching the same cache recipe
(same constraint set, same tile digest) lands on the same worker and
warms the same worker-private canvas cache — the process analogue of
PR 5's shared-cache hit/miss accounting, which is how serial and
process-parallel runs keep bit-identical hit/miss splits.

Failure contract (the PR 5 bar, across a process boundary):

- a worker exception ships in-band and re-raises here as itself;
- a worker *death* (kill fault, OOM) breaks its slot's pool — the
  dispatch retires the pool, respawns the slot (bumping its 1-based
  spawn generation, which re-snapshots fault rules via
  :func:`~repro.testing.faults.worker_rules`), and retries once;
- a second death raises :class:`WorkerLost` (``code="worker_lost"``),
  which the serve layer answers in-band — never a hang;
- the warm-key map is slot-tagged, so a respawn (fresh, cold caches)
  forgets exactly that slot's keys and batch prediction stays honest.

Lifecycle: backends register in a module-level live set and are
closed by ``atexit`` if the owner forgot; closing shuts every pool
down (joining the processes) and releases the coordinator's shared
plane, which unlinks the segments once the refcount drains.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import pickle
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable

from repro.engine.process_worker import init_worker, ping_task
from repro.resilience import ResilienceError
from repro.testing.faults import worker_rules

__all__ = ["ProcessBackend", "WorkerLost", "WorkerTaskError"]


class WorkerLost(ResilienceError):
    """A worker process died and its respawned replacement died too.

    The request was never executed (tasks are dispatched, not
    checkpointed mid-flight), so retrying the request is always safe.
    """

    code = "worker_lost"


class WorkerTaskError(RuntimeError):
    """A worker raised an exception that could not be pickled back.

    Carries the worker-side ``TypeName: message`` rendering; the
    original traceback stays in the worker's stderr.
    """


_live_backends: set["ProcessBackend"] = set()
_live_lock = threading.Lock()


def _atexit_close() -> None:
    with _live_lock:
        backends = list(_live_backends)
    for backend in backends:
        try:
            backend.close()
        except Exception:  # noqa: BLE001 — atexit must not raise
            pass


atexit.register(_atexit_close)


def _unwrap(envelope: dict) -> Any:
    if envelope["ok"]:
        return envelope["value"]
    error = envelope["error"]
    if isinstance(error, BaseException):
        raise error
    raise WorkerTaskError(str(error))


class _Call:
    """One dispatched task: a future plus the respawn-retry policy."""

    def __init__(
        self,
        backend: "ProcessBackend",
        slot: int,
        task: Callable[[dict], dict],
        payload: dict,
    ) -> None:
        self._backend = backend
        self._task = task
        self._payload = payload
        self.worker = slot
        self._pool, self._future = backend._submit(slot, task, payload)

    def result(self, timeout: float | None = None) -> Any:
        backend = self._backend
        try:
            return _unwrap(self._future.result(timeout))
        except BrokenExecutor as first:
            backend._retire(self.worker, self._pool)
            pool, future = backend._submit(
                self.worker, self._task, self._payload
            )
            try:
                return _unwrap(future.result(timeout))
            except BrokenExecutor as exc:
                backend._retire(self.worker, pool)
                raise WorkerLost(
                    f"worker slot {self.worker} died twice running "
                    f"{self._task.__name__} (first: {first!r})"
                ) from exc


class ProcessBackend:
    """A fixed fleet of worker slots over one shared dataset plane."""

    def __init__(
        self,
        workers: int,
        *,
        manifest: dict | None = None,
        settings: dict | None = None,
        plane: Any = None,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("process workers must be at least 1")
        self.workers = int(workers)
        self.manifest = manifest
        #: Registry generation the plane was published at (None when
        #: the backend runs plane-less, e.g. engine-owned).
        self.generation = (
            manifest["generation"] if manifest is not None else None
        )
        self.settings = dict(settings or {})
        # Fail at construction, not at first dispatch: an unpicklable
        # cost model or device object would otherwise surface as an
        # inscrutable broken pool.
        try:
            pickle.dumps(self.settings)
        except Exception as exc:
            raise ValueError(
                "process backend settings must pickle (cost_model and "
                f"device cross the process boundary): {exc}"
            ) from exc
        #: Coordinator-side SharedDatasetPlane (owned: released on
        #: close, which unlinks the segments).
        self.plane = plane
        #: Constraint-blend keys materialized worker-side, tagged with
        #: the slot that holds them — feeds the batch planner's
        #: cache-aware prediction, and a slot respawn forgets its keys.
        self._warm_keys: dict[tuple, int] = {}
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._pools: list[ProcessPoolExecutor | None] = [None] * workers
        self._spawns = [0] * workers
        self._lock = threading.Lock()
        self._closed = False
        with _live_lock:
            _live_backends.add(self)

    # -- warm-key map ----------------------------------------------------
    def note_warm(self, key: tuple, slot: int) -> None:
        self._warm_keys[key] = slot

    @property
    def warm_keys(self) -> set:
        return set(self._warm_keys)

    # -- dispatch --------------------------------------------------------
    def slot_for(self, affinity: int) -> int:
        return affinity % self.workers

    def dispatch(
        self, affinity: int, task: Callable[[dict], dict], payload: dict
    ) -> _Call:
        return _Call(self, self.slot_for(affinity), task, payload)

    def dispatch_to(
        self, slot: int, task: Callable[[dict], dict], payload: dict
    ) -> _Call:
        return _Call(self, slot % self.workers, task, payload)

    def broadcast(
        self, task: Callable[[dict], dict], payload: dict
    ) -> list[Any]:
        calls = [
            self.dispatch_to(slot, task, payload)
            for slot in range(self.workers)
        ]
        return [call.result() for call in calls]

    def worker_pids(self) -> list[int]:
        return [info["pid"] for info in self.broadcast(ping_task, {})]

    def attach_stats(self) -> list[dict]:
        """Per-slot ping payloads (pid, spawn generation, attach cost)."""
        return self.broadcast(ping_task, {})

    # -- pool management -------------------------------------------------
    def _submit(
        self, slot: int, task: Callable[[dict], dict], payload: dict
    ):
        for _ in range(2):
            with self._lock:
                if self._closed:
                    raise RuntimeError("process backend is closed")
                pool = self._pools[slot]
                if pool is None:
                    self._spawns[slot] += 1
                    generation = self._spawns[slot]
                    pool = ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=self._ctx,
                        initializer=init_worker,
                        initargs=(
                            self.manifest,
                            self.settings,
                            worker_rules(generation),
                            generation,
                        ),
                    )
                    self._pools[slot] = pool
            try:
                return pool, pool.submit(task, payload)
            except BrokenExecutor:
                # The pool broke between dispatches (e.g. an earlier
                # kill): retire it and loop once onto a fresh spawn.
                self._retire(slot, pool)
        raise WorkerLost(
            f"worker slot {slot} could not accept {task.__name__}"
        )

    def _retire(self, slot: int, pool: ProcessPoolExecutor) -> None:
        """Drop *pool* from its slot (if still current) and forget the
        slot's warm keys — a respawned worker starts cache-cold."""
        with self._lock:
            if self._pools[slot] is pool:
                self._pools[slot] = None
                for key in [
                    k for k, s in self._warm_keys.items() if s == slot
                ]:
                    del self._warm_keys[key]
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut every slot down (joining processes) and release the
        plane.  Idempotent; also run by atexit for forgotten backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pools = [p for p in self._pools if p is not None]
            self._pools = [None] * self.workers
            self._warm_keys.clear()
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if self.plane is not None:
            self.plane.release()
            self.plane = None
        with _live_lock:
            _live_backends.discard(self)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
