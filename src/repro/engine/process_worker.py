"""Worker-process side of the process-parallel execution backend.

Each worker slot of a :class:`~repro.engine.process_pool.ProcessBackend`
is a single-process ``ProcessPoolExecutor`` whose initializer runs
:func:`init_worker` exactly once: install the fault rules shipped for
this spawn generation, attach the shared-memory dataset plane
zero-copy, and build a private :class:`~repro.api.session.Session` +
:class:`~repro.engine.executor.QueryEngine` mirroring the
coordinator's settings (resolution, device, tiling, cost model, cache
knobs) — but **never** a result cache: the coordinator's spec-digest
gate is the only result cache, so a worker always executes.

Everything after init is one of the task functions below, each a
plain top-level callable (picklable by reference) that returns an
envelope ``{"ok": True, "value": ...}`` or ``{"ok": False, "error":
exc}`` — worker exceptions ship *in-band* whenever they pickle, so
the coordinator re-raises the original typed error (``SpecError``,
``DeadlineExceeded``, ``FaultInjected``, ...) instead of a broken
pool.  Only an actual process death (the ``kill`` fault action, a
real OOM kill) breaks the pool, and the backend's dispatch turns that
into respawn-and-retry-once, then
:class:`~repro.engine.process_pool.WorkerLost`.

Every task starts at the ``worker.execute`` fault seam and checks the
payload's registry generation against the attached plane's, so a
stale dispatch is rejected with
:class:`~repro.api.shm.StaleGeneration` rather than silently
answering from outdated data.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any

import numpy as np

# NOTE: repro.api modules import lazily inside the functions below —
# importing the api package here would be circular (api.session imports
# the engine package, which imports this module's pool).
from repro.core.tiling import (
    CoverageMemo,
    build_argmin_tile,
    build_circle_tile,
    build_polygon_tile,
)
from repro.testing.faults import install_worker_plan, maybe_fire

__all__ = [
    "build_tiles_task",
    "init_worker",
    "ping_task",
    "run_member_task",
    "run_spec_task",
    "scatter_shard_task",
]

#: Per-process worker state, populated once by :func:`init_worker`.
_STATE: dict[str, Any] = {
    "plane": None,
    "session": None,
    "engine": None,
    "spawn_generation": 0,
    "attach_s": 0.0,
}


def init_worker(
    manifest: dict | None,
    settings: dict,
    fault_rules: list,
    spawn_generation: int,
) -> None:
    """Process-pool initializer: faults, plane, session — in that order.

    Fault rules install first so even initialization-time seams could
    fire; the plane attaches next (zero-copy numpy views over the
    coordinator's segments); then a worker-private registry is filled
    with the attached payloads and wrapped in a Session/engine built
    from the coordinator's mirrored *settings*.
    """
    install_worker_plan(fault_rules)
    _STATE["spawn_generation"] = spawn_generation

    from repro.api.shm import AttachedPlane

    t0 = time.perf_counter()
    plane = AttachedPlane(manifest) if manifest is not None else None
    _STATE["plane"] = plane
    _STATE["attach_s"] = time.perf_counter() - t0

    # Imported here, not at module level: repro.api.session imports the
    # executor, which lazily imports this module — a top-level import
    # would be circular.
    from repro.api.registry import DatasetRegistry
    from repro.api.session import Session
    from repro.engine.executor import QueryEngine

    registry = DatasetRegistry(
        allow_files=bool(settings.get("allow_files", True))
    )
    if plane is not None:
        # The payloads were coerced/validated coordinator-side before
        # publishing; installing them directly (rather than through
        # register(), which would re-coerce and bump the generation)
        # keeps the attached arrays zero-copy and the worker's
        # generation bookkeeping out of the picture — the *plane*
        # generation is the one that matters, checked per task.
        for name, payload in plane.payloads().items():
            registry._entries[name] = payload

    engine_kwargs: dict[str, Any] = {}
    for knob in ("cost_model", "cache_capacity", "cache_max_bytes"):
        if settings.get(knob) is not None:
            engine_kwargs[knob] = settings[knob]
    engine = QueryEngine(**engine_kwargs)
    session = Session(
        registry,
        resolution=settings.get("resolution"),
        device=settings.get("device", "cpu"),
        tiling=settings.get("tiling"),
        engine=engine,
        max_join_members=settings.get("max_join_members"),
        deadline_ms=settings.get("deadline_ms"),
    )
    _STATE["engine"] = engine
    _STATE["session"] = session


def _check_generation(payload: dict) -> None:
    plane = _STATE["plane"]
    expected = payload.get("generation")
    if plane is not None and expected is not None:
        plane.check_generation(expected)


def _shippable(exc: BaseException) -> Any:
    """The exception itself when it pickles, else a string marker."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return f"{type(exc).__name__}: {exc}"


def _guarded(fn) -> dict:
    """Run *fn* behind the worker fault seam; ship errors in-band."""
    try:
        maybe_fire("worker.execute")
        return {"ok": True, "value": fn()}
    except Exception as exc:  # noqa: BLE001 — errors must cross in-band
        return {"ok": False, "error": _shippable(exc)}


# ----------------------------------------------------------------------
# Task functions (dispatched by the backend; picklable by reference)
# ----------------------------------------------------------------------

def run_spec_task(payload: dict) -> dict:
    """Run one full spec dict through the worker's Session.

    Used for geometry and join specs (which expand to several engine
    calls coordinator-side and therefore ship as whole specs).  Returns
    the family result, the reports the run produced (re-recorded on
    the coordinator's engine for ``take_reports``/``explain``), and
    any constraint-blend canvas keys the run newly materialized — the
    coordinator folds those into the backend's warm-key map so later
    batch predictions replay the serial cache state.
    """
    def run() -> dict:
        _check_generation(payload)
        session = _STATE["session"]
        engine = _STATE["engine"]
        session.take_reports()  # drop anything stale on this thread
        before = set(engine.cache.keys())
        result = session.run(payload["spec"], device=payload.get("device"))
        reports, _ = session.take_reports()
        warm = [
            key for key in engine.cache.keys()
            if key not in before
            and isinstance(key, tuple)
            and key and key[0] == "constraint-blend"
        ]
        return {"result": result, "reports": reports, "warm_keys": warm}

    return _guarded(run)


def run_member_task(payload: dict) -> dict:
    """Run one described engine member (``BATCH_KINDS`` dispatch).

    The kwargs arrive shm-encoded: dataset arrays come back as
    read-only zero-copy views over the attached plane.  A coordinator
    deadline ships as its *remaining* budget (monotonic clocks are
    system-wide, but the Deadline object itself carries a clock
    callable and is rebuilt fresh here so checkpoints work unchanged).
    """
    def run() -> Any:
        _check_generation(payload)
        from repro.api.shm import decode_payload
        from repro.engine.executor import BATCH_KINDS
        from repro.resilience import Deadline

        engine = _STATE["engine"]
        kwargs = decode_payload(payload["kwargs"], _STATE["plane"])
        budget_s = payload.get("deadline_budget_s")
        if budget_s is not None:
            kwargs["deadline"] = Deadline(budget_s)
        return getattr(engine, BATCH_KINDS[payload["kind"]])(**kwargs)

    return _guarded(run)


def build_tiles_task(payload: dict) -> dict:
    """Build a chunk of cold tiles for one tiled plan.

    Pure function of the payload: polygon tiles rebuild their coverage
    through a fresh :class:`CoverageMemo` (memoization only — results
    are bit-identical to the coordinator's), circle and argmin tiles
    are closed-form.  The returned tile canvases land in the
    coordinator's single-flight cache in deterministic order.
    """
    def run() -> list:
        _check_generation(payload)
        from repro.api.shm import decode_payload

        kind = payload["kind"]
        grid = payload["grid"]
        tiles = payload["tiles"]
        if kind == "polygon":
            entries = decode_payload(payload["entries"], _STATE["plane"])
            memo = CoverageMemo(
                grid.window, grid.height, grid.width, payload["device"]
            )
            acc = payload["accumulate_count"]
            return [
                build_polygon_tile(tile, entries, memo, acc)
                for tile in tiles
            ]
        if kind == "circle":
            center = payload["center"]
            radius = payload["radius"]
            return [
                build_circle_tile(tile, center, radius, grid)
                for tile in tiles
            ]
        if kind == "argmin":
            pts = decode_payload(payload["points"], _STATE["plane"])
            block = payload["block"]
            return [
                build_argmin_tile(tile, pts, grid, block)
                for tile in tiles
            ]
        raise ValueError(f"unknown tile kind {kind!r}")

    return _guarded(run)


def scatter_shard_task(payload: dict) -> dict:
    """One pixel-range shard of rasterjoin's bincount scatter.

    ``flat`` holds the flat cell indices falling in ``[lo, hi)`` in
    their original point order — np.bincount accumulates sequentially,
    so each bin's partial sum adds the same values in the same order
    as the unsharded scatter and the concatenated result is
    bit-identical.
    """
    def run() -> dict:
        _check_generation(payload)
        flat = payload["flat"] - payload["lo"]
        length = payload["hi"] - payload["lo"]
        out: dict[str, Any] = {
            "counts": np.bincount(flat, minlength=length)
        }
        weights = payload.get("weights")
        if weights is not None:
            out["sums"] = np.bincount(
                flat, weights=weights, minlength=length
            )
        return out

    return _guarded(run)


def ping_task(payload: dict) -> dict:
    """Liveness/introspection probe (pids, attach cost, plane state)."""
    def run() -> dict:
        plane = _STATE["plane"]
        return {
            "pid": os.getpid(),
            "spawn_generation": _STATE["spawn_generation"],
            "attach_s": _STATE["attach_s"],
            "datasets": (
                sorted(plane.dataset_names()) if plane is not None else []
            ),
        }

    return _guarded(run)
