"""Computational-geometry substrate.

This package implements, from scratch, every geometric primitive and
predicate that the canvas algebra (:mod:`repro.core`) and its baselines
need: typed geometries, bounding boxes, robust orientation and
intersection predicates, point-in-polygon tests (scalar and vectorized),
polygon clipping, ear-clipping triangulation, convex hulls, affine
transforms, distances, and WKT/GeoJSON serialization.
"""

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LineSegment,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.predicates import (
    orientation,
    point_in_polygon,
    point_in_ring,
    point_on_segment,
    points_in_polygon,
    polygon_intersects_polygon,
    segment_intersection,
    segments_intersect,
)
from repro.geometry.transforms import AffineTransform
from repro.geometry.convexhull import convex_hull
from repro.geometry.clipping import (
    clip_polygon_convex,
    clip_polygon_halfplane,
    clip_segment_rect,
)
from repro.geometry.triangulate import triangulate_polygon
from repro.geometry.distance import geometry_distance, point_segment_distance
from repro.geometry.wkt import from_wkt, to_wkt
from repro.geometry.geojson import from_geojson, to_geojson

__all__ = [
    "AffineTransform",
    "BoundingBox",
    "Geometry",
    "GeometryCollection",
    "LineSegment",
    "LineString",
    "LinearRing",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "clip_polygon_convex",
    "clip_polygon_halfplane",
    "clip_segment_rect",
    "convex_hull",
    "from_geojson",
    "from_wkt",
    "geometry_distance",
    "orientation",
    "point_in_polygon",
    "point_in_ring",
    "point_on_segment",
    "point_segment_distance",
    "points_in_polygon",
    "polygon_intersects_polygon",
    "segment_intersection",
    "segments_intersect",
    "to_geojson",
    "to_wkt",
    "triangulate_polygon",
]
