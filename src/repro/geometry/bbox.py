"""Axis-aligned bounding boxes (minimum bounding rectangles).

The MBR is the workhorse of the filtering stage in classical spatial query
processing (Section 1 of the paper) and of every index in
:mod:`repro.index`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Instances are immutable; all mutating-style operations return new
    boxes.  Degenerate boxes (zero width and/or height) are allowed — a
    point's MBR is degenerate.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"invalid bounding box: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(points: Iterable[tuple[float, float]]) -> "BoundingBox":
        """Smallest box containing every ``(x, y)`` pair in *points*."""
        xs: list[float] = []
        ys: list[float] = []
        for x, y in points:
            xs.append(float(x))
            ys.append(float(y))
        if not xs:
            raise ValueError("cannot build a bounding box from zero points")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def union_all(boxes: Sequence["BoundingBox"]) -> "BoundingBox":
        """Smallest box containing every box in *boxes*."""
        if not boxes:
            raise ValueError("cannot union zero bounding boxes")
        return BoundingBox(
            min(b.xmin for b in boxes),
            min(b.ymin for b in boxes),
            max(b.xmax for b in boxes),
            max(b.ymax for b in boxes),
        )

    # ------------------------------------------------------------------
    # Scalar properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def corners(self) -> list[tuple[float, float]]:
        """The four corners in counter-clockwise order from ``(xmin, ymin)``."""
        return [
            (self.xmin, self.ymin),
            (self.xmax, self.ymin),
            (self.xmax, self.ymax),
            (self.xmin, self.ymax),
        ]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """``True`` if ``(x, y)`` lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_box(self, other: "BoundingBox") -> bool:
        """``True`` if *other* lies fully inside (or equals) this box."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """``True`` if the boxes share at least one point (closed boxes)."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping region, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Grow (or shrink, for negative *margin*) every side by *margin*."""
        return BoundingBox(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def scaled(self, factor: float) -> "BoundingBox":
        """Scale about the center by *factor* (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        cx, cy = self.center
        hw = self.width * factor / 2.0
        hh = self.height * factor / 2.0
        return BoundingBox(cx - hw, cy - hh, cx + hw, cy + hh)

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from ``(x, y)`` to the box (0 when inside)."""
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return math.hypot(dx, dy)

    def __iter__(self) -> Iterator[float]:
        """Unpack as ``xmin, ymin, xmax, ymax``."""
        return iter((self.xmin, self.ymin, self.xmax, self.ymax))
