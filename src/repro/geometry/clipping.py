"""Polygon and segment clipping.

Used by the raster pipeline to restrict geometry to the canvas window
(the world-space viewport) before rasterization, and by the utility
operators to materialize half-space canvases over a finite window.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import LinearRing, Polygon

Coord = tuple[float, float]


def clip_polygon_halfplane(
    ring: Sequence[Coord], a: float, b: float, c: float
) -> list[Coord]:
    """Clip a ring against the half-plane ``a*x + b*y + c <= 0``.

    Sutherland–Hodgman single-plane step.  Returns the clipped ring's
    vertices (may be empty when the ring lies entirely outside).
    """
    if not ring:
        return []

    def inside(p: Coord) -> bool:
        return a * p[0] + b * p[1] + c <= 0.0

    def intersect(p: Coord, q: Coord) -> Coord:
        # Line through p,q meets a*x + b*y + c = 0.
        fp = a * p[0] + b * p[1] + c
        fq = a * q[0] + b * q[1] + c
        t = fp / (fp - fq)
        return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))

    output: list[Coord] = []
    n = len(ring)
    for i in range(n):
        current = ring[i]
        previous = ring[i - 1]
        cur_in = inside(current)
        prev_in = inside(previous)
        if cur_in:
            if not prev_in:
                output.append(intersect(previous, current))
            output.append(current)
        elif prev_in:
            output.append(intersect(previous, current))
    return output


def clip_polygon_convex(
    ring: Sequence[Coord], clip_ring: Sequence[Coord]
) -> list[Coord]:
    """Sutherland–Hodgman clip of *ring* by a convex *clip_ring*.

    *clip_ring* must be convex and counter-clockwise; *ring* may be any
    simple polygon (the result can be degenerate for concave subjects,
    which is inherent to Sutherland–Hodgman).
    """
    output = list(ring)
    n = len(clip_ring)
    for i in range(n):
        if not output:
            return []
        ax, ay = clip_ring[i]
        bx, by = clip_ring[(i + 1) % n]
        # Keep the half-plane to the left of edge (a->b):
        # cross((b-a), (p-a)) >= 0, i.e. -cross(...) <= 0.
        ca = by - ay
        cb = -(bx - ax)
        cc = -(ca * ax + cb * ay)
        output = clip_polygon_halfplane(output, ca, cb, cc)
    return output


def clip_polygon_bbox(ring: Sequence[Coord], box: BoundingBox) -> list[Coord]:
    """Clip a ring to an axis-aligned box (convex clip specialization)."""
    return clip_polygon_convex(ring, box.corners)


def clip_polygon_to_window(polygon: Polygon, box: BoundingBox) -> Polygon | None:
    """Clip a polygon (shell and holes) to a window box.

    Returns ``None`` when the polygon lies entirely outside the window.
    Holes that survive clipping are retained.
    """
    shell = clip_polygon_bbox(polygon.shell.coords, box)
    if len(shell) < 3:
        return None
    holes = []
    for hole in polygon.holes:
        clipped = clip_polygon_bbox(hole.coords, box)
        if len(clipped) >= 3:
            holes.append(LinearRing(clipped))
    return Polygon(LinearRing(shell), holes)


# ----------------------------------------------------------------------
# Cohen–Sutherland segment clipping
# ----------------------------------------------------------------------
_INSIDE, _LEFT, _RIGHT, _BOTTOM, _TOP = 0, 1, 2, 4, 8


def _outcode(x: float, y: float, box: BoundingBox) -> int:
    code = _INSIDE
    if x < box.xmin:
        code |= _LEFT
    elif x > box.xmax:
        code |= _RIGHT
    if y < box.ymin:
        code |= _BOTTOM
    elif y > box.ymax:
        code |= _TOP
    return code


def clip_segment_rect(
    ax: float, ay: float, bx: float, by: float, box: BoundingBox
) -> tuple[Coord, Coord] | None:
    """Cohen–Sutherland clip of segment ``ab`` to *box*.

    Returns the clipped endpoints, or ``None`` when the segment misses
    the box entirely.
    """
    code_a = _outcode(ax, ay, box)
    code_b = _outcode(bx, by, box)

    while True:
        if not (code_a | code_b):
            return ((ax, ay), (bx, by))
        if code_a & code_b:
            return None
        out = code_a if code_a else code_b
        if out & _TOP:
            x = ax + (bx - ax) * (box.ymax - ay) / (by - ay)
            y = box.ymax
        elif out & _BOTTOM:
            x = ax + (bx - ax) * (box.ymin - ay) / (by - ay)
            y = box.ymin
        elif out & _RIGHT:
            y = ay + (by - ay) * (box.xmax - ax) / (bx - ax)
            x = box.xmax
        else:  # _LEFT
            y = ay + (by - ay) * (box.xmin - ax) / (bx - ax)
            x = box.xmin
        if out == code_a:
            ax, ay = x, y
            code_a = _outcode(ax, ay, box)
        else:
            bx, by = x, y
            code_b = _outcode(bx, by, box)
