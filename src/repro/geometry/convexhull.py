"""Convex hull (Andrew's monotone chain).

One of the computational-geometry queries Section 4.5 of the paper
delegates to stored procedures; also used by polygon generators to
produce convex constraint shapes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

Coord = tuple[float, float]


def _cross(o: Coord, a: Coord, b: Coord) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Iterable[Sequence[float]]) -> list[Coord]:
    """Convex hull in counter-clockwise order, no repeated last vertex.

    Collinear points on hull edges are dropped.  Degenerate inputs
    (fewer than three distinct points, or all collinear) return the
    distinct points in sorted order.
    """
    pts = sorted({(float(p[0]), float(p[1])) for p in points})
    if len(pts) <= 2:
        return pts

    lower: list[Coord] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[Coord] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return pts
    return hull
