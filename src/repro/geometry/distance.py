"""Euclidean distance functions between geometries.

Distance-based selections and distance joins (Sections 4.1 and 4.2)
reduce to circles in the canvas algebra, but exact distances are still
needed by the kNN baseline, the hybrid boundary refinement, and tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LineSegment,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


def point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def points_segment_distance(
    xs: np.ndarray, ys: np.ndarray,
    ax: float, ay: float, bx: float, by: float,
) -> np.ndarray:
    """Vectorized distance from many points to one segment."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return np.hypot(xs - ax, ys - ay)
    t = ((xs - ax) * dx + (ys - ay) * dy) / seg_len_sq
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(xs - (ax + t * dx), ys - (ay + t * dy))


def point_ring_distance(
    px: float, py: float, ring: list[tuple[float, float]]
) -> float:
    """Distance from a point to the boundary of a ring."""
    best = math.inf
    n = len(ring)
    for i in range(n):
        ax, ay = ring[i]
        bx, by = ring[(i + 1) % n]
        best = min(best, point_segment_distance(px, py, ax, ay, bx, by))
    return best


def point_polygon_distance(px: float, py: float, polygon: Polygon) -> float:
    """Distance from a point to a polygonal region (0 when inside)."""
    if polygon.contains_point(px, py):
        return 0.0
    best = point_ring_distance(px, py, polygon.shell.coords)
    for hole in polygon.holes:
        best = min(best, point_ring_distance(px, py, hole.coords))
    return best


def point_linestring_distance(px: float, py: float, line: LineString) -> float:
    best = math.inf
    for seg in line.segments():
        best = min(
            best, point_segment_distance(px, py, seg.ax, seg.ay, seg.bx, seg.by)
        )
    return best


def segment_segment_distance(a: LineSegment, b: LineSegment) -> float:
    """Distance between two closed segments (0 when intersecting)."""
    if a.intersects(b):
        return 0.0
    return min(
        point_segment_distance(a.ax, a.ay, b.ax, b.ay, b.bx, b.by),
        point_segment_distance(a.bx, a.by, b.ax, b.ay, b.bx, b.by),
        point_segment_distance(b.ax, b.ay, a.ax, a.ay, a.bx, a.by),
        point_segment_distance(b.bx, b.by, a.ax, a.ay, a.bx, a.by),
    )


def geometry_distance(a: Geometry, b: Geometry) -> float:
    """Euclidean distance between two geometries (0 when intersecting).

    Dispatches on type pairs; collections take the minimum over members.
    """
    if isinstance(a, GeometryCollection):
        return min(geometry_distance(g, b) for g in a.geometries)
    if isinstance(b, GeometryCollection):
        return min(geometry_distance(a, g) for g in b.geometries)
    if isinstance(a, (MultiPoint, MultiLineString, MultiPolygon)):
        return min(geometry_distance(part, b) for part in _parts(a))
    if isinstance(b, (MultiPoint, MultiLineString, MultiPolygon)):
        return min(geometry_distance(a, part) for part in _parts(b))

    if isinstance(a, Point):
        return _point_to(a, b)
    if isinstance(b, Point):
        return _point_to(b, a)

    if isinstance(a, LineSegment) and isinstance(b, LineSegment):
        return segment_segment_distance(a, b)
    if isinstance(a, LineString):
        return min(geometry_distance(seg, b) for seg in a.segments())
    if isinstance(b, LineString):
        return min(geometry_distance(a, seg) for seg in b.segments())

    if isinstance(a, Polygon) and isinstance(b, Polygon):
        from repro.geometry.predicates import polygon_intersects_polygon

        if polygon_intersects_polygon(a, b):
            return 0.0
        best = math.inf
        for x, y in a.shell.coords:
            best = min(best, point_polygon_distance(x, y, b))
        for x, y in b.shell.coords:
            best = min(best, point_polygon_distance(x, y, a))
        # Also check segment pairs between the shells for the true minimum.
        a_ring = a.shell.coords
        b_ring = b.shell.coords
        for i in range(len(a_ring)):
            seg_a = LineSegment(a_ring[i], a_ring[(i + 1) % len(a_ring)])
            for j in range(len(b_ring)):
                seg_b = LineSegment(b_ring[j], b_ring[(j + 1) % len(b_ring)])
                best = min(best, segment_segment_distance(seg_a, seg_b))
        return best

    if isinstance(a, Polygon) and isinstance(b, LineSegment):
        if a.contains_point(b.ax, b.ay) or a.contains_point(b.bx, b.by):
            return 0.0
        best = math.inf
        ring = a.shell.coords
        for i in range(len(ring)):
            seg = LineSegment(ring[i], ring[(i + 1) % len(ring)])
            best = min(best, segment_segment_distance(seg, b))
        return best
    if isinstance(a, LineSegment) and isinstance(b, Polygon):
        return geometry_distance(b, a)

    raise TypeError(
        f"unsupported distance pair: {type(a).__name__}, {type(b).__name__}"
    )


def _parts(geom: Geometry) -> list[Geometry]:
    if isinstance(geom, MultiPoint):
        return [Point(x, y) for x, y in geom.coords]
    if isinstance(geom, MultiLineString):
        return list(geom.lines)
    if isinstance(geom, MultiPolygon):
        return list(geom.polygons)
    raise TypeError(type(geom).__name__)


def _point_to(p: Point, other: Geometry) -> float:
    if isinstance(other, Point):
        return p.distance_to(other)
    if isinstance(other, LineSegment):
        return point_segment_distance(
            p.x, p.y, other.ax, other.ay, other.bx, other.by
        )
    if isinstance(other, LineString):
        return point_linestring_distance(p.x, p.y, other)
    if isinstance(other, Polygon):
        return point_polygon_distance(p.x, p.y, other)
    if isinstance(other, (MultiPoint, MultiLineString, MultiPolygon)):
        return min(_point_to(p, part) for part in _parts(other))
    if isinstance(other, GeometryCollection):
        return min(_point_to(p, g) for g in other.geometries)
    raise TypeError(f"unsupported geometry type: {type(other).__name__}")
