"""GeoJSON (RFC 7946) serialization for the geometry types."""

from __future__ import annotations

import json
from typing import Any

from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LinearRing,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class GeoJSONError(ValueError):
    """Raised when a GeoJSON document is malformed."""


def _ring_coords(ring: LinearRing) -> list[list[float]]:
    coords = [[x, y] for x, y in ring.coords]
    coords.append(list(coords[0]))  # GeoJSON rings are explicitly closed
    return coords


def _polygon_coords(polygon: Polygon) -> list[list[list[float]]]:
    rings = [_ring_coords(polygon.shell)]
    rings.extend(_ring_coords(h) for h in polygon.holes)
    return rings


def to_geojson(geometry: Geometry) -> dict[str, Any]:
    """Convert a geometry to a GeoJSON geometry mapping."""
    if isinstance(geometry, Point):
        return {"type": "Point", "coordinates": [geometry.x, geometry.y]}
    if isinstance(geometry, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [[x, y] for x, y in geometry.coords],
        }
    if isinstance(geometry, (LineString,)):
        return {
            "type": "LineString",
            "coordinates": [[x, y] for x, y in geometry.coords],
        }
    if isinstance(geometry, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [
                [[x, y] for x, y in line.coords] for line in geometry.lines
            ],
        }
    if isinstance(geometry, Polygon):
        return {"type": "Polygon", "coordinates": _polygon_coords(geometry)}
    if isinstance(geometry, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [_polygon_coords(p) for p in geometry.polygons],
        }
    if isinstance(geometry, GeometryCollection):
        return {
            "type": "GeometryCollection",
            "geometries": [to_geojson(g) for g in geometry.geometries],
        }
    raise TypeError(f"unsupported geometry type: {type(geometry).__name__}")


def from_geojson(obj: dict[str, Any] | str) -> Geometry:
    """Parse a GeoJSON geometry mapping (or JSON string) into a geometry."""
    if isinstance(obj, str):
        obj = json.loads(obj)
    if not isinstance(obj, dict) or "type" not in obj:
        raise GeoJSONError("not a GeoJSON geometry object")
    kind = obj["type"]

    if kind == "Point":
        x, y = obj["coordinates"][:2]
        return Point(x, y)
    if kind == "MultiPoint":
        return MultiPoint(obj["coordinates"])
    if kind == "LineString":
        return LineString(obj["coordinates"])
    if kind == "MultiLineString":
        return MultiLineString([LineString(c) for c in obj["coordinates"]])
    if kind == "Polygon":
        rings = obj["coordinates"]
        if not rings:
            raise GeoJSONError("polygon with no rings")
        return Polygon(
            LinearRing(rings[0]), [LinearRing(r) for r in rings[1:]]
        )
    if kind == "MultiPolygon":
        polygons = []
        for rings in obj["coordinates"]:
            if not rings:
                raise GeoJSONError("polygon with no rings")
            polygons.append(
                Polygon(LinearRing(rings[0]), [LinearRing(r) for r in rings[1:]])
            )
        return MultiPolygon(polygons)
    if kind == "GeometryCollection":
        return GeometryCollection(
            [from_geojson(g) for g in obj.get("geometries", [])]
        )
    raise GeoJSONError(f"unsupported GeoJSON type: {kind}")


def feature(geometry: Geometry, properties: dict[str, Any] | None = None) -> dict:
    """Wrap a geometry in a GeoJSON Feature."""
    return {
        "type": "Feature",
        "geometry": to_geojson(geometry),
        "properties": properties or {},
    }


def feature_collection(features: list[dict]) -> dict:
    """Wrap features in a GeoJSON FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}
