"""Geometric predicates: orientation, intersection and containment tests.

These are the exact scalar tests used by the CPU baselines and by the
hybrid boundary refinement of the canvas prototype (Section 5.1 of the
paper), plus NumPy-vectorized batch variants used by the simulated-GPU
baseline (all points tested against all polygon edges in parallel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.geometry.primitives import Polygon

# Relative tolerance used to absorb floating-point noise in collinearity
# tests.  The inputs we care about (sensor coordinates, hand-drawn query
# polygons) are far from adversarial, so a scaled epsilon is sufficient;
# exact rational arithmetic would be overkill for this substrate.
_EPS = 1e-12


def orientation(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> int:
    """Orientation of the ordered triple ``a, b, c``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0``
    for (numerically) collinear points.
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    scale = abs(bx - ax) + abs(by - ay) + abs(cx - ax) + abs(cy - ay)
    if abs(cross) <= _EPS * max(scale, 1.0) ** 2:
        return 0
    return 1 if cross > 0 else -1


def point_on_segment(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> bool:
    """``True`` if point ``p`` lies on the closed segment ``ab``."""
    if orientation(ax, ay, bx, by, px, py) != 0:
        return False
    return (
        min(ax, bx) - _EPS <= px <= max(ax, bx) + _EPS
        and min(ay, by) - _EPS <= py <= max(ay, by) + _EPS
    )


def segments_intersect(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """``True`` if closed segments ``ab`` and ``cd`` share a point."""
    o1 = orientation(ax, ay, bx, by, cx, cy)
    o2 = orientation(ax, ay, bx, by, dx, dy)
    o3 = orientation(cx, cy, dx, dy, ax, ay)
    o4 = orientation(cx, cy, dx, dy, bx, by)

    if o1 != o2 and o3 != o4:
        return True

    # Collinear overlap / endpoint-touching cases.
    if o1 == 0 and point_on_segment(cx, cy, ax, ay, bx, by):
        return True
    if o2 == 0 and point_on_segment(dx, dy, ax, ay, bx, by):
        return True
    if o3 == 0 and point_on_segment(ax, ay, cx, cy, dx, dy):
        return True
    if o4 == 0 and point_on_segment(bx, by, cx, cy, dx, dy):
        return True
    return False


def segment_intersection(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> tuple[float, float] | None:
    """Intersection point of segments ``ab`` and ``cd``.

    Returns ``None`` when the segments do not cross or are (numerically)
    parallel.  For collinear overlapping segments one witness point is
    returned.
    """
    r_x, r_y = bx - ax, by - ay
    s_x, s_y = dx - cx, dy - cy
    denom = r_x * s_y - r_y * s_x
    qp_x, qp_y = cx - ax, cy - ay

    if abs(denom) <= _EPS * max(abs(r_x) + abs(r_y) + abs(s_x) + abs(s_y), 1.0) ** 2:
        # Parallel.  Report a witness for collinear overlap, else None.
        if not segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
            return None
        for px, py in ((cx, cy), (dx, dy), (ax, ay), (bx, by)):
            if point_on_segment(px, py, ax, ay, bx, by) and point_on_segment(
                px, py, cx, cy, dx, dy
            ):
                return (px, py)
        return None

    t = (qp_x * s_y - qp_y * s_x) / denom
    u = (qp_x * r_y - qp_y * r_x) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return (ax + t * r_x, ay + t * r_y)
    return None


# ----------------------------------------------------------------------
# Point-in-ring / point-in-polygon
# ----------------------------------------------------------------------
def point_on_ring(px: float, py: float, ring: Sequence[tuple[float, float]]) -> bool:
    """``True`` if ``p`` lies on an edge of the (closed) *ring*."""
    n = len(ring)
    for i in range(n):
        ax, ay = ring[i]
        bx, by = ring[(i + 1) % n]
        if point_on_segment(px, py, ax, ay, bx, by):
            return True
    return False


def point_in_ring(
    px: float, py: float, ring: Sequence[tuple[float, float]]
) -> bool:
    """Ray-casting containment test against a simple ring.

    The ring is a sequence of vertices; the closing edge from the last
    vertex back to the first is implicit.  Boundary points count as
    inside (closed-region semantics, matching ``INSIDE`` in the paper's
    SQL examples).
    """
    if point_on_ring(px, py, ring):
        return True
    inside = False
    n = len(ring)
    j = n - 1
    for i in range(n):
        xi, yi = ring[i]
        xj, yj = ring[j]
        if (yi > py) != (yj > py):
            x_cross = (xj - xi) * (py - yi) / (yj - yi) + xi
            if px < x_cross:
                inside = not inside
        j = i
    return inside


def point_in_polygon(px: float, py: float, polygon: "Polygon") -> bool:
    """Containment test honouring polygon holes.

    A point inside a hole is *outside* the polygon; a point on the hole
    boundary is on the polygon boundary and therefore inside.
    """
    shell = polygon.shell.coords
    if not point_in_ring(px, py, shell):
        return False
    for hole in polygon.holes:
        coords = hole.coords
        if point_on_ring(px, py, coords):
            return True
        if point_in_ring(px, py, coords):
            return False
    return True


def points_in_ring(
    xs: np.ndarray, ys: np.ndarray, ring: Sequence[tuple[float, float]]
) -> np.ndarray:
    """Vectorized ray-casting: test many points against one ring.

    This is the data-parallel kernel the traditional GPU baseline is
    built from — every point is tested against every ring edge with no
    data-dependent branching, exactly the shape of work a GPU thread
    block performs.  Boundary points may fall on either side due to
    floating-point edge cases; exact boundary handling is the job of the
    hybrid refinement (:mod:`repro.core.accuracy`).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    coords = np.asarray(ring, dtype=np.float64)
    x1 = coords[:, 0]
    y1 = coords[:, 1]
    x2 = np.roll(x1, -1)
    y2 = np.roll(y1, -1)

    # For each edge, which points' horizontal rays cross it.
    # Shapes: points (n, 1) against edges (1, m).
    px = xs[:, None]
    py = ys[:, None]
    crosses = (y1[None, :] > py) != (y2[None, :] > py)
    # Guard the division: edges parallel to the ray never satisfy
    # `crosses`, so the slope value there is irrelevant.
    dy = y2 - y1
    dy = np.where(dy == 0.0, 1.0, dy)
    x_cross = (x2 - x1)[None, :] * (py - y1[None, :]) / dy[None, :] + x1[None, :]
    hits = crosses & (px < x_cross)
    return (hits.sum(axis=1) % 2).astype(bool)


def points_in_polygon(
    xs: np.ndarray, ys: np.ndarray, polygon: "Polygon"
) -> np.ndarray:
    """Vectorized containment of many points in a polygon with holes."""
    inside = points_in_ring(xs, ys, polygon.shell.coords)
    for hole in polygon.holes:
        inside &= ~points_in_ring(xs, ys, hole.coords)
    return inside


# ----------------------------------------------------------------------
# Polygon-polygon predicates
# ----------------------------------------------------------------------
def _rings_edges_intersect(
    ring_a: Sequence[tuple[float, float]], ring_b: Sequence[tuple[float, float]]
) -> bool:
    na, nb = len(ring_a), len(ring_b)
    for i in range(na):
        ax, ay = ring_a[i]
        bx, by = ring_a[(i + 1) % na]
        for j in range(nb):
            cx, cy = ring_b[j]
            dx, dy = ring_b[(j + 1) % nb]
            if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
                return True
    return False


def polygon_intersects_polygon(a: "Polygon", b: "Polygon") -> bool:
    """``True`` if the closed regions of *a* and *b* share a point.

    Covers all cases: boundary crossings, full containment of either
    polygon in the other, and containment inside holes (which does *not*
    count as intersection).
    """
    if not a.bounds.intersects(b.bounds):
        return False
    if _rings_edges_intersect(a.shell.coords, b.shell.coords):
        return True
    # No shell crossings: either disjoint or one shell inside the other.
    ax, ay = a.shell.coords[0]
    bx, by = b.shell.coords[0]
    if point_in_polygon(ax, ay, b) or point_in_polygon(bx, by, a):
        return True
    # A vertex on a hole boundary may sit exactly on the other boundary.
    for hole in a.holes:
        if _rings_edges_intersect(hole.coords, b.shell.coords):
            return True
    for hole in b.holes:
        if _rings_edges_intersect(hole.coords, a.shell.coords):
            return True
    return False


def linestring_intersects_polygon(coords: Sequence[tuple[float, float]],
                                  polygon: "Polygon") -> bool:
    """``True`` if a polyline shares a point with a closed polygon.

    Either some vertex lies inside the polygon, or some polyline
    segment crosses a ring of the polygon (a segment may also pass
    through a hole wall, which still touches the polygon's closure).
    """
    if any(point_in_polygon(x, y, polygon) for x, y in coords):
        return True
    rings = [polygon.shell.coords] + [h.coords for h in polygon.holes]
    for (ax, ay), (bx, by) in zip(coords, coords[1:]):
        for ring in rings:
            n = len(ring)
            for i in range(n):
                cx, cy = ring[i]
                dx, dy = ring[(i + 1) % n]
                if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
                    return True
    return False


def ring_signed_area(ring: Sequence[tuple[float, float]]) -> float:
    """Shoelace signed area: positive for counter-clockwise rings."""
    area = 0.0
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return area / 2.0


def ring_is_ccw(ring: Sequence[tuple[float, float]]) -> bool:
    """``True`` when the ring winds counter-clockwise."""
    return ring_signed_area(ring) > 0.0
