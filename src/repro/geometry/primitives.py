"""Typed geometries: the concrete 0-, 1- and 2-primitives of the model.

Definition 2 of the paper calls a *d-primitive* a d-manifold; in real
data sets these are points (d=0), polylines (d=1) and polygonal regions
(d=2).  A *geometric object* (Definition 1) is a collection of
primitives, realized here by :class:`GeometryCollection` and the
``Multi*`` types.

Coordinates are plain ``(x, y)`` float tuples; bulk accessors return
NumPy arrays so the raster pipeline can consume geometry without
per-vertex Python overhead.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import (
    point_in_polygon,
    point_on_ring,
    ring_is_ccw,
    ring_signed_area,
    segments_intersect,
)

Coord = tuple[float, float]


def _as_coords(points: Iterable[Sequence[float]]) -> list[Coord]:
    coords = [(float(p[0]), float(p[1])) for p in points]
    return coords


class Geometry:
    """Abstract base for all geometry types.

    Subclasses expose:

    - :attr:`dimension` — the manifold dimension d in {0, 1, 2},
    - :attr:`bounds` — the MBR,
    - :meth:`vertex_array` — an ``(n, 2)`` float64 array of vertices.
    """

    #: Manifold dimension of the primitive (overridden by subclasses).
    dimension: int = -1

    @property
    def bounds(self) -> BoundingBox:
        raise NotImplementedError

    def vertex_array(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        return len(self.vertex_array()) == 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        name = type(self).__name__
        n = len(self.vertex_array())
        return f"<{name} vertices={n} bounds={tuple(self.bounds)}>"


class Point(Geometry):
    """A 0-primitive: a single location."""

    dimension = 0

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox(self.x, self.y, self.x, self.y)

    def vertex_array(self) -> np.ndarray:
        return np.array([[self.x, self.y]], dtype=np.float64)

    def distance_to(self, other: "Point") -> float:
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Point) and self.x == other.x and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __iter__(self) -> Iterator[float]:
        return iter((self.x, self.y))


class MultiPoint(Geometry):
    """A collection of 0-primitives forming one geometric object."""

    dimension = 0

    def __init__(self, points: Iterable[Sequence[float]]) -> None:
        self.coords: list[Coord] = _as_coords(points)
        if not self.coords:
            raise ValueError("MultiPoint requires at least one point")

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points(self.coords)

    def vertex_array(self) -> np.ndarray:
        return np.asarray(self.coords, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.coords)

    def __iter__(self) -> Iterator[Point]:
        return (Point(x, y) for x, y in self.coords)


class LineSegment(Geometry):
    """A straight 1-primitive between two endpoints."""

    dimension = 1

    __slots__ = ("ax", "ay", "bx", "by")

    def __init__(self, a: Sequence[float], b: Sequence[float]) -> None:
        self.ax, self.ay = float(a[0]), float(a[1])
        self.bx, self.by = float(b[0]), float(b[1])

    @property
    def length(self) -> float:
        return float(np.hypot(self.bx - self.ax, self.by - self.ay))

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points([(self.ax, self.ay), (self.bx, self.by)])

    def vertex_array(self) -> np.ndarray:
        return np.array(
            [[self.ax, self.ay], [self.bx, self.by]], dtype=np.float64
        )

    def intersects(self, other: "LineSegment") -> bool:
        return segments_intersect(
            self.ax, self.ay, self.bx, self.by,
            other.ax, other.ay, other.bx, other.by,
        )


class LineString(Geometry):
    """A polyline 1-primitive."""

    dimension = 1

    def __init__(self, points: Iterable[Sequence[float]]) -> None:
        self.coords: list[Coord] = _as_coords(points)
        if len(self.coords) < 2:
            raise ValueError("LineString requires at least two points")

    @property
    def length(self) -> float:
        arr = self.vertex_array()
        return float(np.hypot(np.diff(arr[:, 0]), np.diff(arr[:, 1])).sum())

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points(self.coords)

    def vertex_array(self) -> np.ndarray:
        return np.asarray(self.coords, dtype=np.float64)

    def segments(self) -> Iterator[LineSegment]:
        for a, b in zip(self.coords, self.coords[1:]):
            yield LineSegment(a, b)

    def __len__(self) -> int:
        return len(self.coords)


class MultiLineString(Geometry):
    """A collection of polylines forming one geometric object."""

    dimension = 1

    def __init__(self, lines: Iterable[LineString | Iterable[Sequence[float]]]) -> None:
        self.lines: list[LineString] = [
            line if isinstance(line, LineString) else LineString(line)
            for line in lines
        ]
        if not self.lines:
            raise ValueError("MultiLineString requires at least one line")

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.union_all([line.bounds for line in self.lines])

    def vertex_array(self) -> np.ndarray:
        return np.concatenate([line.vertex_array() for line in self.lines])

    def __len__(self) -> int:
        return len(self.lines)

    def __iter__(self) -> Iterator[LineString]:
        return iter(self.lines)


class LinearRing(Geometry):
    """A closed simple polyline bounding an area.

    The closing edge (last vertex back to first) is implicit; a
    duplicated closing vertex in the input is dropped.
    """

    dimension = 1

    def __init__(self, points: Iterable[Sequence[float]]) -> None:
        coords = _as_coords(points)
        if len(coords) >= 2 and coords[0] == coords[-1]:
            coords = coords[:-1]
        if len(coords) < 3:
            raise ValueError("LinearRing requires at least three distinct points")
        self.coords: list[Coord] = coords

    @property
    def signed_area(self) -> float:
        return ring_signed_area(self.coords)

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def is_ccw(self) -> bool:
        return ring_is_ccw(self.coords)

    def reversed(self) -> "LinearRing":
        return LinearRing(list(reversed(self.coords)))

    def oriented(self, ccw: bool = True) -> "LinearRing":
        """A copy winding counter-clockwise (or clockwise)."""
        if self.is_ccw == ccw:
            return self
        return self.reversed()

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points(self.coords)

    def vertex_array(self) -> np.ndarray:
        return np.asarray(self.coords, dtype=np.float64)

    def closed_array(self) -> np.ndarray:
        """Vertex array with the first vertex repeated at the end."""
        arr = self.vertex_array()
        return np.concatenate([arr, arr[:1]])

    def contains_point(self, x: float, y: float) -> bool:
        from repro.geometry.predicates import point_in_ring

        return point_in_ring(x, y, self.coords)

    def is_simple(self) -> bool:
        """``True`` when no two non-adjacent edges intersect."""
        n = len(self.coords)
        for i in range(n):
            ax, ay = self.coords[i]
            bx, by = self.coords[(i + 1) % n]
            for j in range(i + 1, n):
                # Skip adjacent edges (they share a vertex by design).
                if j == i or (j + 1) % n == i or (i + 1) % n == j:
                    continue
                cx, cy = self.coords[j]
                dx, dy = self.coords[(j + 1) % n]
                if segments_intersect(ax, ay, bx, by, cx, cy, dx, dy):
                    return False
        return True

    def __len__(self) -> int:
        return len(self.coords)


class Polygon(Geometry):
    """A 2-primitive: a shell ring with zero or more hole rings.

    The shell is normalized to counter-clockwise and holes to clockwise
    winding, the convention the scanline rasterizer and triangulator
    rely on.
    """

    dimension = 2

    def __init__(
        self,
        shell: LinearRing | Iterable[Sequence[float]],
        holes: Iterable[LinearRing | Iterable[Sequence[float]]] = (),
    ) -> None:
        shell_ring = shell if isinstance(shell, LinearRing) else LinearRing(shell)
        self.shell: LinearRing = shell_ring.oriented(ccw=True)
        self.holes: list[LinearRing] = [
            (h if isinstance(h, LinearRing) else LinearRing(h)).oriented(ccw=False)
            for h in holes
        ]

    @property
    def area(self) -> float:
        return self.shell.area - sum(h.area for h in self.holes)

    @property
    def bounds(self) -> BoundingBox:
        return self.shell.bounds

    def vertex_array(self) -> np.ndarray:
        parts = [self.shell.vertex_array()]
        parts.extend(h.vertex_array() for h in self.holes)
        return np.concatenate(parts)

    def rings(self) -> Iterator[LinearRing]:
        yield self.shell
        yield from self.holes

    def contains_point(self, x: float, y: float) -> bool:
        return point_in_polygon(x, y, self)

    def on_boundary(self, x: float, y: float) -> bool:
        return any(point_on_ring(x, y, ring.coords) for ring in self.rings())

    def representative_point(self) -> Point:
        """An interior point (the shell centroid if inside, else a scan).

        Useful for containment seeding in polygon-polygon predicates.
        """
        arr = self.shell.vertex_array()
        cx, cy = float(arr[:, 0].mean()), float(arr[:, 1].mean())
        if self.contains_point(cx, cy) and not self.on_boundary(cx, cy):
            return Point(cx, cy)
        # Scan midpoints between consecutive-vertex pairs until one hits
        # the interior; guaranteed to terminate for simple polygons.
        b = self.bounds
        for frac in (0.5, 0.25, 0.75, 0.4, 0.6, 0.1, 0.9):
            y = b.ymin + frac * b.height
            xs = np.linspace(b.xmin, b.xmax, 64)
            for x in xs:
                if self.contains_point(float(x), y) and not self.on_boundary(
                    float(x), y
                ):
                    return Point(float(x), y)
        raise ValueError("could not find an interior point (degenerate polygon?)")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<Polygon shell={len(self.shell)} holes={len(self.holes)} "
            f"area={self.area:.4g}>"
        )


class MultiPolygon(Geometry):
    """A collection of polygons forming one geometric object."""

    dimension = 2

    def __init__(self, polygons: Iterable[Polygon]) -> None:
        self.polygons: list[Polygon] = list(polygons)
        if not self.polygons:
            raise ValueError("MultiPolygon requires at least one polygon")

    @property
    def area(self) -> float:
        return sum(p.area for p in self.polygons)

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.union_all([p.bounds for p in self.polygons])

    def vertex_array(self) -> np.ndarray:
        return np.concatenate([p.vertex_array() for p in self.polygons])

    def contains_point(self, x: float, y: float) -> bool:
        return any(p.contains_point(x, y) for p in self.polygons)

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)


class GeometryCollection(Geometry):
    """A heterogeneous geometric object (Definition 1, Figure 3).

    May mix primitives of different dimensions — e.g. the paper's
    Figure 3 object: two polygons joined by a line, plus a point.
    """

    def __init__(self, geometries: Iterable[Geometry]) -> None:
        self.geometries: list[Geometry] = list(geometries)
        if not self.geometries:
            raise ValueError("GeometryCollection requires at least one geometry")

    @property
    def dimension(self) -> int:  # type: ignore[override]
        return max(g.dimension for g in self.geometries)

    @property
    def bounds(self) -> BoundingBox:
        return BoundingBox.union_all([g.bounds for g in self.geometries])

    def vertex_array(self) -> np.ndarray:
        return np.concatenate([g.vertex_array() for g in self.geometries])

    def primitives_of_dimension(self, d: int) -> list[Geometry]:
        """All member primitives with manifold dimension *d*."""
        return [g for g in self.geometries if g.dimension == d]

    def __len__(self) -> int:
        return len(self.geometries)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geometries)
