"""Affine transformations of the plane.

These back the positional flavour of the Geometric Transform operator
``G[gamma: R^2 -> R^2]`` (Section 3.1): rotation, translation, scaling
and their compositions, plus coordinate-system changes between data sets
(the paper's motivating use case for ``G``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LinearRing,
    LineSegment,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class AffineTransform:
    """A 2D affine map ``p -> A @ p + t`` stored as a 3x3 matrix.

    Supports composition with ``@`` (matching matrix semantics: the
    right-hand transform applies first), inversion, and application to
    scalars, arrays and geometry objects.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray | Sequence[Sequence[float]]) -> None:
        m = np.asarray(matrix, dtype=np.float64)
        if m.shape != (3, 3):
            raise ValueError(f"affine matrix must be 3x3, got {m.shape}")
        self.matrix = m

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "AffineTransform":
        return AffineTransform(np.eye(3))

    @staticmethod
    def translation(dx: float, dy: float) -> "AffineTransform":
        m = np.eye(3)
        m[0, 2] = dx
        m[1, 2] = dy
        return AffineTransform(m)

    @staticmethod
    def scaling(sx: float, sy: float | None = None) -> "AffineTransform":
        if sy is None:
            sy = sx
        m = np.eye(3)
        m[0, 0] = sx
        m[1, 1] = sy
        return AffineTransform(m)

    @staticmethod
    def rotation(
        angle_radians: float, center: tuple[float, float] = (0.0, 0.0)
    ) -> "AffineTransform":
        """Counter-clockwise rotation about *center*."""
        c, s = math.cos(angle_radians), math.sin(angle_radians)
        rot = AffineTransform(
            np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
        )
        if center == (0.0, 0.0):
            return rot
        cx, cy = center
        return (
            AffineTransform.translation(cx, cy)
            @ rot
            @ AffineTransform.translation(-cx, -cy)
        )

    @staticmethod
    def window_to_window(
        src: tuple[float, float, float, float],
        dst: tuple[float, float, float, float],
    ) -> "AffineTransform":
        """Map one axis-aligned window onto another.

        This is the coordinate-system conversion the paper cites as a
        primary use of ``G`` — e.g. reprojecting data sets recorded in
        different local frames into a common canvas window.
        """
        sx0, sy0, sx1, sy1 = src
        dx0, dy0, dx1, dy1 = dst
        if sx1 == sx0 or sy1 == sy0:
            raise ValueError("source window is degenerate")
        sx = (dx1 - dx0) / (sx1 - sx0)
        sy = (dy1 - dy0) / (sy1 - sy0)
        return (
            AffineTransform.translation(dx0, dy0)
            @ AffineTransform.scaling(sx, sy)
            @ AffineTransform.translation(-sx0, -sy0)
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: "AffineTransform") -> "AffineTransform":
        return AffineTransform(self.matrix @ other.matrix)

    def inverse(self) -> "AffineTransform":
        return AffineTransform(np.linalg.inv(self.matrix))

    @property
    def is_identity(self) -> bool:
        return bool(np.allclose(self.matrix, np.eye(3)))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_point(self, x: float, y: float) -> tuple[float, float]:
        m = self.matrix
        return (
            m[0, 0] * x + m[0, 1] * y + m[0, 2],
            m[1, 0] * x + m[1, 1] * y + m[1, 2],
        )

    def apply_array(self, coords: np.ndarray) -> np.ndarray:
        """Apply to an ``(n, 2)`` coordinate array, returning a new array."""
        coords = np.asarray(coords, dtype=np.float64)
        m = self.matrix
        out = np.empty_like(coords)
        out[:, 0] = m[0, 0] * coords[:, 0] + m[0, 1] * coords[:, 1] + m[0, 2]
        out[:, 1] = m[1, 0] * coords[:, 0] + m[1, 1] * coords[:, 1] + m[1, 2]
        return out

    def apply_geometry(self, geometry: Geometry) -> Geometry:
        """Apply to any geometry, returning a new geometry of the same type."""
        if isinstance(geometry, Point):
            return Point(*self.apply_point(geometry.x, geometry.y))
        if isinstance(geometry, MultiPoint):
            return MultiPoint(self.apply_array(geometry.vertex_array()))
        if isinstance(geometry, LineSegment):
            return LineSegment(
                self.apply_point(geometry.ax, geometry.ay),
                self.apply_point(geometry.bx, geometry.by),
            )
        if isinstance(geometry, LineString):
            return LineString(self.apply_array(geometry.vertex_array()))
        if isinstance(geometry, MultiLineString):
            return MultiLineString(
                [LineString(self.apply_array(line.vertex_array()))
                 for line in geometry.lines]
            )
        if isinstance(geometry, LinearRing):
            return LinearRing(self.apply_array(geometry.vertex_array()))
        if isinstance(geometry, Polygon):
            return Polygon(
                LinearRing(self.apply_array(geometry.shell.vertex_array())),
                [LinearRing(self.apply_array(h.vertex_array()))
                 for h in geometry.holes],
            )
        if isinstance(geometry, MultiPolygon):
            return MultiPolygon(
                [self.apply_geometry(p) for p in geometry.polygons]  # type: ignore[misc]
            )
        if isinstance(geometry, GeometryCollection):
            return GeometryCollection(
                [self.apply_geometry(g) for g in geometry.geometries]
            )
        raise TypeError(f"unsupported geometry type: {type(geometry).__name__}")

    def __call__(self, x: float, y: float) -> tuple[float, float]:
        return self.apply_point(x, y)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"AffineTransform({self.matrix.tolist()})"
