"""Ear-clipping triangulation.

Triangles are the native primitive of the graphics pipeline; the
rasterizer in :mod:`repro.gpu.rasterizer` fills polygons either via a
scanline pass or by rasterizing a triangulation.  Holes are handled by
bridging each hole to the outer ring with a mutually visible vertex
pair, yielding a single (weakly simple) ring that ear clipping accepts.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.predicates import (
    orientation,
    point_in_ring,
    segments_intersect,
)
from repro.geometry.primitives import Polygon

Coord = tuple[float, float]
Triangle = tuple[Coord, Coord, Coord]


def _triangle_contains(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float,
    px: float, py: float,
) -> bool:
    """Strict containment of ``p`` in ccw triangle ``abc`` (boundary excluded)."""
    d1 = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
    d2 = (cx - bx) * (py - by) - (cy - by) * (px - bx)
    d3 = (ax - cx) * (py - cy) - (ay - cy) * (px - cx)
    return d1 > 0 and d2 > 0 and d3 > 0


def triangulate_ring(ring: Sequence[Coord]) -> list[Triangle]:
    """Ear-clip a simple counter-clockwise ring into triangles.

    Runs in O(n^2), which is ample for query polygons (tens to hundreds
    of vertices).  Collinear vertices are tolerated; they simply never
    become ears and are dropped when degenerate.
    """
    coords = list(ring)
    n = len(coords)
    if n < 3:
        return []
    if n == 3:
        return [(coords[0], coords[1], coords[2])]

    indices = list(range(n))
    triangles: list[Triangle] = []
    guard = 0
    max_iters = 2 * n * n + 16

    while len(indices) > 3 and guard < max_iters:
        guard += 1
        made_progress = False
        m = len(indices)
        for k in range(m):
            i_prev = indices[(k - 1) % m]
            i_curr = indices[k]
            i_next = indices[(k + 1) % m]
            ax, ay = coords[i_prev]
            bx, by = coords[i_curr]
            cx, cy = coords[i_next]
            orient = orientation(ax, ay, bx, by, cx, cy)
            if orient < 0:
                continue  # reflex vertex, not an ear
            if orient == 0:
                # Degenerate (collinear) — drop the middle vertex.
                indices.pop(k)
                made_progress = True
                break
            # Convex: an ear iff no other ring vertex is inside.
            is_ear = True
            for j in indices:
                if j in (i_prev, i_curr, i_next):
                    continue
                px, py = coords[j]
                if _triangle_contains(ax, ay, bx, by, cx, cy, px, py):
                    is_ear = False
                    break
            if is_ear:
                triangles.append(((ax, ay), (bx, by), (cx, cy)))
                indices.pop(k)
                made_progress = True
                break
        if not made_progress:
            # Numerically stuck (nearly degenerate ring): emit a fan of
            # the remaining vertices rather than looping forever.
            break

    if len(indices) >= 3:
        anchor = coords[indices[0]]
        for a, b in zip(indices[1:], indices[2:]):
            tri = (anchor, coords[a], coords[b])
            if orientation(*tri[0], *tri[1], *tri[2]) != 0:
                triangles.append(tri)
    return triangles


def _mutually_visible(
    outer: list[Coord], hole: list[Coord]
) -> tuple[int, int]:
    """Find indices ``(i_outer, i_hole)`` of a mutually visible vertex pair.

    Brute-force visibility: the bridge segment must cross no edge of the
    outer ring or the hole (except at its own endpoints).
    """
    def blocked(p: Coord, q: Coord, ring: list[Coord]) -> bool:
        n = len(ring)
        for i in range(n):
            a = ring[i]
            b = ring[(i + 1) % n]
            if a in (p, q) or b in (p, q):
                continue
            if segments_intersect(*p, *q, *a, *b):
                return True
        return False

    # Try hole vertices ordered by x (rightmost first, classic heuristic)
    hole_order = sorted(range(len(hole)), key=lambda i: -hole[i][0])
    outer_order = sorted(
        range(len(outer)),
        key=lambda i: (outer[i][0], outer[i][1]),
    )
    for hi in hole_order:
        hp = hole[hi]
        # Prefer nearby outer vertices for shorter, more robust bridges.
        candidates = sorted(
            outer_order,
            key=lambda oi: math.hypot(outer[oi][0] - hp[0], outer[oi][1] - hp[1]),
        )
        for oi in candidates:
            op = outer[oi]
            if not blocked(hp, op, outer) and not blocked(hp, op, hole):
                return oi, hi
    raise ValueError("no mutually visible bridge found (degenerate input?)")


def _bridge_hole(outer: list[Coord], hole: list[Coord]) -> list[Coord]:
    """Merge one clockwise *hole* into a ccw *outer* ring via a bridge."""
    oi, hi = _mutually_visible(outer, hole)
    rotated_hole = hole[hi:] + hole[:hi]
    # Walk outer up to and including oi, detour around the hole, then
    # return through duplicated bridge vertices and continue.
    return (
        outer[: oi + 1]
        + rotated_hole
        + [rotated_hole[0]]
        + outer[oi:]
    )


def triangulate_polygon(polygon: Polygon) -> list[Triangle]:
    """Triangulate a polygon with holes.

    Returns triangles whose union covers the polygon's interior.  The
    result length is ``n_vertices - 2 + 2 * n_holes`` for simple inputs.
    """
    ring = list(polygon.shell.oriented(ccw=True).coords)
    for hole in polygon.holes:
        hole_coords = list(hole.oriented(ccw=False).coords)
        ring = _bridge_hole(ring, hole_coords)
    return triangulate_ring(ring)


def triangulation_area(triangles: Sequence[Triangle]) -> float:
    """Total (unsigned) area of a triangle set."""
    total = 0.0
    for (ax, ay), (bx, by), (cx, cy) in triangles:
        total += abs((bx - ax) * (cy - ay) - (by - ay) * (cx - ax)) / 2.0
    return total


def triangle_centroid(tri: Triangle) -> Coord:
    """Centroid of a triangle."""
    (ax, ay), (bx, by), (cx, cy) = tri
    return ((ax + bx + cx) / 3.0, (ay + by + cy) / 3.0)


def point_in_triangulation(
    x: float, y: float, triangles: Sequence[Triangle]
) -> bool:
    """Membership test against a triangulated region (boundary-inclusive)."""
    for (ax, ay), (bx, by), (cx, cy) in triangles:
        if point_in_ring(x, y, [(ax, ay), (bx, by), (cx, cy)]):
            return True
    return False
