"""Well-Known Text serialization.

Stands in for the ``geopandas`` data-handling layer the reproduction
hint mentions: spatial tables round-trip their geometry columns through
WKT (and GeoJSON, see :mod:`repro.geometry.geojson`), so data sets can
be stored in plain CSV files.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.geometry.primitives import (
    Geometry,
    GeometryCollection,
    LinearRing,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

Coord = tuple[float, float]


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    text = f"{value:.10g}"
    return text


def _coords_text(coords: Sequence[Coord], close: bool = False) -> str:
    pts = list(coords)
    if close and pts and pts[0] != pts[-1]:
        pts.append(pts[0])
    return ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in pts)


def _polygon_text(polygon: Polygon) -> str:
    rings = [f"({_coords_text(polygon.shell.coords, close=True)})"]
    rings.extend(
        f"({_coords_text(h.coords, close=True)})" for h in polygon.holes
    )
    return ", ".join(rings)


def to_wkt(geometry: Geometry) -> str:
    """Serialize a geometry to its WKT string."""
    if isinstance(geometry, Point):
        return f"POINT ({_fmt(geometry.x)} {_fmt(geometry.y)})"
    if isinstance(geometry, MultiPoint):
        inner = ", ".join(f"({_fmt(x)} {_fmt(y)})" for x, y in geometry.coords)
        return f"MULTIPOINT ({inner})"
    if isinstance(geometry, LineString):
        return f"LINESTRING ({_coords_text(geometry.coords)})"
    if isinstance(geometry, LinearRing):
        return f"LINESTRING ({_coords_text(geometry.coords, close=True)})"
    if isinstance(geometry, MultiLineString):
        inner = ", ".join(
            f"({_coords_text(line.coords)})" for line in geometry.lines
        )
        return f"MULTILINESTRING ({inner})"
    if isinstance(geometry, Polygon):
        return f"POLYGON ({_polygon_text(geometry)})"
    if isinstance(geometry, MultiPolygon):
        inner = ", ".join(f"({_polygon_text(p)})" for p in geometry.polygons)
        return f"MULTIPOLYGON ({inner})"
    if isinstance(geometry, GeometryCollection):
        inner = ", ".join(to_wkt(g) for g in geometry.geometries)
        return f"GEOMETRYCOLLECTION ({inner})"
    raise TypeError(f"unsupported geometry type: {type(geometry).__name__}")


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class WKTParseError(ValueError):
    """Raised when a WKT string is malformed."""


_TYPE_RE = re.compile(r"^\s*([A-Za-z]+)\s*(.*)$", re.DOTALL)


def _parse_coord_pair(text: str) -> Coord:
    parts = text.split()
    if len(parts) < 2:
        raise WKTParseError(f"expected 'x y' coordinates, got {text!r}")
    return (float(parts[0]), float(parts[1]))


def _split_top_level(text: str) -> list[str]:
    """Split a comma-separated list, respecting nested parentheses."""
    items: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise WKTParseError("unbalanced parentheses")
            current.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return items


def _strip_parens(text: str) -> str:
    text = text.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise WKTParseError(f"expected parenthesized body, got {text!r}")
    return text[1:-1].strip()


def _parse_coord_list(text: str) -> list[Coord]:
    return [_parse_coord_pair(item) for item in _split_top_level(text)]


def _parse_polygon_body(text: str) -> Polygon:
    rings = [
        _parse_coord_list(_strip_parens(item))
        for item in _split_top_level(text)
    ]
    if not rings:
        raise WKTParseError("polygon with no rings")
    try:
        return Polygon(
            LinearRing(rings[0]), [LinearRing(r) for r in rings[1:]]
        )
    except ValueError as exc:
        raise WKTParseError(f"invalid polygon ring: {exc}") from exc


def from_wkt(text: str) -> Geometry:
    """Parse a WKT string into a geometry object."""
    match = _TYPE_RE.match(text)
    if not match:
        raise WKTParseError(f"not a WKT string: {text!r}")
    kind = match.group(1).upper()
    body = match.group(2).strip()

    if kind == "POINT":
        return Point(*_parse_coord_pair(_strip_parens(body)))
    if kind == "MULTIPOINT":
        inner = _strip_parens(body)
        coords = []
        for item in _split_top_level(inner):
            item = item.strip()
            if item.startswith("("):
                item = _strip_parens(item)
            coords.append(_parse_coord_pair(item))
        return MultiPoint(coords)
    if kind == "LINESTRING":
        return LineString(_parse_coord_list(_strip_parens(body)))
    if kind == "MULTILINESTRING":
        inner = _strip_parens(body)
        return MultiLineString(
            [LineString(_parse_coord_list(_strip_parens(item)))
             for item in _split_top_level(inner)]
        )
    if kind == "POLYGON":
        return _parse_polygon_body(_strip_parens(body))
    if kind == "MULTIPOLYGON":
        inner = _strip_parens(body)
        return MultiPolygon(
            [_parse_polygon_body(_strip_parens(item))
             for item in _split_top_level(inner)]
        )
    if kind == "GEOMETRYCOLLECTION":
        inner = _strip_parens(body)
        return GeometryCollection(
            [from_wkt(item) for item in _split_top_level(inner)]
        )
    raise WKTParseError(f"unsupported WKT type: {kind}")
