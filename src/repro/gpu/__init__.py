"""Simulated GPU substrate: a data-parallel raster pipeline in NumPy.

The paper's prototype is built on the OpenGL rasterization pipeline
(Section 5).  This package recreates the pieces of that pipeline the
canvas algebra needs, with the same *data-parallel structure* — whole
pixel grids processed per pass, no per-primitive Python work in inner
loops — so that the performance characteristics the paper exploits
(constraint-independent per-point cost, cheap blending) carry over:

- :mod:`repro.gpu.device` — execution model: discrete vs integrated
  device profiles (tile budgets emulate memory-bandwidth differences);
- :mod:`repro.gpu.texture` — channelled pixel arrays, the discrete
  canvas storage;
- :mod:`repro.gpu.rasterizer` — point / line (supercover, i.e.
  conservative) / triangle rasterization;
- :mod:`repro.gpu.scanline` — even-odd polygon fill honouring holes;
- :mod:`repro.gpu.framebuffer` — off-screen render target with
  configurable blend state;
- :mod:`repro.gpu.blendmodes` — the vectorized blend-function library.
"""

from repro.gpu.device import Device
from repro.gpu.texture import Texture
from repro.gpu.framebuffer import Framebuffer
from repro.gpu.blendmodes import BlendMode

__all__ = ["BlendMode", "Device", "Framebuffer", "Texture"]
