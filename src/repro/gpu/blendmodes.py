"""Blend-function library.

A blend function in the algebra is ``⊙ : S^3 x S^3 -> S^3``
(Section 3.1).  At the texture level it combines two ``(data, valid)``
pairs elementwise.  All modes here are vectorized over arbitrary
leading dimensions: ``data`` has shape ``(..., channels)`` and
``valid`` has shape ``(..., groups)`` with channels grouped as in
:class:`repro.gpu.texture.Texture`.

The paper's query-specific blend functions (its ``⊙``, ``⊕`` and ``+``)
are built in :mod:`repro.core.blendfuncs` on top of these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: ``(data1, valid1, data2, valid2) -> (data, valid)``
BlendKernel = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray],
]


@dataclass(frozen=True)
class BlendMode:
    """A named, vectorized blend function with algebraic metadata.

    *associative* and *commutative* describe the blend as a binary
    operation on S^3; the optimizer uses associativity to regroup
    multiway blends (Section 3.2: "if the blend function is
    associative ... more flexibility while optimizing queries").
    """

    name: str
    kernel: BlendKernel
    associative: bool = False
    commutative: bool = False

    def __call__(
        self,
        data1: np.ndarray,
        valid1: np.ndarray,
        data2: np.ndarray,
        valid2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.kernel(data1, valid1, data2, valid2)


def _expand_valid(valid: np.ndarray, channels: int) -> np.ndarray:
    """Broadcast per-group validity over that group's channels."""
    groups = valid.shape[-1]
    per = channels // groups
    return np.repeat(valid, per, axis=-1)


def _source_over(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Painter's blend: the second canvas is drawn over the first."""
    mask = _expand_valid(valid2, data1.shape[-1])
    data = np.where(mask, data2, data1)
    return data, valid1 | valid2


def _add(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Additive blend: sum where both valid, copy where one valid."""
    channels = data1.shape[-1]
    m1 = _expand_valid(valid1, channels)
    m2 = _expand_valid(valid2, channels)
    data = np.where(m1, data1, 0.0) + np.where(m2, data2, 0.0)
    return data, valid1 | valid2


def _maximum(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    channels = data1.shape[-1]
    m1 = _expand_valid(valid1, channels)
    m2 = _expand_valid(valid2, channels)
    neg_inf = -np.inf
    a = np.where(m1, data1, neg_inf)
    b = np.where(m2, data2, neg_inf)
    data = np.maximum(a, b)
    data = np.where(np.isfinite(data), data, 0.0)
    return data, valid1 | valid2


def _minimum(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    channels = data1.shape[-1]
    m1 = _expand_valid(valid1, channels)
    m2 = _expand_valid(valid2, channels)
    pos_inf = np.inf
    a = np.where(m1, data1, pos_inf)
    b = np.where(m2, data2, pos_inf)
    data = np.minimum(a, b)
    data = np.where(np.isfinite(data), data, 0.0)
    return data, valid1 | valid2


def _keep_first(
    data1: np.ndarray, valid1: np.ndarray,
    data2: np.ndarray, valid2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Destination-over: the first canvas wins where both are valid."""
    channels = data1.shape[-1]
    m1 = _expand_valid(valid1, channels)
    m2 = _expand_valid(valid2, channels)
    data = np.where(m1, data1, np.where(m2, data2, 0.0))
    return data, valid1 | valid2


SOURCE_OVER = BlendMode("source-over", _source_over, associative=True)
DESTINATION_OVER = BlendMode("destination-over", _keep_first, associative=True)
ADD = BlendMode("add", _add, associative=True, commutative=True)
MAX = BlendMode("max", _maximum, associative=True, commutative=True)
MIN = BlendMode("min", _minimum, associative=True, commutative=True)

#: Registry of the built-in modes by name.
BUILTIN_MODES: dict[str, BlendMode] = {
    mode.name: mode
    for mode in (SOURCE_OVER, DESTINATION_OVER, ADD, MAX, MIN)
}
