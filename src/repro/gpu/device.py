"""Device execution model.

The paper evaluates its prototype on two GPUs: a discrete Nvidia GTX
1070 Max-Q and the integrated Intel UHD 630 of the same laptop
(Section 6).  Both run the identical algebra; the integrated part is
slower chiefly because of its lower memory bandwidth and narrower
execution width.

We model a device as a *tile budget*: every raster pass over a pixel
grid is split into horizontal tiles of at most ``tile_rows`` rows that
execute serially.  The discrete profile processes whole frames in one
vectorized pass; the integrated profile uses small tiles, so the same
pass genuinely costs more wall-clock time (more kernel launches /
interpreter transitions, worse cache behaviour) — no artificial sleeps
are involved, mirroring the real bandwidth gap in an honest way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np


@dataclass(frozen=True)
class Device:
    """An execution profile for raster passes.

    Attributes
    ----------
    name:
        Human-readable profile name used in benchmark reports.
    tile_rows:
        Maximum number of pixel rows processed per serial tile.  ``0``
        means "whole frame in one pass".
    """

    name: str
    tile_rows: int = 0

    @staticmethod
    def discrete(name: str = "discrete-gpu") -> "Device":
        """Whole-frame passes: models the discrete (Nvidia-class) GPU."""
        return Device(name=name, tile_rows=0)

    @staticmethod
    def integrated(name: str = "integrated-gpu", tile_rows: int = 16) -> "Device":
        """Small-tile passes: models the integrated (Intel-class) GPU."""
        if tile_rows < 1:
            raise ValueError("tile_rows must be positive for a tiled device")
        return Device(name=name, tile_rows=tile_rows)

    # ------------------------------------------------------------------
    def row_tiles(self, height: int) -> Iterator[slice]:
        """Yield row slices covering ``range(height)`` per the tile budget."""
        if height < 0:
            raise ValueError("height must be non-negative")
        if height == 0:
            return
        if self.tile_rows <= 0 or self.tile_rows >= height:
            yield slice(0, height)
            return
        for start in range(0, height, self.tile_rows):
            yield slice(start, min(start + self.tile_rows, height))

    def run_rows(
        self,
        height: int,
        kernel: Callable[[slice], None],
    ) -> None:
        """Execute *kernel* once per row tile (the 'render pass' loop)."""
        for rows in self.row_tiles(height):
            kernel(rows)

    def elementwise(
        self,
        arrays: tuple[np.ndarray, ...],
        kernel: Callable[..., np.ndarray],
        out: np.ndarray,
    ) -> np.ndarray:
        """Apply a vectorized *kernel* tile-by-tile over row-major arrays.

        All *arrays* and *out* must share the same leading (row)
        dimension.  This is the software analogue of a full-screen
        fragment pass.
        """
        height = out.shape[0]
        for rows in self.row_tiles(height):
            out[rows] = kernel(*(a[rows] for a in arrays))
        return out


#: Default device used when callers do not specify one.
DEFAULT_DEVICE = Device.discrete()
