"""Off-screen render target with configurable blend state.

The paper's prototype renders geometry into an off-screen buffer whose
color components carry the canvas function (Section 5.1).  A
:class:`Framebuffer` couples a target :class:`~repro.gpu.texture.Texture`
with a :class:`~repro.gpu.blendmodes.BlendMode`; every draw call blends
incoming fragments into the target under that mode, tile-by-tile per
the bound :class:`~repro.gpu.device.Device`.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.blendmodes import SOURCE_OVER, BlendMode
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.texture import Texture


class Framebuffer:
    """A texture bound as render target with blend state."""

    def __init__(
        self,
        target: Texture,
        blend: BlendMode = SOURCE_OVER,
        device: Device = DEFAULT_DEVICE,
    ) -> None:
        self.target = target
        self.blend = blend
        self.device = device

    # ------------------------------------------------------------------
    def draw_mask(
        self,
        mask: np.ndarray,
        values: np.ndarray,
        groups: np.ndarray,
    ) -> None:
        """Draw constant-value fragments over a boolean coverage *mask*.

        *values* is a length-``channels`` vector and *groups* a
        length-``groups`` boolean vector saying which validity planes
        the fragment writes.  This is the fill primitive used when
        rasterizing a polygon interior.
        """
        tex = self.target
        if mask.shape != (tex.height, tex.width):
            raise ValueError("mask shape must match the target texture")
        values = np.asarray(values, dtype=np.float64)
        groups_v = np.asarray(groups, dtype=bool)
        if values.shape != (tex.channels,):
            raise ValueError(f"values must have {tex.channels} channels")
        if groups_v.shape != (tex.groups,):
            raise ValueError(f"groups must have {tex.groups} entries")

        def kernel(rows: slice) -> None:
            tile_mask = mask[rows]
            if not tile_mask.any():
                return
            h = rows.stop - rows.start
            src_data = np.broadcast_to(
                values, (h, tex.width, tex.channels)
            )
            src_valid = np.broadcast_to(
                groups_v & True, (h, tex.width, tex.groups)
            ) & tile_mask[:, :, None]
            data, valid = self.blend(
                tex.data[rows], tex.valid[rows], src_data, src_valid
            )
            tex.data[rows] = data
            tex.valid[rows] = valid

        self.device.run_rows(tex.height, kernel)

    def draw_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        groups: np.ndarray,
    ) -> None:
        """Draw per-fragment values at explicit cell coordinates.

        *values* has shape ``(n, channels)`` (or ``(channels,)`` for a
        constant) and *groups* shape ``(n, groups)`` (or ``(groups,)``).
        Fragments are blended in order; duplicate cells blend repeatedly
        under non-idempotent modes only if the caller passes duplicates.
        """
        tex = self.target
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        n = len(rows)
        values = np.asarray(values, dtype=np.float64)
        groups_v = np.asarray(groups, dtype=bool)
        if values.ndim == 1:
            values = np.broadcast_to(values, (n, tex.channels))
        if groups_v.ndim == 1:
            groups_v = np.broadcast_to(groups_v, (n, tex.groups))
        if len(values) != n or len(groups_v) != n:
            raise ValueError("per-fragment arrays must match cell count")

        data, valid = self.blend(
            tex.data[rows, cols], tex.valid[rows, cols], values, groups_v
        )
        tex.data[rows, cols] = data
        tex.valid[rows, cols] = valid

    def scatter_add_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        groups: np.ndarray,
    ) -> None:
        """Additive scatter with correct handling of duplicate cells.

        GPU additive blending accumulates every fragment that lands on
        a pixel; ``np.add.at`` reproduces that for repeated indices,
        which plain fancy-indexed assignment would not.
        """
        tex = self.target
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        groups_v = np.asarray(groups, dtype=bool)
        if values.ndim == 1:
            values = np.broadcast_to(values, (len(rows), tex.channels))
        if groups_v.ndim == 1:
            groups_v = np.broadcast_to(groups_v, (len(rows), tex.groups))
        np.add.at(tex.data, (rows, cols), values)
        np.logical_or.at(tex.valid, (rows, cols), groups_v)

    def blend_texture(self, source: Texture) -> None:
        """Full-frame blend of *source* into the target (alpha-blend pass)."""
        tex = self.target
        if source.shape != tex.shape or source.groups != tex.groups:
            raise ValueError("source texture shape must match the target")

        def kernel(rows: slice) -> None:
            data, valid = self.blend(
                tex.data[rows], tex.valid[rows],
                source.data[rows], source.valid[rows],
            )
            tex.data[rows] = data
            tex.valid[rows] = valid

        self.device.run_rows(tex.height, kernel)
